//! Per-file lint context: path classification, `#[cfg(test)]` regions,
//! and suppression comments.

use crate::lex::{lex, Kind, Span};

/// The suppression comment grammar, per site:
///
/// ```text
/// // pfsim-lint: allow(D001) -- this is the FxHashMap definition itself
/// // pfsim-lint: allow(K002, D003) -- reason covering both
/// ```
///
/// A suppression applies to findings on its own line or the line directly
/// below it (comment-above style). The ` -- reason` part is mandatory;
/// a `pfsim-lint:` comment that fails to parse is itself reported (S000)
/// and suppresses nothing.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// Lint IDs it allows.
    pub ids: Vec<String>,
    /// The written reason.
    pub reason: String,
}

/// One source file, lexed and classified.
#[derive(Debug)]
pub struct File {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// `Some("core")` for `crates/core/...`; `None` for the root crate.
    pub crate_dir: Option<String>,
    /// True for integration tests, examples and benches: files whose whole
    /// content is host/test code.
    pub is_test_file: bool,
    /// The source text.
    pub src: String,
    /// Code tokens (comments and whitespace stripped).
    pub tokens: Vec<Span>,
    /// Comments, in source order.
    pub comments: Vec<Span>,
    /// Line ranges (inclusive) of `#[cfg(test)] mod` bodies.
    pub test_ranges: Vec<(u32, u32)>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// `pfsim-lint:` comments that did not parse (line numbers).
    pub malformed_suppressions: Vec<u32>,
}

impl File {
    /// Lexes and classifies `src` under the workspace-relative `path`.
    pub fn new(path: impl Into<String>, src: impl Into<String>) -> File {
        let path = path.into();
        let src = src.into();
        let lexed = lex(&src);
        let crate_dir = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        let in_crate_src = path.contains("/src/");
        let is_test_file =
            !in_crate_src || path.starts_with("tests/") || path.starts_with("examples/");
        let mut f = File {
            path,
            crate_dir,
            is_test_file,
            src,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_ranges: Vec::new(),
            suppressions: Vec::new(),
            malformed_suppressions: Vec::new(),
        };
        f.test_ranges = f.find_test_ranges();
        f.parse_suppressions();
        f
    }

    /// Text of token `i`.
    pub fn t(&self, i: usize) -> &str {
        let s = &self.tokens[i];
        &self.src[s.lo..s.hi]
    }

    /// Whether token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|s| s.kind == Kind::Ident && &self.src[s.lo..s.hi] == text)
    }

    /// Whether token `i` is punctuation with exactly this text.
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|s| s.kind == Kind::Punct && &self.src[s.lo..s.hi] == text)
    }

    /// Whether `line` is inside test code (test file or `#[cfg(test)]`
    /// region).
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_ranges
                .iter()
                .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Index of the matching close brace/paren/bracket for the opener at
    /// token `open` (returns `tokens.len()` when unbalanced).
    pub fn matching(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for i in open..self.tokens.len() {
            if self.tokens[i].kind == Kind::Punct {
                match self.t(i) {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth == 0 {
                            return i;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.tokens.len()
    }

    /// Finds `#[cfg(test)] mod` body line ranges by token scanning.
    fn find_test_ranges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let n = self.tokens.len();
        let mut i = 0usize;
        while i + 6 < n {
            // `# [ cfg ( test ) ]`
            let is_cfg_test = self.is_punct(i, "#")
                && self.is_punct(i + 1, "[")
                && self.is_ident(i + 2, "cfg")
                && self.is_punct(i + 3, "(")
                && self.is_ident(i + 4, "test")
                && self.is_punct(i + 5, ")")
                && self.is_punct(i + 6, "]");
            if !is_cfg_test {
                i += 1;
                continue;
            }
            // Skip any further attributes, then expect `mod name {` or an
            // item (e.g. `#[cfg(test)] use …`); only mod bodies make a
            // region, anything else just guards one item (rare; ignored).
            let mut j = i + 7;
            while self.is_punct(j, "#") && self.is_punct(j + 1, "[") {
                j = self.matching(j + 1) + 1;
            }
            if self.is_ident(j, "mod") {
                // `mod name {`
                let mut k = j + 1;
                while k < n && !self.is_punct(k, "{") && !self.is_punct(k, ";") {
                    k += 1;
                }
                if k < n && self.is_punct(k, "{") {
                    let close = self.matching(k);
                    let end_line = if close < n {
                        self.tokens[close].line
                    } else {
                        u32::MAX
                    };
                    out.push((self.tokens[i].line, end_line));
                    i = close.min(n - 1) + 1;
                    continue;
                }
            }
            i = j;
        }
        out
    }

    /// Parses `// pfsim-lint: allow(ID, …) -- reason` comments.
    fn parse_suppressions(&mut self) {
        let mut supps = Vec::new();
        let mut malformed = Vec::new();
        for c in &self.comments {
            let text = &self.src[c.lo..c.hi];
            let body = text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim();
            let Some(rest) = body.strip_prefix("pfsim-lint:") else {
                continue;
            };
            match parse_allow(rest.trim()) {
                Some((ids, reason)) => supps.push(Suppression {
                    line: c.line,
                    ids,
                    reason,
                }),
                None => malformed.push(c.line),
            }
        }
        self.suppressions = supps;
        self.malformed_suppressions = malformed;
    }
}

/// Parses `allow(ID, …) -- reason`; `None` on any grammar violation
/// (missing ids, empty reason, unknown directive).
fn parse_allow(s: &str) -> Option<(Vec<String>, String)> {
    let rest = s.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let ids: Vec<String> = rest[..close]
        .split(',')
        .map(|id| id.trim().to_string())
        .collect();
    if ids.is_empty() || ids.iter().any(|id| !is_lint_id(id)) {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some((ids, reason.to_string()))
}

/// A lint ID is one uppercase letter followed by three digits.
fn is_lint_id(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 4 && b[0].is_ascii_uppercase() && b[1..].iter().all(u8::is_ascii_digit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_paths() {
        let f = File::new("crates/core/src/system.rs", "fn a() {}");
        assert_eq!(f.crate_dir.as_deref(), Some("core"));
        assert!(!f.is_test_file);
        let t = File::new("crates/core/tests/system.rs", "fn a() {}");
        assert!(t.is_test_file);
        let e = File::new("examples/quickstart.rs", "fn main() {}");
        assert!(e.is_test_file);
    }

    #[test]
    fn finds_cfg_test_regions() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn more() {}\n";
        let f = File::new("crates/core/src/x.rs", src);
        assert_eq!(f.test_ranges, vec![(2, 5)]);
        assert!(!f.in_test(1));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn parses_suppressions() {
        let src = "\
let a = 1; // pfsim-lint: allow(D001) -- the definition site itself
// pfsim-lint: allow(K002, D003) -- two ids, one reason
let b = 2;
// pfsim-lint: allow(D001)
// pfsim-lint: allow(D1)  -- bad id
";
        let f = File::new("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].line, 1);
        assert_eq!(f.suppressions[0].ids, vec!["D001"]);
        assert_eq!(f.suppressions[1].ids, vec!["K002", "D003"]);
        assert_eq!(f.suppressions[1].reason, "two ids, one reason");
        assert_eq!(f.malformed_suppressions, vec![4, 5]);
    }
}
