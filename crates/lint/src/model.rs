//! The workspace symbol model: every file's parsed items plus name
//! indexes, built once per lint run and shared by the semantic lints.
//!
//! Parsing is memoized in a thread-local cache keyed by a 64-bit FNV-1a
//! hash of the file *contents* (item structure is path-independent), so
//! repeated runs over the same sources — the fixture suite lints
//! hundreds of small workspaces, and `run_all` builds the model after
//! the token passes — pay the parse cost once per distinct file.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::parse::{parse_items, FileItems, FnItem, StructItem};
use crate::source::File;

/// Identifies one function in the model: `(file index, fn index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId {
    /// Index into the model's file slice.
    pub file: usize,
    /// Index into that file's `fns`.
    pub idx: usize,
}

thread_local! {
    /// Content-hash → parsed items. Thread-local (not a process-wide
    /// lock) keeps the lint crate inside its own T001 rule.
    static PARSE_CACHE: RefCell<HashMap<u64, Rc<FileItems>>> = RefCell::new(HashMap::new());
}

/// 64-bit FNV-1a over the source bytes: cheap, dependency-free, and
/// collision-safe enough for a cache keyed by a few hundred files.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The symbol model over one workspace (or one fixture mini-workspace).
pub struct Model<'a> {
    /// The files, in the caller's (sorted) order.
    pub files: &'a [File],
    /// Parsed items, parallel to `files`.
    pub items: Vec<Rc<FileItems>>,
    fns_by_name: HashMap<String, Vec<FnId>>,
    file_by_path: HashMap<String, usize>,
}

impl<'a> Model<'a> {
    /// Builds (or fetches from cache) the model for `files`.
    pub fn build(files: &'a [File]) -> Model<'a> {
        let items: Vec<Rc<FileItems>> = files
            .iter()
            .map(|f| {
                let key = fnv1a64(&f.src);
                PARSE_CACHE.with(|c| {
                    if let Some(hit) = c.borrow().get(&key) {
                        return Rc::clone(hit);
                    }
                    let parsed = Rc::new(parse_items(f));
                    c.borrow_mut().insert(key, Rc::clone(&parsed));
                    parsed
                })
            })
            .collect();
        let mut fns_by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut file_by_path = HashMap::new();
        for (fi, (f, it)) in files.iter().zip(&items).enumerate() {
            file_by_path.insert(f.path.clone(), fi);
            for (idx, func) in it.fns.iter().enumerate() {
                fns_by_name
                    .entry(func.name.clone())
                    .or_default()
                    .push(FnId { file: fi, idx });
            }
        }
        Model {
            files,
            items,
            fns_by_name,
            file_by_path,
        }
    }

    /// The function behind `id`.
    pub fn fn_item(&self, id: FnId) -> &FnItem {
        &self.items[id.file].fns[id.idx]
    }

    /// The file a function lives in.
    pub fn fn_file(&self, id: FnId) -> &File {
        &self.files[id.file]
    }

    /// Every function named `name`, workspace-wide, in file order.
    pub fn fns_named(&self, name: &str) -> &[FnId] {
        self.fns_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Whether the function's declaration sits in test code.
    pub fn is_test_fn(&self, id: FnId) -> bool {
        self.fn_file(id).in_test(self.fn_item(id).line)
    }

    /// File index for a workspace-relative path.
    pub fn file_index(&self, path: &str) -> Option<usize> {
        self.file_by_path.get(path).copied()
    }

    /// Every named-field struct called `name`, as `(file index, item)`.
    pub fn structs_named(&self, name: &str) -> Vec<(usize, &StructItem)> {
        let mut out = Vec::new();
        for (fi, it) in self.items.iter().enumerate() {
            for s in &it.structs {
                if s.name == name && s.named {
                    out.push((fi, s));
                }
            }
        }
        out
    }

    /// Resolves a struct name as seen from `use_file`: definitions in
    /// the same crate win; a unique workspace-wide definition is
    /// accepted otherwise; ambiguity resolves to `None` (never guess).
    pub fn resolve_struct(&self, name: &str, use_file: usize) -> Option<&StructItem> {
        let defs = self.structs_named(name);
        let use_crate = self.files[use_file].crate_dir.as_deref();
        let local: Vec<_> = defs
            .iter()
            .filter(|(fi, _)| self.files[*fi].crate_dir.as_deref() == use_crate)
            .collect();
        match (local.len(), defs.len()) {
            (1, _) => Some(local[0].1),
            (0, 1) => Some(defs[0].1),
            _ => None,
        }
    }

    /// The innermost function whose extent (declaration line through
    /// body close) contains `line` in file `fi`.
    pub fn enclosing_fn(&self, fi: usize, line: u32) -> Option<FnId> {
        let f = &self.files[fi];
        let mut best: Option<(u32, FnId)> = None;
        for (idx, func) in self.items[fi].fns.iter().enumerate() {
            let Some((_, close)) = func.body else {
                if func.line == line {
                    return Some(FnId { file: fi, idx });
                }
                continue;
            };
            let end_line = f.tokens.get(close).map_or(u32::MAX, |t| t.line);
            if (func.line..=end_line).contains(&line) {
                let width = end_line - func.line;
                if best.is_none_or(|(w, _)| width <= w) {
                    best = Some((width, FnId { file: fi, idx }));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// `Owner::name` or `name` — the symbol path used in diagnostics
    /// and the v2 report.
    pub fn fn_path(&self, id: FnId) -> String {
        let f = self.fn_item(id);
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_same_crate_first() {
        let files = vec![
            File::new("crates/core/src/a.rs", "struct S { x: u32 }"),
            File::new("crates/bench/src/b.rs", "struct S { y: u32 }"),
            File::new("crates/core/src/use_site.rs", "fn f() {}"),
        ];
        let m = Model::build(&files);
        let s = m.resolve_struct("S", 2).unwrap();
        assert_eq!(s.fields[0].0, "x");
        // From the bench crate, the bench definition wins.
        let s = m.resolve_struct("S", 1).unwrap();
        assert_eq!(s.fields[0].0, "y");
    }

    #[test]
    fn ambiguity_resolves_to_none() {
        let files = vec![
            File::new("crates/core/src/a.rs", "struct S { x: u32 }"),
            File::new("crates/core/src/b.rs", "struct S { y: u32 }"),
        ];
        let m = Model::build(&files);
        assert!(m.resolve_struct("S", 0).is_none());
    }

    #[test]
    fn enclosing_fn_by_line() {
        let files = vec![File::new(
            "crates/core/src/a.rs",
            "struct S;\nimpl S {\n    fn m(&self) {\n        let x = 1;\n    }\n}\nfn free() {\n}\n",
        )];
        let m = Model::build(&files);
        let id = m.enclosing_fn(0, 4).unwrap();
        assert_eq!(m.fn_path(id), "S::m");
        let id = m.enclosing_fn(0, 8).unwrap();
        assert_eq!(m.fn_path(id), "free");
        assert!(m.enclosing_fn(0, 1).is_none());
    }
}
