//! The `pfsim-lint` binary.
//!
//! ```text
//! pfsim-lint [--root DIR] [--json PATH] [--list] [--quiet]
//! ```
//!
//! Walks the workspace, runs every lint (token scanners plus the
//! S101–S104 semantic family), prints `file:line: ID message`
//! diagnostics, and exits nonzero when any non-suppressed finding
//! remains. With `--json PATH` the v2 report — per-finding symbol spans
//! and a per-ID suppression summary — is written, read back and
//! schema-validated (the same discipline as the run manifests).

use std::path::PathBuf;
use std::process::ExitCode;

use pfsim_analysis::json::Json;
use pfsim_lint::{find_root, lints, load_workspace, report, to_json, validate_report};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--list" => {
                for l in lints::LINTS {
                    println!("{}  {}", l.id, l.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!("pfsim-lint: no workspace root found (try --root)");
            return ExitCode::from(2);
        }
    };

    let files = match load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "pfsim-lint: cannot read workspace under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let n_files = files.len();
    let findings = pfsim_lint::lint_files(files);
    let active: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    let suppressed = findings.len() - active.len();

    if !quiet {
        for f in &findings {
            if !f.suppressed {
                println!("{}", f.render());
            }
        }
    }

    if let Some(path) = &json_out {
        let json = to_json(&findings, n_files);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("pfsim-lint: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, json.render() + "\n") {
            eprintln!("pfsim-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        // Read-back validation: the report on disk must parse and satisfy
        // the v2 schema, or the run fails even with zero findings.
        let reread = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text))
            .and_then(|v| validate_report(&v).map(|()| v));
        match reread {
            Ok(_) => {
                if !quiet {
                    println!(
                        "pfsim-lint: report written and schema-validated: {}",
                        path.display()
                    );
                }
            }
            Err(e) => {
                eprintln!("pfsim-lint: report validation failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if !quiet {
        println!(
            "pfsim-lint: {} file(s), {} finding(s) ({} suppressed, {} active), schema v{}",
            n_files,
            findings.len(),
            suppressed,
            active.len(),
            report::SCHEMA,
        );
    }
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("pfsim-lint: {err}");
    }
    eprintln!("usage: pfsim-lint [--root DIR] [--json PATH] [--list] [--quiet]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
