//! Intra-workspace call-graph extraction and reachability.
//!
//! Call sites are read straight off the token stream of each function
//! body; resolution is *name-based* and deliberately over-approximate
//! (see `DESIGN.md` §16): a method call `recv.m(…)` edges to every
//! workspace method named `m` that takes `self`, a qualified call
//! `T::f(…)` prefers functions owned by `T`, a free call `f(…)` edges
//! to every free function named `f`. Over-approximation is the safe
//! direction for both lints built here: S102 (is a hook *reachable*?)
//! can only gain reachability, never lose a real path; S103 flags
//! direct banned calls *inside* reachable bodies, where a spurious
//! extra function in the set only matters if that function itself
//! breaks the effect discipline — which is exactly what we want to
//! hear about.

use std::collections::HashSet;

use crate::lex::Kind;
use crate::model::{FnId, Model};
use crate::source::File;

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(…)`.
    Method,
    /// `Qual::name(…)`.
    Qualified,
    /// `name(…)`.
    Free,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name.
    pub name: String,
    /// Call form.
    pub kind: CallKind,
    /// For method calls: the receiver identifier directly before the
    /// dot (`self.fx.send(…)` → `fx`), when it is a plain identifier.
    pub recv: Option<String>,
    /// For qualified calls: the path segment directly before `::`.
    pub qual: Option<String>,
    /// 1-based line of the callee name.
    pub line: u32,
}

/// Identifiers that look like `name(` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "loop", "as", "move", "await", "fn",
    "let", "ref", "mut", "box", "unsafe",
];

/// Extracts every call site in the body token range `(open, close)`.
pub fn calls_in_body(f: &File, body: (usize, usize)) -> Vec<CallSite> {
    let (open, close) = body;
    let mut out = Vec::new();
    let end = close.min(f.tokens.len());
    for i in open + 1..end {
        if f.tokens[i].kind != Kind::Ident || !f.is_punct(i + 1, "(") {
            continue;
        }
        let name = f.t(i);
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` — a nested item header, not a call.
        if i > 0 && f.is_ident(i - 1, "fn") {
            continue;
        }
        let line = f.tokens[i].line;
        let site = if i > 0 && f.is_punct(i - 1, ".") {
            let recv =
                (i >= 2 && f.tokens[i - 2].kind == Kind::Ident).then(|| f.t(i - 2).to_string());
            CallSite {
                name: name.to_string(),
                kind: CallKind::Method,
                recv,
                qual: None,
                line,
            }
        } else if i > 0 && f.is_punct(i - 1, "::") {
            let qual =
                (i >= 2 && f.tokens[i - 2].kind == Kind::Ident).then(|| f.t(i - 2).to_string());
            CallSite {
                name: name.to_string(),
                kind: CallKind::Qualified,
                recv: None,
                qual,
                line,
            }
        } else {
            CallSite {
                name: name.to_string(),
                kind: CallKind::Free,
                recv: None,
                qual: None,
                line,
            }
        };
        out.push(site);
    }
    out
}

/// Resolves one call site from `caller` to candidate workspace
/// functions, restricted to files of crate `in_crate` and to non-test
/// declarations.
pub fn resolve(model: &Model, caller: FnId, call: &CallSite, in_crate: &str) -> Vec<FnId> {
    let in_scope = |id: &FnId| {
        model.fn_file(*id).crate_dir.as_deref() == Some(in_crate)
            && model.fn_file(*id).path.contains("/src/")
            && !model.is_test_fn(*id)
    };
    let cands: Vec<FnId> = model
        .fns_named(&call.name)
        .iter()
        .copied()
        .filter(in_scope)
        .collect();
    if cands.is_empty() {
        return cands;
    }
    match call.kind {
        CallKind::Method => {
            let methods: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|id| model.fn_item(*id).has_self)
                .collect();
            // `self.m(…)` with a known owner narrows to that impl when
            // it declares the method (shadowing-aware: an unrelated
            // type's same-named method is not an edge).
            if call.recv.as_deref() == Some("self") {
                if let Some(owner) = &model.fn_item(caller).owner {
                    let own: Vec<FnId> = methods
                        .iter()
                        .copied()
                        .filter(|id| model.fn_item(*id).owner.as_deref() == Some(owner))
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            methods
        }
        CallKind::Qualified => {
            let qual = match call.qual.as_deref() {
                Some("Self") => model.fn_item(caller).owner.clone(),
                other => other.map(str::to_string),
            };
            if let Some(q) = qual {
                let owned: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|id| model.fn_item(*id).owner.as_deref() == Some(q.as_str()))
                    .collect();
                if !owned.is_empty() {
                    return owned;
                }
                // `module::f(…)`: the qualifier is a module path, not a
                // type — fall back to free functions of that name.
                return cands
                    .iter()
                    .copied()
                    .filter(|id| model.fn_item(*id).owner.is_none())
                    .collect();
            }
            cands
        }
        CallKind::Free => cands
            .iter()
            .copied()
            .filter(|id| model.fn_item(*id).owner.is_none())
            .collect(),
    }
}

/// Computes the set of functions reachable from `roots` through
/// intra-`in_crate` edges. Functions owned by a type in `no_expand` are
/// marked reachable but their bodies are not traversed — the seam for
/// S103's audited `Fx` effect boundary.
pub fn reachable(
    model: &Model,
    roots: &[FnId],
    in_crate: &str,
    no_expand: &[&str],
) -> HashSet<FnId> {
    let mut seen: HashSet<FnId> = HashSet::new();
    let mut work: Vec<FnId> = Vec::new();
    for &r in roots {
        if seen.insert(r) {
            work.push(r);
        }
    }
    while let Some(id) = work.pop() {
        let item = model.fn_item(id);
        if item
            .owner
            .as_deref()
            .is_some_and(|o| no_expand.contains(&o))
        {
            continue;
        }
        let Some(body) = item.body else { continue };
        let f = model.fn_file(id);
        for call in calls_in_body(f, body) {
            for target in resolve(model, id, &call, in_crate) {
                if seen.insert(target) {
                    work.push(target);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::File;

    fn model_of(files: &[File]) -> Model<'_> {
        Model::build(files)
    }

    fn fn_id(m: &Model, path_frag: &str, name: &str) -> FnId {
        for (fi, f) in m.files.iter().enumerate() {
            if !f.path.contains(path_frag) {
                continue;
            }
            for (idx, func) in m.items[fi].fns.iter().enumerate() {
                if func.name == name {
                    return FnId { file: fi, idx };
                }
            }
        }
        panic!("no fn {name} in {path_frag}");
    }

    #[test]
    fn method_vs_free_resolution() {
        let files = vec![File::new(
            "crates/core/src/a.rs",
            "struct S;\n\
             impl S { fn go(&self) {} }\n\
             fn go() {}\n\
             fn caller(s: &S) { s.go(); go(); }\n",
        )];
        let m = model_of(&files);
        let caller = fn_id(&m, "a.rs", "caller");
        let f = &m.files[0];
        let calls = calls_in_body(f, m.fn_item(caller).body.unwrap());
        assert_eq!(calls.len(), 2);
        let method = resolve(&m, caller, &calls[0], "core");
        assert_eq!(method.len(), 1);
        assert!(m.fn_item(method[0]).has_self);
        let free = resolve(&m, caller, &calls[1], "core");
        assert_eq!(free.len(), 1);
        assert!(m.fn_item(free[0]).owner.is_none());
    }

    #[test]
    fn self_calls_prefer_own_impl_over_shadowed_names() {
        let files = vec![File::new(
            "crates/core/src/a.rs",
            "struct A;\nstruct B;\n\
             impl A { fn step(&self) {} fn run(&self) { self.step(); } }\n\
             impl B { fn step(&self) {} }\n",
        )];
        let m = model_of(&files);
        let run = fn_id(&m, "a.rs", "run");
        let calls = calls_in_body(&m.files[0], m.fn_item(run).body.unwrap());
        let targets = resolve(&m, run, &calls[0], "core");
        assert_eq!(targets.len(), 1);
        assert_eq!(m.fn_item(targets[0]).owner.as_deref(), Some("A"));
    }

    #[test]
    fn qualified_paths_pick_the_right_impl_and_cross_file() {
        let files = vec![
            File::new(
                "crates/core/src/a.rs",
                "pub struct Q;\nimpl Q { pub fn make() {} }\npub fn make() {}\n",
            ),
            File::new(
                "crates/core/src/b.rs",
                "fn caller() { Q::make(); crate::a::make(); }\n",
            ),
        ];
        let m = model_of(&files);
        let caller = fn_id(&m, "b.rs", "caller");
        let calls = calls_in_body(&m.files[1], m.fn_item(caller).body.unwrap());
        let qualed = resolve(&m, caller, &calls[0], "core");
        assert_eq!(qualed.len(), 1);
        assert_eq!(m.fn_item(qualed[0]).owner.as_deref(), Some("Q"));
        // `crate::a::make()` — module path qualifier falls back to the
        // free fn, not Q::make.
        let modpath = resolve(&m, caller, &calls[1], "core");
        assert_eq!(modpath.len(), 1);
        assert!(m.fn_item(modpath[0]).owner.is_none());
    }

    #[test]
    fn reachability_stops_at_crate_boundary_and_no_expand() {
        let files = vec![
            File::new(
                "crates/core/src/a.rs",
                "struct Fx;\n\
                 impl Fx { fn send(&self) { raw_send(); } }\n\
                 fn raw_send() {}\n\
                 fn entry(fx: &Fx) { fx.send(); }\n",
            ),
            File::new("crates/bench/src/x.rs", "fn send() {}\n"),
        ];
        let m = model_of(&files);
        let entry = fn_id(&m, "a.rs", "entry");
        let set = reachable(&m, &[entry], "core", &["Fx"]);
        assert!(set.contains(&fn_id(&m, "a.rs", "send")));
        // Fx::send is reachable but not expanded: raw_send stays out.
        assert!(!set.contains(&fn_id(&m, "a.rs", "raw_send")));
        // The bench crate's fn is outside the core-only graph.
        assert!(!set.contains(&fn_id(&m, "x.rs", "send")));
    }
}
