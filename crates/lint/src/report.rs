//! Findings, diagnostics rendering, and the machine-readable JSON report.
//!
//! The JSON schema (v2) mirrors the run-manifest discipline: written with
//! the in-tree `pfsim_analysis::Json` renderer, read back and validated
//! before the tool exits, so a malformed report can never reach CI
//! unnoticed. v2 adds per-finding symbol spans (the enclosing function's
//! path and declaration line, from the workspace symbol model) and a
//! per-lint-ID suppression-count summary (`by_id`) so dashboards can
//! track lint debt across PRs.

use pfsim_analysis::json::Json;

use crate::lints::known_id;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint ID (`D001`, `K002`, …).
    pub id: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Whether a per-site suppression comment covers this finding.
    pub suppressed: bool,
    /// The suppression's written reason, when suppressed.
    pub reason: Option<String>,
    /// Symbol path of the enclosing function (`System::restore`), when
    /// the symbol model can place the finding inside one.
    pub symbol: Option<String>,
    /// 1-based line of that function's declaration.
    pub symbol_line: Option<u32>,
}

impl Finding {
    /// `file:line: ID message` — the span-accurate diagnostic line.
    pub fn render(&self) -> String {
        if self.suppressed {
            format!(
                "{}:{}: {} [suppressed: {}] {}",
                self.file,
                self.line,
                self.id,
                self.reason.as_deref().unwrap_or(""),
                self.message
            )
        } else {
            format!("{}:{}: {} {}", self.file, self.line, self.id, self.message)
        }
    }
}

/// Schema version of the JSON report.
pub const SCHEMA: i64 = 2;

/// Per-ID `(total, suppressed)` counts, sorted by ID (the `by_id`
/// suppression-debt summary).
fn id_counts(findings: &[Finding]) -> Vec<(&'static str, u64, u64)> {
    let mut counts: Vec<(&'static str, u64, u64)> = Vec::new();
    for f in findings {
        match counts.iter_mut().find(|(id, ..)| *id == f.id) {
            Some((_, total, suppressed)) => {
                *total += 1;
                *suppressed += u64::from(f.suppressed);
            }
            None => counts.push((f.id, 1, u64::from(f.suppressed))),
        }
    }
    counts.sort_by_key(|&(id, ..)| id);
    counts
}

/// Renders the findings as the v2 JSON report.
pub fn to_json(findings: &[Finding], files_scanned: usize) -> Json {
    let active = findings.iter().filter(|f| !f.suppressed).count();
    let suppressed = findings.len() - active;
    Json::obj(vec![
        ("schema", Json::Int(SCHEMA)),
        ("tool", Json::str("pfsim-lint")),
        ("files_scanned", Json::uint(files_scanned as u64)),
        (
            "counts",
            Json::obj(vec![
                ("total", Json::uint(findings.len() as u64)),
                ("suppressed", Json::uint(suppressed as u64)),
                ("active", Json::uint(active as u64)),
            ]),
        ),
        (
            "by_id",
            Json::Array(
                id_counts(findings)
                    .into_iter()
                    .map(|(id, total, supp)| {
                        Json::obj(vec![
                            ("id", Json::str(id)),
                            ("total", Json::uint(total)),
                            ("suppressed", Json::uint(supp)),
                            ("active", Json::uint(total - supp)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "findings",
            Json::Array(
                findings
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("id", Json::str(f.id)),
                            ("file", Json::str(&*f.file)),
                            ("line", Json::uint(u64::from(f.line))),
                            ("message", Json::str(&*f.message)),
                            ("suppressed", Json::Bool(f.suppressed)),
                            ("reason", f.reason.as_deref().map_or(Json::Null, Json::str)),
                            ("symbol", f.symbol.as_deref().map_or(Json::Null, Json::str)),
                            (
                                "symbol_line",
                                f.symbol_line
                                    .map_or(Json::Null, |l| Json::uint(u64::from(l))),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Validates a parsed report against the v2 schema: version, count
/// consistency (global and per-ID), known lint IDs, sane spans, and
/// symbol-span shape. Returns the first problem.
pub fn validate_report(v: &Json) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Json::as_i64)
        .ok_or("missing schema")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema} != {SCHEMA}"));
    }
    if v.get("tool").and_then(Json::as_str) != Some("pfsim-lint") {
        return Err("tool != pfsim-lint".to_string());
    }
    let findings = v
        .get("findings")
        .and_then(Json::as_array)
        .ok_or("missing findings array")?;
    let counts = v.get("counts").ok_or("missing counts")?;
    let total = counts
        .get("total")
        .and_then(Json::as_u64)
        .ok_or("counts.total")?;
    let suppressed = counts
        .get("suppressed")
        .and_then(Json::as_u64)
        .ok_or("counts.suppressed")?;
    let active = counts
        .get("active")
        .and_then(Json::as_u64)
        .ok_or("counts.active")?;
    if total != findings.len() as u64 {
        return Err(format!(
            "counts.total {total} != {} findings",
            findings.len()
        ));
    }
    if suppressed + active != total {
        return Err("counts.suppressed + counts.active != counts.total".to_string());
    }
    let mut seen_suppressed = 0u64;
    let mut seen_by_id: Vec<(String, u64, u64)> = Vec::new();
    for f in findings {
        let id = f
            .get("id")
            .and_then(Json::as_str)
            .ok_or("finding without id")?;
        if !known_id(id) {
            return Err(format!("unknown lint id `{id}`"));
        }
        let file = f
            .get("file")
            .and_then(Json::as_str)
            .ok_or("finding without file")?;
        if file.is_empty() {
            return Err("finding with empty file".to_string());
        }
        let line = f
            .get("line")
            .and_then(Json::as_u64)
            .ok_or("finding without line")?;
        if line == 0 {
            return Err(format!("finding at {file} with line 0"));
        }
        let is_suppressed = f
            .get("suppressed")
            .and_then(Json::as_bool)
            .ok_or("finding without suppressed flag")?;
        if is_suppressed {
            seen_suppressed += 1;
            if f.get("reason").and_then(Json::as_str).is_none() {
                return Err(format!(
                    "suppressed finding at {file}:{line} without a reason"
                ));
            }
        }
        // v2 symbol span: both fields present together or both null.
        let symbol = f.get("symbol").ok_or("finding without symbol field")?;
        let symbol_line = f
            .get("symbol_line")
            .ok_or("finding without symbol_line field")?;
        match (symbol.as_str(), symbol_line.as_u64()) {
            (Some(_), Some(l)) if l > 0 => {}
            (Some(_), _) => {
                return Err(format!("finding at {file}:{line} with symbol but bad line"))
            }
            (None, Some(_)) => {
                return Err(format!(
                    "finding at {file}:{line} with symbol_line but no symbol"
                ))
            }
            (None, None) => {}
        }
        match seen_by_id.iter_mut().find(|(i, ..)| i == id) {
            Some((_, t, s)) => {
                *t += 1;
                *s += u64::from(is_suppressed);
            }
            None => seen_by_id.push((id.to_string(), 1, u64::from(is_suppressed))),
        }
    }
    if seen_suppressed != suppressed {
        return Err("counts.suppressed disagrees with findings".to_string());
    }
    // by_id must agree with the findings exactly.
    let by_id = v
        .get("by_id")
        .and_then(Json::as_array)
        .ok_or("missing by_id summary")?;
    if by_id.len() != seen_by_id.len() {
        return Err("by_id summary length disagrees with findings".to_string());
    }
    for entry in by_id {
        let id = entry
            .get("id")
            .and_then(Json::as_str)
            .ok_or("by_id entry without id")?;
        let total = entry
            .get("total")
            .and_then(Json::as_u64)
            .ok_or("by_id entry without total")?;
        let supp = entry
            .get("suppressed")
            .and_then(Json::as_u64)
            .ok_or("by_id entry without suppressed")?;
        let active = entry
            .get("active")
            .and_then(Json::as_u64)
            .ok_or("by_id entry without active")?;
        let Some((_, seen_t, seen_s)) = seen_by_id.iter().find(|(i, ..)| i == id) else {
            return Err(format!("by_id entry `{id}` matches no finding"));
        };
        if total != *seen_t || supp != *seen_s || active != total - supp {
            return Err(format!("by_id entry `{id}` disagrees with findings"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                id: "D001",
                file: "crates/core/src/x.rs".into(),
                line: 3,
                message: "bad".into(),
                suppressed: false,
                reason: None,
                symbol: Some("System::restore".into()),
                symbol_line: Some(2),
            },
            Finding {
                id: "K002",
                file: "crates/core/src/y.rs".into(),
                line: 9,
                message: "bad".into(),
                suppressed: true,
                reason: Some("why".into()),
                symbol: None,
                symbol_line: None,
            },
        ]
    }

    #[test]
    fn report_round_trips_and_validates() {
        let j = to_json(&sample(), 2);
        let back = Json::parse(&j.render()).unwrap();
        validate_report(&back).unwrap();
        assert_eq!(
            back.get("counts").unwrap().get("active").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn validation_rejects_count_mismatch() {
        let j = to_json(&sample(), 2);
        let mut text = j.render();
        text = text.replace("\"total\": 2", "\"total\": 3");
        let back = Json::parse(&text).unwrap();
        assert!(validate_report(&back).is_err());
    }

    #[test]
    fn validation_rejects_unknown_id() {
        let j = to_json(&sample(), 2);
        let text = j.render().replace("D001", "Z999");
        let back = Json::parse(&text).unwrap();
        assert!(validate_report(&back).unwrap_err().contains("Z999"));
    }

    #[test]
    fn validation_rejects_tampered_by_id_summary() {
        let j = to_json(&sample(), 2);
        // `"active": 0` occurs only in the by_id K002 entry.
        let text = j.render().replace("\"active\": 0", "\"active\": 1");
        let back = Json::parse(&text).unwrap();
        assert!(validate_report(&back)
            .unwrap_err()
            .contains("disagrees with findings"));
    }

    #[test]
    fn validation_rejects_dangling_symbol_line() {
        let j = to_json(&sample(), 2);
        let text = j
            .render()
            .replace("\"symbol\": \"System::restore\"", "\"symbol\": null");
        let back = Json::parse(&text).unwrap();
        assert!(validate_report(&back)
            .unwrap_err()
            .contains("symbol_line but no symbol"));
    }

    #[test]
    fn by_id_summary_counts_per_lint() {
        let j = to_json(&sample(), 2);
        let back = Json::parse(&j.render()).unwrap();
        let by_id = back.get("by_id").unwrap().as_array().unwrap();
        assert_eq!(by_id.len(), 2);
        assert_eq!(by_id[0].get("id").unwrap().as_str(), Some("D001"));
        assert_eq!(by_id[0].get("active").unwrap().as_u64(), Some(1));
        assert_eq!(by_id[1].get("id").unwrap().as_str(), Some("K002"));
        assert_eq!(by_id[1].get("suppressed").unwrap().as_u64(), Some(1));
    }
}
