//! Findings, diagnostics rendering, and the machine-readable JSON report.
//!
//! The JSON schema (v1) mirrors the run-manifest discipline: written with
//! the in-tree `pfsim_analysis::Json` renderer, read back and validated
//! before the tool exits, so a malformed report can never reach CI
//! unnoticed.

use pfsim_analysis::json::Json;

use crate::lints::known_id;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint ID (`D001`, `K002`, …).
    pub id: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Whether a per-site suppression comment covers this finding.
    pub suppressed: bool,
    /// The suppression's written reason, when suppressed.
    pub reason: Option<String>,
}

impl Finding {
    /// `file:line: ID message` — the span-accurate diagnostic line.
    pub fn render(&self) -> String {
        if self.suppressed {
            format!(
                "{}:{}: {} [suppressed: {}] {}",
                self.file,
                self.line,
                self.id,
                self.reason.as_deref().unwrap_or(""),
                self.message
            )
        } else {
            format!("{}:{}: {} {}", self.file, self.line, self.id, self.message)
        }
    }
}

/// Schema version of the JSON report.
pub const SCHEMA: i64 = 1;

/// Renders the findings as the v1 JSON report.
pub fn to_json(findings: &[Finding], files_scanned: usize) -> Json {
    let active = findings.iter().filter(|f| !f.suppressed).count();
    let suppressed = findings.len() - active;
    Json::obj(vec![
        ("schema", Json::Int(SCHEMA)),
        ("tool", Json::str("pfsim-lint")),
        ("files_scanned", Json::uint(files_scanned as u64)),
        (
            "counts",
            Json::obj(vec![
                ("total", Json::uint(findings.len() as u64)),
                ("suppressed", Json::uint(suppressed as u64)),
                ("active", Json::uint(active as u64)),
            ]),
        ),
        (
            "findings",
            Json::Array(
                findings
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("id", Json::str(f.id)),
                            ("file", Json::str(&*f.file)),
                            ("line", Json::uint(u64::from(f.line))),
                            ("message", Json::str(&*f.message)),
                            ("suppressed", Json::Bool(f.suppressed)),
                            ("reason", f.reason.as_deref().map_or(Json::Null, Json::str)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Validates a parsed report against the v1 schema: version, count
/// consistency, known lint IDs, sane spans. Returns the first problem.
pub fn validate_report(v: &Json) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Json::as_i64)
        .ok_or("missing schema")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema} != {SCHEMA}"));
    }
    if v.get("tool").and_then(Json::as_str) != Some("pfsim-lint") {
        return Err("tool != pfsim-lint".to_string());
    }
    let findings = v
        .get("findings")
        .and_then(Json::as_array)
        .ok_or("missing findings array")?;
    let counts = v.get("counts").ok_or("missing counts")?;
    let total = counts
        .get("total")
        .and_then(Json::as_u64)
        .ok_or("counts.total")?;
    let suppressed = counts
        .get("suppressed")
        .and_then(Json::as_u64)
        .ok_or("counts.suppressed")?;
    let active = counts
        .get("active")
        .and_then(Json::as_u64)
        .ok_or("counts.active")?;
    if total != findings.len() as u64 {
        return Err(format!(
            "counts.total {total} != {} findings",
            findings.len()
        ));
    }
    if suppressed + active != total {
        return Err("counts.suppressed + counts.active != counts.total".to_string());
    }
    let mut seen_suppressed = 0u64;
    for f in findings {
        let id = f
            .get("id")
            .and_then(Json::as_str)
            .ok_or("finding without id")?;
        if !known_id(id) {
            return Err(format!("unknown lint id `{id}`"));
        }
        let file = f
            .get("file")
            .and_then(Json::as_str)
            .ok_or("finding without file")?;
        if file.is_empty() {
            return Err("finding with empty file".to_string());
        }
        let line = f
            .get("line")
            .and_then(Json::as_u64)
            .ok_or("finding without line")?;
        if line == 0 {
            return Err(format!("finding at {file} with line 0"));
        }
        let is_suppressed = f
            .get("suppressed")
            .and_then(Json::as_bool)
            .ok_or("finding without suppressed flag")?;
        if is_suppressed {
            seen_suppressed += 1;
            if f.get("reason").and_then(Json::as_str).is_none() {
                return Err(format!(
                    "suppressed finding at {file}:{line} without a reason"
                ));
            }
        }
    }
    if seen_suppressed != suppressed {
        return Err("counts.suppressed disagrees with findings".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                id: "D001",
                file: "crates/core/src/x.rs".into(),
                line: 3,
                message: "bad".into(),
                suppressed: false,
                reason: None,
            },
            Finding {
                id: "K002",
                file: "crates/core/src/y.rs".into(),
                line: 9,
                message: "bad".into(),
                suppressed: true,
                reason: Some("why".into()),
            },
        ]
    }

    #[test]
    fn report_round_trips_and_validates() {
        let j = to_json(&sample(), 2);
        let back = Json::parse(&j.render()).unwrap();
        validate_report(&back).unwrap();
        assert_eq!(
            back.get("counts").unwrap().get("active").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn validation_rejects_count_mismatch() {
        let j = to_json(&sample(), 2);
        let mut text = j.render();
        text = text.replace("\"total\": 2", "\"total\": 3");
        let back = Json::parse(&text).unwrap();
        assert!(validate_report(&back).is_err());
    }

    #[test]
    fn validation_rejects_unknown_id() {
        let j = to_json(&sample(), 2);
        let text = j.render().replace("D001", "Z999");
        let back = Json::parse(&text).unwrap();
        assert!(validate_report(&back).unwrap_err().contains("Z999"));
    }
}
