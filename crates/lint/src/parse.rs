//! A lightweight item-level Rust parser on top of the lexer.
//!
//! The semantic lints (S101–S104) need to know *which symbols exist* —
//! structs with their field lists, free and associated functions with
//! their body extents — not what every expression means. So this parser
//! recognizes item structure only and treats function bodies as opaque
//! token ranges for the call-graph layer ([`crate::callgraph`]) to scan.
//!
//! Soundness posture (see `DESIGN.md` §16):
//!
//! * **Under-approximation:** items nested inside function bodies
//!   (closures, local `fn`s, items expanded from macro invocations) are
//!   invisible; macro bodies are skipped as balanced token groups.
//! * **Over-approximation:** `#[cfg]`-gated items are always parsed, so
//!   the model may contain symbols a given build excludes.
//!
//! Both directions are deliberate: the lints built on the model only
//! ever compare *sets of names*, where a missing nested item can at
//! worst cause a false negative in a place token lints already cover.

use crate::lex::Kind;
use crate::source::File;

/// One `fn` item: free function, associated function, or trait method
/// (declaration or default body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` self-type or `trait` name, `None` for free
    /// functions.
    pub owner: Option<String>,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token-index range `(open_brace, close_brace)` of the body;
    /// `None` for bodiless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
}

/// One `struct` item with its named fields (empty for tuple/unit
/// structs).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Whether the struct has a named-field body (`struct S { … }`).
    pub named: bool,
    /// Declared field names with their lines, in declaration order.
    pub fields: Vec<(String, u32)>,
}

/// Every item parsed out of one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// All structs, in source order.
    pub structs: Vec<StructItem>,
}

/// Parses the item structure of `f`.
pub fn parse_items(f: &File) -> FileItems {
    let mut out = FileItems::default();
    parse_region(f, 0, f.tokens.len(), None, &mut out);
    out
}

/// How a signature scan ended: at a body brace, at a `;`, or never.
enum SigEnd {
    Body(usize),
    Semi(usize),
    None,
}

/// Parses items in the token range `[start, end)` with the given owner
/// (the enclosing `impl` type or `trait` name).
fn parse_region(f: &File, start: usize, end: usize, owner: Option<&str>, out: &mut FileItems) {
    let mut i = start;
    while i < end {
        // Attributes (`#[…]` / `#![…]`) are skipped as token groups.
        if f.is_punct(i, "#") {
            let mut j = i + 1;
            if f.is_punct(j, "!") {
                j += 1;
            }
            if f.is_punct(j, "[") {
                i = f.matching(j) + 1;
                continue;
            }
        }
        if f.tokens[i].kind != Kind::Ident {
            i += 1;
            continue;
        }
        match f.t(i) {
            "fn" => i = parse_fn(f, i, end, owner, out),
            "struct" => i = parse_struct(f, i, end, out),
            "enum" | "union" => i = skip_type_item(f, i, end),
            "trait" => i = parse_trait(f, i, end, out),
            "impl" => i = parse_impl(f, i, end, out),
            "mod" => i = parse_mod(f, i, end, out),
            "macro_rules" => i = skip_macro_def(f, i, end),
            "use" | "static" | "type" => i = skip_to_semi(f, i + 1, end),
            "const" => {
                // `const fn` is a modifier; `const NAME: T = …;` is an item.
                if f.is_ident(i + 1, "fn") {
                    i += 1;
                } else {
                    i = skip_to_semi(f, i + 1, end);
                }
            }
            "extern" => {
                // `extern crate x;`, `extern "C" { … }`, or an
                // `extern "C" fn` modifier.
                let mut j = i + 1;
                if f.tokens.get(j).is_some_and(|t| t.kind == Kind::Str) {
                    j += 1;
                }
                if f.is_ident(j, "fn") {
                    i = j;
                } else if f.is_punct(j, "{") {
                    i = f.matching(j) + 1;
                } else {
                    i = skip_to_semi(f, j, end);
                }
            }
            _ => i += 1,
        }
    }
}

/// Parses `fn name …` at token `i` (the `fn` keyword); returns the index
/// just past the item.
fn parse_fn(f: &File, i: usize, end: usize, owner: Option<&str>, out: &mut FileItems) -> usize {
    let Some(name_tok) = f.tokens.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != Kind::Ident {
        return i + 1;
    }
    let name = f.t(i + 1).to_string();
    let line = name_tok.line;
    let has_self = param_list_has_self(f, i + 2, end);
    match scan_signature(f, i + 2, end) {
        SigEnd::Body(open) => {
            let close = f.matching(open);
            out.fns.push(FnItem {
                name,
                owner: owner.map(str::to_string),
                line,
                body: Some((open, close)),
                has_self,
            });
            close + 1
        }
        SigEnd::Semi(semi) => {
            out.fns.push(FnItem {
                name,
                owner: owner.map(str::to_string),
                line,
                body: None,
                has_self,
            });
            semi + 1
        }
        SigEnd::None => end,
    }
}

/// Whether the first parenthesized group at angle-depth 0 after `from`
/// (the parameter list) starts with a `self` receiver.
fn param_list_has_self(f: &File, from: usize, end: usize) -> bool {
    let mut angle = 0i32;
    let mut j = from;
    while j < end {
        match (f.tokens[j].kind, f.t(j)) {
            (Kind::Punct, "<") => angle += 1,
            (Kind::Punct, ">") => angle = (angle - 1).max(0),
            (Kind::Punct, ">>") => angle = (angle - 2).max(0),
            (Kind::Punct, "(") if angle == 0 => {
                let close = f.matching(j);
                // Only the receiver position counts: scan up to the
                // first argument separator at depth 0.
                let mut depth = 0i32;
                for k in j + 1..close.min(end) {
                    if f.tokens[k].kind == Kind::Punct {
                        match f.t(k) {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    if f.is_ident(k, "self") {
                        let fine = f.is_punct(k - 1, "(")
                            || f.is_punct(k - 1, "&")
                            || f.is_ident(k - 1, "mut")
                            || f.tokens[k - 1].kind == Kind::Lifetime;
                        if fine {
                            return true;
                        }
                    }
                }
                return false;
            }
            (Kind::Punct, "{" | ";") if angle == 0 => return false,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Scans a signature tail (generics, params, return type, where clause)
/// for the body `{` or declaration `;` at depth 0.
fn scan_signature(f: &File, from: usize, end: usize) -> SigEnd {
    let mut angle = 0i32;
    let mut j = from;
    while j < end {
        match (f.tokens[j].kind, f.t(j)) {
            (Kind::Punct, "<") => angle += 1,
            (Kind::Punct, ">") => angle = (angle - 1).max(0),
            (Kind::Punct, ">>") => angle = (angle - 2).max(0),
            (Kind::Punct, "(" | "[") => {
                j = f.matching(j);
            }
            (Kind::Punct, "{") if angle == 0 => return SigEnd::Body(j),
            (Kind::Punct, "{") => {
                // Const-generic expression braces inside generics.
                j = f.matching(j);
            }
            (Kind::Punct, ";") if angle == 0 => return SigEnd::Semi(j),
            _ => {}
        }
        j += 1;
    }
    SigEnd::None
}

/// Parses `struct name …` at token `i`; returns the index past the item.
fn parse_struct(f: &File, i: usize, end: usize, out: &mut FileItems) -> usize {
    let Some(name_tok) = f.tokens.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != Kind::Ident {
        return i + 1;
    }
    let name = f.t(i + 1).to_string();
    let line = name_tok.line;
    match scan_signature(f, i + 2, end) {
        SigEnd::Body(open) => {
            let close = f.matching(open);
            let fields = parse_fields(f, open, close);
            out.structs.push(StructItem {
                name,
                line,
                named: true,
                fields,
            });
            close + 1
        }
        SigEnd::Semi(semi) => {
            // Tuple or unit struct: no named fields to model.
            out.structs.push(StructItem {
                name,
                line,
                named: false,
                fields: Vec::new(),
            });
            semi + 1
        }
        SigEnd::None => end,
    }
}

/// Collects named fields inside a struct body `{ … }`.
fn parse_fields(f: &File, open: usize, close: usize) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut k = open + 1;
    while k < close {
        if f.is_punct(k, "#") && f.is_punct(k + 1, "[") {
            k = f.matching(k + 1) + 1;
            continue;
        }
        if f.is_ident(k, "pub") {
            k += 1;
            if f.is_punct(k, "(") {
                k = f.matching(k) + 1;
            }
            continue;
        }
        if f.tokens[k].kind == Kind::Ident && f.is_punct(k + 1, ":") {
            fields.push((f.t(k).to_string(), f.tokens[k].line));
            k += 2;
            // Skip the type to the `,` at depth 0; `>>` closes two
            // angle levels, delimiter groups are skipped whole.
            let mut angle = 0i32;
            while k < close {
                match (f.tokens[k].kind, f.t(k)) {
                    (Kind::Punct, "(" | "[" | "{") => k = f.matching(k) + 1,
                    (Kind::Punct, "<") => {
                        angle += 1;
                        k += 1;
                    }
                    (Kind::Punct, ">") => {
                        angle = (angle - 1).max(0);
                        k += 1;
                    }
                    (Kind::Punct, ">>") => {
                        angle = (angle - 2).max(0);
                        k += 1;
                    }
                    (Kind::Punct, ",") if angle == 0 => {
                        k += 1;
                        break;
                    }
                    _ => k += 1,
                }
            }
            continue;
        }
        k += 1;
    }
    fields
}

/// Skips an `enum`/`union` item (name, generics, body or `;`).
fn skip_type_item(f: &File, i: usize, end: usize) -> usize {
    match scan_signature(f, i + 1, end) {
        SigEnd::Body(open) => f.matching(open) + 1,
        SigEnd::Semi(semi) => semi + 1,
        SigEnd::None => end,
    }
}

/// Parses `trait Name … { … }`, recursing into the body with the trait
/// as owner so method declarations become [`FnItem`]s.
fn parse_trait(f: &File, i: usize, end: usize, out: &mut FileItems) -> usize {
    let Some(name_tok) = f.tokens.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != Kind::Ident {
        return i + 1;
    }
    let name = f.t(i + 1).to_string();
    match scan_signature(f, i + 2, end) {
        SigEnd::Body(open) => {
            let close = f.matching(open);
            parse_region(f, open + 1, close.min(end), Some(&name), out);
            close + 1
        }
        SigEnd::Semi(semi) => semi + 1,
        SigEnd::None => end,
    }
}

/// Parses `impl … { … }`: determines the self-type name (the last path
/// segment after `for`, or of the sole type) and recurses with it as
/// owner.
fn parse_impl(f: &File, i: usize, end: usize, out: &mut FileItems) -> usize {
    let mut j = i + 1;
    // Leading generic parameters.
    if f.is_punct(j, "<") {
        let mut angle = 0i32;
        while j < end {
            match (f.tokens[j].kind, f.t(j)) {
                (Kind::Punct, "<") => angle += 1,
                (Kind::Punct, ">") => angle -= 1,
                (Kind::Punct, ">>") => angle -= 2,
                (Kind::Punct, "(" | "[" | "{") => j = f.matching(j),
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    // Walk the type path: the owner is the last plain identifier seen
    // before the body (reset at `for`, so `impl Trait for Type` names
    // `Type`); generic argument groups are skipped.
    let mut owner: Option<String> = None;
    let mut angle = 0i32;
    while j < end {
        match (f.tokens[j].kind, f.t(j)) {
            (Kind::Punct, "<") => angle += 1,
            (Kind::Punct, ">") => angle = (angle - 1).max(0),
            (Kind::Punct, ">>") => angle = (angle - 2).max(0),
            (Kind::Punct, "(" | "[") => j = f.matching(j),
            (Kind::Punct, "{") if angle == 0 => break,
            (Kind::Punct, "{") => j = f.matching(j),
            (Kind::Ident, "for") if angle == 0 => owner = None,
            (Kind::Ident, "where") if angle == 0 => {
                match scan_signature(f, j + 1, end) {
                    SigEnd::Body(open) => j = open,
                    _ => return end,
                }
                break;
            }
            (Kind::Ident, "dyn" | "mut" | "const") => {}
            (Kind::Ident, _) if angle == 0 => owner = Some(f.t(j).to_string()),
            _ => {}
        }
        j += 1;
        if f.is_punct(j, "{") && angle == 0 {
            break;
        }
    }
    if !f.is_punct(j, "{") {
        return end;
    }
    let close = f.matching(j);
    parse_region(f, j + 1, close.min(end), owner.as_deref(), out);
    close + 1
}

/// Parses `mod name { … }` (recursing, owner reset) or skips `mod name;`.
fn parse_mod(f: &File, i: usize, end: usize, out: &mut FileItems) -> usize {
    let mut j = i + 1;
    while j < end && !f.is_punct(j, "{") && !f.is_punct(j, ";") {
        j += 1;
    }
    if f.is_punct(j, "{") {
        let close = f.matching(j);
        parse_region(f, j + 1, close.min(end), None, out);
        close + 1
    } else {
        j + 1
    }
}

/// Skips `macro_rules! name { … }` as one balanced group.
fn skip_macro_def(f: &File, i: usize, end: usize) -> usize {
    let mut j = i + 1;
    while j < end {
        if f.is_punct(j, "{") || f.is_punct(j, "(") || f.is_punct(j, "[") {
            return f.matching(j) + 1;
        }
        j += 1;
    }
    end
}

/// Skips to just past the next `;` at delimiter depth 0 (groups are
/// stepped over whole, so `use x::{a, b};` works).
fn skip_to_semi(f: &File, from: usize, end: usize) -> usize {
    let mut j = from;
    while j < end {
        if f.tokens[j].kind == Kind::Punct {
            match f.t(j) {
                "(" | "[" | "{" => {
                    j = f.matching(j) + 1;
                    continue;
                }
                ";" => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> FileItems {
        parse_items(&File::new("crates/core/src/x.rs", src))
    }

    #[test]
    fn free_and_assoc_fns() {
        let it = items(
            "fn free(a: u32) -> u32 { a }\n\
             struct S { x: u32, y: Vec<(u8, u8)> }\n\
             impl S {\n    fn method(&self) -> u32 { self.x }\n    fn assoc() -> S { todo!() }\n}\n",
        );
        let names: Vec<_> = it
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "free", false),
                (Some("S"), "method", true),
                (Some("S"), "assoc", false),
            ]
        );
        assert_eq!(it.structs[0].fields.len(), 2);
        assert_eq!(it.structs[0].fields[0].0, "x");
        assert_eq!(it.structs[0].fields[1].0, "y");
    }

    #[test]
    fn trait_impl_owner_is_self_type() {
        let it = items(
            "trait T { fn decl(&self); fn with_default(&self) {} }\n\
             impl T for Wrapper<'_> { fn decl(&self) {} }\n",
        );
        assert_eq!(it.fns[0].owner.as_deref(), Some("T"));
        assert!(it.fns[0].body.is_none());
        assert_eq!(it.fns[1].owner.as_deref(), Some("T"));
        assert!(it.fns[1].body.is_some());
        assert_eq!(it.fns[2].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn nested_generics_and_where_clauses() {
        let it = items(
            "fn tricky<W: Workload<Item = Vec<Vec<u8>>>>(w: W) -> Option<Box<dyn Fn() -> u8>>\n\
             where W: Clone { None }\n\
             struct G<K, V> { map: FxHashMap<K, Vec<V>>, n: usize }\n",
        );
        assert_eq!(it.fns[0].name, "tricky");
        assert!(it.fns[0].body.is_some());
        let fields: Vec<_> = it.structs[0].fields.iter().map(|f| f.0.as_str()).collect();
        assert_eq!(fields, vec!["map", "n"]);
    }

    #[test]
    fn bodies_are_opaque_and_macros_skipped() {
        let it = items(
            "macro_rules! m { ($x:expr) => { fn not_an_item() {} }; }\n\
             fn outer() { fn inner() {} let c = |x: u32| x; }\n",
        );
        let names: Vec<_> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer"]);
    }

    #[test]
    fn tuple_structs_and_mods() {
        let it = items(
            "struct Unit;\npub struct Pair(u32, u32);\n\
             mod inner { pub fn in_mod() {} struct Deep { d: u8 } }\n",
        );
        assert!(!it.structs[0].named);
        assert!(!it.structs[1].named);
        assert!(it
            .fns
            .iter()
            .any(|f| f.name == "in_mod" && f.owner.is_none()));
        assert!(it.structs.iter().any(|s| s.name == "Deep" && s.named));
    }
}
