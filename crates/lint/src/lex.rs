//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The lints in this crate are syntactic: they need a faithful token
//! stream with line numbers, and they need comments kept apart from code
//! so that a `HashMap` in prose never trips a determinism lint while a
//! `HashMap` in code always does. Full parsing is deliberately out of
//! scope (no new dependencies, matching the in-tree FxHasher/SplitMix64/
//! Json precedent); what *must* be exact is the token boundaries:
//!
//! * nested block comments (`/* /* */ */`);
//! * raw strings with arbitrary hash fences (`r##"…"##`, `br#"…"#`);
//! * the lifetime/char-literal ambiguity (`'a` vs. `'a'` vs. `'\n'`);
//! * multi-char operators, so `==` is never mistaken for an assignment.
//!
//! Every byte of the input is covered by exactly one [`Span`] (token or
//! trivia), which the lexer round-trip test asserts; lint passes consume
//! only the token spans plus the comment list.

/// What a span of source text is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// `'lifetime` (including the leading quote) or a loop label.
    Lifetime,
    /// Integer or float literal (including suffixes).
    Number,
    /// `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// `'x'`, `b'x'` (with escapes).
    Char,
    /// A single punctuation/operator token (`::` and `==` are one token).
    Punct,
    /// `// …` or `/* … */` (doc comments included).
    Comment,
    /// Whitespace.
    Space,
}

/// One lexed span of the source.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span kind.
    pub kind: Kind,
    /// 1-based line of the span's first byte.
    pub line: u32,
    /// Byte range `[lo, hi)` in the source.
    pub lo: usize,
    /// End of the byte range.
    pub hi: usize,
}

/// Lexed view of one source file: code tokens and comments, separately.
#[derive(Debug)]
pub struct Lexed {
    /// Code tokens (no comments, no whitespace), in source order.
    pub tokens: Vec<Span>,
    /// Comments, in source order.
    pub comments: Vec<Span>,
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lexes `src`, returning every token and comment with line numbers.
///
/// Invalid input (unterminated string, stray byte) never panics: the
/// lexer degrades to single-byte punct tokens so a lint run over a file
/// mid-edit still reports what it can.
pub fn lex(src: &str) -> Lexed {
    let all = lex_spans(src);
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    for s in all {
        match s.kind {
            Kind::Comment => comments.push(s),
            Kind::Space => {}
            _ => tokens.push(s),
        }
    }
    Lexed { tokens, comments }
}

/// Lexes `src` into a complete, gap-free span list covering every byte
/// (used directly by the round-trip test).
pub fn lex_spans(src: &str) -> Vec<Span> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let lo = i;
        let start_line = line;
        let kind = scan_one(b, &mut i, &mut line);
        debug_assert!(i > lo, "lexer must always advance");
        out.push(Span {
            kind,
            line: start_line,
            lo,
            hi: i,
        });
    }
    out
}

/// Scans one span starting at `*i`, advancing `*i` past it and `*line`
/// over any newlines it contains. Returns the span's kind.
fn scan_one(b: &[u8], i: &mut usize, line: &mut u32) -> Kind {
    let c = b[*i];
    match c {
        b' ' | b'\t' | b'\r' | b'\n' => {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\r' | b'\n') {
                if b[*i] == b'\n' {
                    *line += 1;
                }
                *i += 1;
            }
            Kind::Space
        }
        b'/' if peek(b, *i + 1) == Some(b'/') => {
            while *i < b.len() && b[*i] != b'\n' {
                *i += 1;
            }
            Kind::Comment
        }
        b'/' if peek(b, *i + 1) == Some(b'*') => {
            *i += 2;
            let mut depth = 1u32;
            while *i < b.len() && depth > 0 {
                if b[*i] == b'/' && peek(b, *i + 1) == Some(b'*') {
                    depth += 1;
                    *i += 2;
                } else if b[*i] == b'*' && peek(b, *i + 1) == Some(b'/') {
                    depth -= 1;
                    *i += 2;
                } else {
                    if b[*i] == b'\n' {
                        *line += 1;
                    }
                    *i += 1;
                }
            }
            Kind::Comment
        }
        b'"' => {
            scan_string(b, i, line);
            Kind::Str
        }
        b'r' | b'b' | b'c' => {
            // Raw/byte/C string prefixes: r", r#", br", b", b'…
            if let Some(k) = scan_prefixed_literal(b, i, line) {
                k
            } else {
                scan_ident(b, i);
                Kind::Ident
            }
        }
        b'\'' => scan_quote(b, i, line),
        b'0'..=b'9' => {
            scan_number(b, i);
            Kind::Number
        }
        c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
            scan_ident(b, i);
            Kind::Ident
        }
        _ => {
            for m in MULTI_PUNCT {
                if b[*i..].starts_with(m.as_bytes()) {
                    *i += m.len();
                    return Kind::Punct;
                }
            }
            *i += 1;
            Kind::Punct
        }
    }
}

fn peek(b: &[u8], i: usize) -> Option<u8> {
    b.get(i).copied()
}

fn scan_ident(b: &[u8], i: &mut usize) {
    while *i < b.len() && (b[*i] == b'_' || b[*i].is_ascii_alphanumeric() || b[*i] >= 0x80) {
        *i += 1;
    }
}

/// Scans a number literal, including `0x…`, separators, float forms and
/// suffixes (`1_000u64`, `1.5e-3f32`). Precision beyond "one token, right
/// boundary" is not needed.
fn scan_number(b: &[u8], i: &mut usize) {
    *i += 1;
    while *i < b.len() {
        let c = b[*i];
        if c.is_ascii_alphanumeric() || c == b'_' {
            *i += 1;
        } else if c == b'.' && peek(b, *i + 1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` yes; `1..3` and `1.method()` no.
            *i += 1;
        } else if (c == b'+' || c == b'-') && matches!(b[*i - 1], b'e' | b'E') {
            *i += 1;
        } else {
            break;
        }
    }
}

/// Scans `"…"` with escapes, starting at the opening quote.
fn scan_string(b: &[u8], i: &mut usize, line: &mut u32) {
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2.min(b.len() - *i),
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Scans `r"…"`/`r#"…"#` (any fence depth), starting at the `r`.
fn scan_raw_string(b: &[u8], i: &mut usize, line: &mut u32) {
    *i += 1; // past `r`
    let mut hashes = 0usize;
    while peek(b, *i) == Some(b'#') {
        hashes += 1;
        *i += 1;
    }
    debug_assert_eq!(peek(b, *i), Some(b'"'));
    *i += 1;
    while *i < b.len() {
        if b[*i] == b'\n' {
            *line += 1;
        }
        if b[*i] == b'"'
            && b[*i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            *i += 1 + hashes;
            return;
        }
        *i += 1;
    }
}

/// Distinguishes and scans `r"…"`, `br#"…"#`, `b"…"`, `b'…'`, `c"…"` at a
/// `r`/`b`/`c` byte. Returns `None` when it is just an identifier start.
fn scan_prefixed_literal(b: &[u8], i: &mut usize, line: &mut u32) -> Option<Kind> {
    let c = b[*i];
    let next = peek(b, *i + 1);
    match (c, next) {
        (b'r', Some(b'"')) | (b'r', Some(b'#')) => {
            // `r#ident` (raw identifier) vs `r#"…"` (raw string): look past
            // the hashes for the quote.
            let mut j = *i + 1;
            while peek(b, j) == Some(b'#') {
                j += 1;
            }
            if peek(b, j) == Some(b'"') {
                scan_raw_string(b, i, line);
                Some(Kind::Str)
            } else if next == Some(b'#') {
                *i += 2; // `r#`
                scan_ident(b, i);
                Some(Kind::Ident)
            } else {
                None
            }
        }
        (b'b' | b'c', Some(b'"')) => {
            *i += 1;
            scan_string(b, i, line);
            Some(Kind::Str)
        }
        (b'b', Some(b'r')) if matches!(peek(b, *i + 2), Some(b'"') | Some(b'#')) => {
            *i += 1;
            scan_raw_string(b, i, line);
            Some(Kind::Str)
        }
        (b'b', Some(b'\'')) => {
            *i += 1;
            scan_char(b, i);
            Some(Kind::Char)
        }
        _ => None,
    }
}

/// Scans `'…'` with escapes, starting at the opening quote. Only called
/// once a closing quote is known to exist.
fn scan_char(b: &[u8], i: &mut usize) {
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2.min(b.len() - *i),
            b'\'' => {
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

/// Disambiguates `'` between a char literal and a lifetime/label.
///
/// `'a'` and `'\n'` are chars; `'a` followed by anything but `'` is a
/// lifetime. The one-lookahead rule: after `'x` (a single non-escape
/// character), a `'` means char literal, otherwise lifetime.
fn scan_quote(b: &[u8], i: &mut usize, line: &mut u32) -> Kind {
    let _ = line;
    match peek(b, *i + 1) {
        Some(b'\\') => {
            scan_char(b, i);
            Kind::Char
        }
        // `'x'` for any single non-quote character (ident or punct) is a
        // char literal; `'ab`, `'a` without a closing quote, `'static` are
        // lifetimes (an ident run longer than one char is never a char
        // literal — chars beyond ASCII are multi-byte and handled below).
        Some(c) if c != b'\'' => {
            let is_ident_char = c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80;
            if !is_ident_char {
                // Punctuation char literal, e.g. `'('`.
                scan_char(b, i);
                return Kind::Char;
            }
            let mut j = *i + 1;
            while peek(b, j).is_some_and(|d| d == b'_' || d.is_ascii_alphanumeric() || d >= 0x80) {
                j += 1;
            }
            if peek(b, j) == Some(b'\'') {
                scan_char(b, i);
                Kind::Char
            } else {
                *i += 1;
                scan_ident(b, i);
                Kind::Lifetime
            }
        }
        _ => {
            // `''` or a lone trailing quote: treat as punct-ish char.
            *i += 1;
            Kind::Punct
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, &str)> {
        let l = lex(src);
        l.tokens
            .iter()
            .map(|s| (s.kind, &src[s.lo..s.hi]))
            .collect()
    }

    #[test]
    fn lifetimes_vs_chars() {
        let k = kinds("let x: &'a char = &'b'; 'outer: loop {}");
        assert!(k.contains(&(Kind::Lifetime, "'a")));
        assert!(k.contains(&(Kind::Char, "'b'")));
        assert!(k.contains(&(Kind::Lifetime, "'outer")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still */ b");
        assert_eq!(l.tokens.len(), 2);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let k = kinds(r####"let s = r##"has "quotes" and # inside"##;"####);
        assert!(k
            .iter()
            .any(|(kk, t)| *kk == Kind::Str && t.contains("quotes")));
    }

    #[test]
    fn multi_punct_is_one_token() {
        let k = kinds("a == b; c += 1; d :: e");
        assert!(k.contains(&(Kind::Punct, "==")));
        assert!(k.contains(&(Kind::Punct, "+=")));
        assert!(k.contains(&(Kind::Punct, "::")));
    }
}
