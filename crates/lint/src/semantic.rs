//! The semantic lint family (S101–S104), built on the workspace symbol
//! model ([`crate::model`]) and call graph ([`crate::callgraph`]).
//!
//! * **S101** — snapshot field coverage: every struct expression or
//!   pattern in a snapshot module must name every declared field.
//! * **S102** — hook reachability: every `CheckSink` method must be
//!   reachable, through the call graph, from the core entry points.
//! * **S103** — shard-effect discipline: functions reachable from the
//!   shard-worker entry points may touch the calendar queue, the mesh,
//!   and the metrics registry only through the `Fx` effect log.
//! * **S104** — wire/manifest key agreement: string-key sets emitted by
//!   producers must agree with the sets their parsers/validators accept.

use std::collections::BTreeMap;

use crate::callgraph::{calls_in_body, reachable, CallKind};
use crate::lex::Kind;
use crate::model::{FnId, Model};
use crate::report::Finding;
use crate::source::File;

/// Runs every semantic lint over the model.
pub fn run(model: &Model, out: &mut Vec<Finding>) {
    s101_snapshot_coverage(model, out);
    s102_hook_reachability(model, out);
    s103_shard_effects(model, out);
    s104_key_agreement(model, out);
}

fn finding(f: &File, id: &'static str, line: u32, message: String) -> Finding {
    Finding {
        id,
        file: f.path.clone(),
        line,
        message,
        suppressed: false,
        reason: None,
        symbol: None,
        symbol_line: None,
    }
}

// ---------------------------------------------------------------------
// S101: snapshot field coverage
// ---------------------------------------------------------------------

/// The modules that copy machine state into/out of checkpoints (K003's
/// scope, upgraded here from "no `..`" to actual field-set diffing).
const SNAPSHOT_FILES: &[&str] = &["crates/core/src/checkpoint.rs"];

/// Identifiers before `Name {` that mean `Name` is not a struct
/// expression/pattern (definitions, headers, type positions).
const NON_STRUCT_USE_PREV: &[&str] = &[
    "impl", "struct", "enum", "union", "trait", "mod", "for", "fn", "dyn", "in", "where", "else",
    "loop",
];

fn s101_snapshot_coverage(model: &Model, out: &mut Vec<Finding>) {
    for (fi, f) in model.files.iter().enumerate() {
        if !SNAPSHOT_FILES.contains(&f.path.as_str()) {
            continue;
        }
        for i in 0..f.tokens.len() {
            if f.tokens[i].kind != Kind::Ident || !f.is_punct(i + 1, "{") {
                continue;
            }
            let line = f.tokens[i].line;
            if f.in_test(line) {
                continue;
            }
            if i > 0 {
                let prev = f.t(i - 1);
                let prev_kind = f.tokens[i - 1].kind;
                if prev_kind == Kind::Ident && NON_STRUCT_USE_PREV.contains(&prev) {
                    continue;
                }
                // `-> Name {` is a return type followed by the fn body.
                if prev_kind == Kind::Punct && prev == "->" {
                    continue;
                }
            }
            let name = f.t(i);
            let def = if name == "Self" {
                let owner = model
                    .enclosing_fn(fi, line)
                    .and_then(|id| model.fn_item(id).owner.clone());
                match owner {
                    Some(o) => model.resolve_struct(&o, fi),
                    None => None,
                }
            } else {
                model.resolve_struct(name, fi)
            };
            let Some(def) = def else { continue };
            let open = i + 1;
            let close = f.matching(open);
            let (used, has_rest) = braced_field_names(f, open, close);
            if has_rest {
                // `..` (rest pattern or struct update) is K003's case;
                // with it present the field list is complete by
                // construction, so there is nothing to diff.
                continue;
            }
            for (field, _) in &def.fields {
                if !used.iter().any(|u| u == field) {
                    out.push(finding(
                        f,
                        "S101",
                        line,
                        format!(
                            "snapshot use of `{name}` does not mention field `{field}`: \
                             every field must be captured in snapshot() and restored in \
                             restore() (field-set diff against the `{}` definition)",
                            def.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Collects field names used at depth 0 of a braced struct
/// expression/pattern, plus whether a `..` escape is present.
fn braced_field_names(f: &File, open: usize, close: usize) -> (Vec<String>, bool) {
    let mut used = Vec::new();
    let mut has_rest = false;
    let mut k = open + 1;
    let end = close.min(f.tokens.len());
    while k < end {
        if f.is_punct(k, "..") {
            has_rest = true;
            k += 1;
            continue;
        }
        if f.is_ident(k, "ref") || f.is_ident(k, "mut") {
            k += 1;
            continue;
        }
        if f.tokens[k].kind == Kind::Ident
            && (f.is_punct(k + 1, ":") || f.is_punct(k + 1, ",") || k + 1 == close)
        {
            used.push(f.t(k).to_string());
            if f.is_punct(k + 1, ":") {
                // Skip the value/pattern to the `,` at depth 0.
                k += 2;
                while k < end {
                    if f.tokens[k].kind == Kind::Punct {
                        match f.t(k) {
                            "(" | "[" | "{" => {
                                k = f.matching(k) + 1;
                                continue;
                            }
                            "," => {
                                k += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    k += 1;
                }
            } else {
                k += 2;
            }
            continue;
        }
        k += 1;
    }
    (used, has_rest)
}

// ---------------------------------------------------------------------
// S102: CheckSink hook reachability
// ---------------------------------------------------------------------

/// File defining the `CheckSink` trait (C001's scope).
const CHECK_TRAIT_FILE: &str = "crates/core/src/check.rs";

/// The oracle hook trait.
const HOOK_TRAIT: &str = "CheckSink";

/// Entry points hooks must be reachable from: the serial and sharded
/// event loops plus the checkpoint fork path.
const HOOK_ROOT_FNS: &[&str] = &["run", "run_until", "run_threads", "snapshot", "restore"];

fn s102_hook_reachability(model: &Model, out: &mut Vec<Finding>) {
    let Some(def_fi) = model.file_index(CHECK_TRAIT_FILE) else {
        return;
    };
    let methods: Vec<FnId> = model.items[def_fi]
        .fns
        .iter()
        .enumerate()
        .filter(|(_, func)| func.owner.as_deref() == Some(HOOK_TRAIT))
        .map(|(idx, _)| FnId { file: def_fi, idx })
        .collect();
    if methods.is_empty() {
        return;
    }
    let roots = named_fns_in_crate(model, "core", HOOK_ROOT_FNS);
    if roots.is_empty() {
        // No entry points in scope (fixture mini-workspace or partial
        // checkout): reachability is unanswerable, so stay silent.
        return;
    }
    let reach = reachable(model, &roots, "core", &[]);
    let def_file = &model.files[def_fi];
    for m in methods {
        if reach.contains(&m) {
            continue;
        }
        let func = model.fn_item(m);
        out.push(finding(
            def_file,
            "S102",
            func.line,
            format!(
                "CheckSink hook `{}` is not reachable through the call graph from the \
                 core entry points ({}): the consistency oracle never observes this edge",
                func.name,
                HOOK_ROOT_FNS.join("/")
            ),
        ));
    }
}

/// Every non-test fn in `crate_dir`'s src whose name is in `names`, in
/// deterministic file order.
fn named_fns_in_crate(model: &Model, crate_dir: &str, names: &[&str]) -> Vec<FnId> {
    let mut roots = Vec::new();
    for (fi, f) in model.files.iter().enumerate() {
        if f.crate_dir.as_deref() != Some(crate_dir) || !f.path.contains("/src/") {
            continue;
        }
        for (idx, func) in model.items[fi].fns.iter().enumerate() {
            if names.contains(&func.name.as_str()) && !f.in_test(func.line) {
                roots.push(FnId { file: fi, idx });
            }
        }
    }
    roots
}

// ---------------------------------------------------------------------
// S103: shard-worker effect discipline
// ---------------------------------------------------------------------

/// The sharded kernel file; S103 activates only when this exact path
/// defines the worker entry points (lookalike paths stay out of scope).
const SHARD_FILE: &str = "crates/core/src/shard.rs";

/// Functions where shard-worker execution enters handler code.
const WORKER_ENTRY_FNS: &[&str] = &["worker_loop", "execute_round"];

/// The audited effect boundary: `Fx` owns the only legal direct calls
/// to the queue/mesh/oracle, so traversal marks its methods reachable
/// without descending into (or flagging) their bodies.
const EFFECT_BOUNDARY: &[&str] = &["Fx"];

/// Calendar-queue scheduling methods workers must not call directly.
const SCHED_METHODS: &[&str] = &["schedule", "schedule_fusable"];

/// Metrics-registry methods workers must not call directly.
const METRIC_METHODS: &[&str] = &[
    "counter",
    "histogram",
    "record",
    "record_max",
    "observe",
    "inc",
];

/// Receiver names that identify a live metrics registry.
const METRIC_RECEIVERS: &[&str] = &["reg", "registry", "obs"];

fn s103_shard_effects(model: &Model, out: &mut Vec<Finding>) {
    let Some(shard_fi) = model.file_index(SHARD_FILE) else {
        return;
    };
    let roots: Vec<FnId> = model.items[shard_fi]
        .fns
        .iter()
        .enumerate()
        .filter(|(_, func)| {
            WORKER_ENTRY_FNS.contains(&func.name.as_str())
                && !model.files[shard_fi].in_test(func.line)
        })
        .map(|(idx, _)| FnId {
            file: shard_fi,
            idx,
        })
        .collect();
    if roots.is_empty() {
        return;
    }
    let reach = reachable(model, &roots, "core", EFFECT_BOUNDARY);
    for (fi, f) in model.files.iter().enumerate() {
        for (idx, func) in model.items[fi].fns.iter().enumerate() {
            let id = FnId { file: fi, idx };
            if !reach.contains(&id)
                || func
                    .owner
                    .as_deref()
                    .is_some_and(|o| EFFECT_BOUNDARY.contains(&o))
                || model.is_test_fn(id)
            {
                continue;
            }
            let Some(body) = func.body else { continue };
            for call in calls_in_body(f, body) {
                if call.kind != CallKind::Method {
                    continue;
                }
                let name = call.name.as_str();
                let recv = call.recv.as_deref();
                let banned = (SCHED_METHODS.contains(&name) && recv != Some("fx"))
                    || (name == "send" && recv == Some("mesh"))
                    || (METRIC_METHODS.contains(&name)
                        && recv.is_some_and(|r| METRIC_RECEIVERS.contains(&r)));
                if banned {
                    out.push(finding(
                        f,
                        "S103",
                        call.line,
                        format!(
                            "`{}.{name}(...)` in `{}` is reachable from the shard-worker \
                             entry points ({}): workers apply queue/mesh/metrics effects \
                             only through the effect log (`fx.*`)",
                            recv.unwrap_or("<expr>"),
                            model.fn_path(id),
                            WORKER_ENTRY_FNS.join("/")
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// S104: wire/manifest key agreement
// ---------------------------------------------------------------------

/// How a producer/consumer key pair must relate.
#[derive(Debug, Clone, Copy)]
enum Agreement {
    /// Emitted and accepted key sets must be identical (wire specs:
    /// strict parsing both ways).
    Equal,
    /// Every emitted key must be accepted (manifest: the validator may
    /// not silently drop producer keys).
    EmitMustBeAccepted,
    /// Every accepted key must be emitted (serve client: reading a key
    /// the server never writes is dead or drifted protocol).
    AcceptMustBeEmitted,
}

/// One producer/consumer pairing. Empty fn lists mean "every non-test
/// function in the file".
struct KeyPair {
    label: &'static str,
    emit_file: &'static str,
    emit_fns: &'static [&'static str],
    accept_file: &'static str,
    accept_fns: &'static [&'static str],
    agreement: Agreement,
}

const KEY_PAIRS: &[KeyPair] = &[
    KeyPair {
        label: "wire spec",
        emit_file: "crates/bench/src/spec/wire.rs",
        emit_fns: &["to_json", "variant_json", "scheme_to_json"],
        accept_file: "crates/bench/src/spec/wire.rs",
        accept_fns: &["from_json", "variant_from_json", "scheme_from_json"],
        agreement: Agreement::Equal,
    },
    KeyPair {
        label: "run manifest",
        emit_file: "crates/bench/src/manifest.rs",
        emit_fns: &[
            "assemble_manifest",
            "variant_json",
            "config_json",
            "trace_json",
            "cell_json",
            "aggregates_json",
            "node_json",
            "metrics_json",
        ],
        accept_file: "crates/bench/src/manifest.rs",
        accept_fns: &["validate_doc"],
        agreement: Agreement::EmitMustBeAccepted,
    },
    KeyPair {
        label: "serve api",
        emit_file: "crates/serve/src/server.rs",
        emit_fns: &[],
        accept_file: "crates/serve/src/client.rs",
        accept_fns: &[],
        agreement: Agreement::AcceptMustBeEmitted,
    },
];

/// Which extraction rules apply to a side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Emit,
    Accept,
}

fn s104_key_agreement(model: &Model, out: &mut Vec<Finding>) {
    for pair in KEY_PAIRS {
        let emit = side_keys(model, pair.emit_file, pair.emit_fns, Side::Emit);
        let accept = side_keys(model, pair.accept_file, pair.accept_fns, Side::Accept);
        let (Some(emit), Some(accept)) = (emit, accept) else {
            continue;
        };
        let accept_names = fn_list_label(pair.accept_fns);
        let emit_names = fn_list_label(pair.emit_fns);
        if matches!(
            pair.agreement,
            Agreement::Equal | Agreement::EmitMustBeAccepted
        ) {
            let emit_f = &model.files[model.file_index(pair.emit_file).unwrap()];
            for (key, (sym, line)) in &emit {
                if !accept.contains_key(key) {
                    out.push(finding(
                        emit_f,
                        "S104",
                        *line,
                        format!(
                            "{} key `{key}` is emitted by `{sym}` but never accepted by \
                             {accept_names}: a reader silently drops (or rejects) it",
                            pair.label
                        ),
                    ));
                }
            }
        }
        if matches!(
            pair.agreement,
            Agreement::Equal | Agreement::AcceptMustBeEmitted
        ) {
            let accept_f = &model.files[model.file_index(pair.accept_file).unwrap()];
            for (key, (sym, line)) in &accept {
                if !emit.contains_key(key) {
                    out.push(finding(
                        accept_f,
                        "S104",
                        *line,
                        format!(
                            "{} key `{key}` is accepted by `{sym}` but never emitted by \
                             {emit_names}: dead or drifted protocol surface",
                            pair.label
                        ),
                    ));
                }
            }
        }
    }
}

fn fn_list_label(fns: &[&str]) -> String {
    if fns.is_empty() {
        "the paired file".to_string()
    } else {
        fns.join("/")
    }
}

/// Key → (emitting/accepting symbol path, first line). `None` when the
/// file or every named fn is absent (pair not applicable — fixture
/// mini-workspaces and partial checkouts stay silent).
fn side_keys(
    model: &Model,
    path: &str,
    fns: &[&str],
    side: Side,
) -> Option<BTreeMap<String, (String, u32)>> {
    let fi = model.file_index(path)?;
    let f = &model.files[fi];
    let mut keys = BTreeMap::new();
    let mut any_fn = false;
    for (idx, func) in model.items[fi].fns.iter().enumerate() {
        if !fns.is_empty() && !fns.contains(&func.name.as_str()) {
            continue;
        }
        let id = FnId { file: fi, idx };
        if model.is_test_fn(id) {
            continue;
        }
        let Some(body) = func.body else { continue };
        any_fn = true;
        let path_sym = model.fn_path(id);
        let mut add = |key: String, line: u32| {
            keys.entry(key).or_insert_with(|| (path_sym.clone(), line));
        };
        match side {
            Side::Emit => emitted_keys(f, body, &mut add),
            Side::Accept => accepted_keys(f, body, &mut add),
        }
    }
    any_fn.then_some(keys)
}

/// A string literal that looks like a JSON object key.
fn key_shape(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Unquotes a `Str` token (plain `"…"` only; raw/byte strings are never
/// object keys here).
fn str_value(f: &File, i: usize) -> &str {
    f.t(i).trim_matches('"')
}

/// Emission sites: the first element of a `("key", value)` pair — the
/// `Json::obj` / `members.push(…)` idiom — including the
/// `("key".to_string(), value)` variant.
fn emitted_keys(f: &File, body: (usize, usize), add: &mut dyn FnMut(String, u32)) {
    let (open, close) = body;
    for i in open + 1..close.min(f.tokens.len()) {
        if f.tokens[i].kind != Kind::Str {
            continue;
        }
        let key = str_value(f, i);
        if !key_shape(key) || !f.is_punct(i.wrapping_sub(1), "(") {
            continue;
        }
        let tuple_key = f.is_punct(i + 1, ",");
        let to_string_key = f.is_punct(i + 1, ".")
            && f.is_ident(i + 2, "to_string")
            && f.is_punct(i + 3, "(")
            && f.is_punct(i + 4, ")")
            && f.is_punct(i + 5, ",");
        if tuple_key || to_string_key {
            add(key.to_string(), f.tokens[i].line);
        }
    }
}

/// Acceptance sites: known-key slices passed to `reject_unknown_keys` /
/// `expect_keys` (or iterated by a `for … in […]` header), second
/// arguments of `field(…)` lookups, and `.get("key")` reads.
fn accepted_keys(f: &File, body: (usize, usize), add: &mut dyn FnMut(String, u32)) {
    let (open, close) = body;
    let end = close.min(f.tokens.len());
    for i in open + 1..end {
        match f.tokens[i].kind {
            Kind::Str => {
                let key = str_value(f, i);
                if !key_shape(key) {
                    continue;
                }
                let in_slice = (f.is_punct(i.wrapping_sub(1), "[")
                    || f.is_punct(i.wrapping_sub(1), ","))
                    && (f.is_punct(i + 1, ",") || f.is_punct(i + 1, "]"))
                    && slice_is_key_list(f, i);
                let in_get = i >= 3
                    && f.is_punct(i - 1, "(")
                    && f.is_ident(i - 2, "get")
                    && f.is_punct(i - 3, ".")
                    && f.is_punct(i + 1, ")");
                if in_slice || in_get {
                    add(key.to_string(), f.tokens[i].line);
                }
            }
            Kind::Ident if f.t(i) == "field" && f.is_punct(i + 1, "(") => {
                // Every key-shaped literal at the call's own argument
                // depth (nested `field(…)` calls report their own).
                let call_close = f.matching(i + 1);
                let mut k = i + 2;
                while k < call_close.min(end) {
                    if f.tokens[k].kind == Kind::Punct && matches!(f.t(k), "(" | "[" | "{") {
                        k = f.matching(k) + 1;
                        continue;
                    }
                    if f.tokens[k].kind == Kind::Str {
                        let key = str_value(f, k);
                        if key_shape(key) {
                            add(key.to_string(), f.tokens[k].line);
                        }
                    }
                    k += 1;
                }
            }
            _ => {}
        }
    }
}

/// Whether the slice literal containing the `Str` at `i` is a known-key
/// list: an argument of `reject_unknown_keys`/`expect_keys`, or the
/// subject of a `for … in […]` header. Bare string slices elsewhere
/// (scheme-kind tables, test vectors) are not acceptance sites.
fn slice_is_key_list(f: &File, i: usize) -> bool {
    // Walk left over sibling elements to the opening `[`.
    let mut j = i;
    while j > 0 && (f.tokens[j - 1].kind == Kind::Str || f.is_punct(j - 1, ",")) {
        j -= 1;
    }
    if j == 0 || !f.is_punct(j - 1, "[") {
        return false;
    }
    let mut p = j - 1; // the `[`
    if p > 0 && f.is_punct(p - 1, "&") {
        p -= 1;
    }
    if p > 0 && f.is_ident(p - 1, "in") {
        return true;
    }
    // Look a few tokens back for the accepting callee.
    let lo = p.saturating_sub(6);
    (lo..p).any(|k| f.is_ident(k, "reject_unknown_keys") || f.is_ident(k, "expect_keys"))
}
