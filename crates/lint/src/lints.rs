//! The lint passes.
//!
//! Every lint is syntactic, deterministic, and scoped by the workspace
//! layout (see `DESIGN.md` §11 for each lint's rationale and the
//! suppression policy). File-local passes run per file; `M001` and `C001`
//! are workspace passes that need every file at once.

use crate::lex::Kind;
use crate::model::Model;
use crate::report::Finding;
use crate::semantic;
use crate::source::File;

/// Descriptor for one lint: stable ID plus one-line summary (for
/// `pfsim-lint --list` and the JSON report's ID validation).
pub struct Lint {
    /// Stable ID, e.g. `"D001"`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every lint this tool knows, in ID order.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "C001",
        summary: "every CheckSink hook method must have a call site in crates/core",
    },
    Lint {
        id: "D001",
        summary: "no std HashMap/HashSet in sim crates (FxHashMap or sorted structures only)",
    },
    Lint {
        id: "D002",
        summary: "no wall-clock or OS randomness (Instant/SystemTime/thread_rng/...) in sim crates",
    },
    Lint {
        id: "D003",
        summary: "hash-map iteration feeding observable output must be sorted or reduced order-insensitively",
    },
    Lint {
        id: "K001",
        summary: "simulation-clock fields are written only inside the event kernels (core/src/{system,shard}.rs)",
    },
    Lint {
        id: "K002",
        summary: "no panic!/unwrap/expect on the event hot path outside debug_assert guards",
    },
    Lint {
        id: "K003",
        summary: "snapshot modules destructure exhaustively: no `..` rest patterns or Default::default()",
    },
    Lint {
        id: "M001",
        summary: "each metrics name literal is registered exactly once, with one kind",
    },
    Lint {
        id: "S000",
        summary: "malformed pfsim-lint suppression comment (missing ids or ` -- reason`)",
    },
    Lint {
        id: "S101",
        summary: "snapshot modules must mention every field of each snapshotted struct (field-set diff)",
    },
    Lint {
        id: "S102",
        summary: "every CheckSink hook must be call-graph reachable from the core entry points",
    },
    Lint {
        id: "S103",
        summary: "code reachable from shard-worker entry points applies effects only through the Fx log",
    },
    Lint {
        id: "S104",
        summary: "wire/manifest/serve string-key sets emitted and accepted must agree symbolically",
    },
    Lint {
        id: "T001",
        summary: "threads and sync primitives only in approved concurrency modules (bench/parallel, bench/lib, core/shard, serve/src)",
    },
    Lint {
        id: "U001",
        summary: "every `unsafe` must carry a `// SAFETY:` comment on the same or previous line",
    },
];

/// Whether `id` is a known lint ID.
pub fn known_id(id: &str) -> bool {
    LINTS.iter().any(|l| l.id == id)
}

/// Crates whose code runs inside (or feeds) the simulation: determinism
/// lints apply to their non-test code.
const SIM_CRATES: &[&str] = &[
    "sim-engine",
    "mem",
    "cache",
    "coherence",
    "network",
    "prefetch",
    "workloads",
    "core",
    "check",
    "analysis",
];

/// Identifiers D002 bans inside sim crates.
const WALLCLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "OsRng",
    "ThreadRng",
    "from_entropy",
    "getrandom",
];

/// Hash-container type names D001/D003 track.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iterator-producing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Depth-0 chain members that make a hash iteration deterministic: either
/// an explicit sort / deterministic-snapshot helper, or an
/// order-insensitive reduction.
const ORDER_SAFE: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted_entries",
    "sorted_keys",
    "sorted_values",
    "len",
    "count",
    "sum",
    "product",
    "min",
    "max",
    "all",
    "any",
    "is_empty",
    "contains",
    "contains_key",
    "get",
];

/// Files forming the event hot path: code here runs once per simulated
/// event, so a stray panic is both a robustness and a review problem.
fn is_hot_path(f: &File) -> bool {
    match f.crate_dir.as_deref() {
        Some("core") => {
            matches!(
                file_name(&f.path),
                "system.rs" | "shard.rs" | "node.rs" | "sync.rs" | "msg.rs"
            ) && f.path.contains("/src/")
        }
        Some("sim-engine") => {
            matches!(file_name(&f.path), "queue.rs" | "server.rs" | "time.rs")
                && f.path.contains("/src/")
        }
        Some("cache" | "coherence" | "network" | "prefetch") => f.path.contains("/src/"),
        _ => false,
    }
}

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn is_sim_crate(f: &File) -> bool {
    f.crate_dir
        .as_deref()
        .is_some_and(|c| SIM_CRATES.contains(&c))
        && f.path.contains("/src/")
}

/// Runs every lint over the workspace and returns raw (unsuppressed)
/// findings sorted by `(file, line, id)`.
pub fn run_all(files: &[File]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        file_lints(f, &mut out);
    }
    m001_metric_names(files, &mut out);
    c001_oracle_coverage(files, &mut out);
    let model = Model::build(files);
    semantic::run(&model, &mut out);
    annotate_symbols(&model, &mut out);
    apply_suppressions(files, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.id).cmp(&(&b.file, b.line, b.id)));
    out
}

/// Attaches the enclosing function's symbol path and declaration line
/// to every finding the symbol model can place (report schema v2).
fn annotate_symbols(model: &Model, findings: &mut [Finding]) {
    for fin in findings.iter_mut() {
        let Some(fi) = model.file_index(&fin.file) else {
            continue;
        };
        if let Some(id) = model.enclosing_fn(fi, fin.line) {
            fin.symbol = Some(model.fn_path(id));
            fin.symbol_line = Some(model.fn_item(id).line);
        }
    }
}

/// All file-local passes.
fn file_lints(f: &File, out: &mut Vec<Finding>) {
    s000_malformed_suppressions(f, out);
    u001_safety_comments(f, out);
    k001_clock_writes(f, out);
    t001_thread_primitives(f, out);
    if is_sim_crate(f) {
        d001_std_hash(f, out);
        d002_wallclock(f, out);
        d003_hash_iteration(f, out);
    }
    if is_hot_path(f) {
        k002_hot_panics(f, out);
    }
    k003_exhaustive_snapshots(f, out);
}

fn finding(f: &File, id: &'static str, line: u32, message: String) -> Finding {
    Finding {
        id,
        file: f.path.clone(),
        line,
        message,
        suppressed: false,
        reason: None,
        symbol: None,
        symbol_line: None,
    }
}

// ---------------------------------------------------------------------
// S000 / U001 (apply everywhere, test code included)
// ---------------------------------------------------------------------

fn s000_malformed_suppressions(f: &File, out: &mut Vec<Finding>) {
    for &line in &f.malformed_suppressions {
        out.push(finding(
            f,
            "S000",
            line,
            "malformed suppression: expected `pfsim-lint: allow(<ID>, ...) -- <reason>`"
                .to_string(),
        ));
    }
}

fn u001_safety_comments(f: &File, out: &mut Vec<Finding>) {
    for (i, tok) in f.tokens.iter().enumerate() {
        if tok.kind != Kind::Ident || f.t(i) != "unsafe" {
            continue;
        }
        let line = tok.line;
        let documented = f.comments.iter().any(|c| {
            (c.line == line || c.line + 1 == line) && f.src[c.lo..c.hi].contains("SAFETY:")
        });
        if !documented {
            out.push(finding(
                f,
                "U001",
                line,
                "`unsafe` without a `// SAFETY:` comment on the same or previous line".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// K001: simulation-clock writes outside the event kernel
// ---------------------------------------------------------------------

/// The fields that together hold simulated time ("pclock" state): the
/// kernel cursor plus the per-node processor clocks.
const CLOCK_FIELDS: &[&str] = &["last_time", "cpu_time", "issue_time"];

/// The files forming the event kernel: the only places simulated time may
/// advance. The serial loop and the sharded leader both fold event times
/// into `last_time`; everything else only reads the clocks.
const KERNEL_FILES: &[&str] = &["crates/core/src/system.rs", "crates/core/src/shard.rs"];

fn k001_clock_writes(f: &File, out: &mut Vec<Finding>) {
    if KERNEL_FILES.contains(&f.path.as_str()) {
        return;
    }
    for i in 1..f.tokens.len() {
        if f.tokens[i].kind != Kind::Ident || !CLOCK_FIELDS.contains(&f.t(i)) {
            continue;
        }
        if !f.is_punct(i - 1, ".") {
            continue;
        }
        if f.in_test(f.tokens[i].line) {
            continue;
        }
        let assigns = f.tokens.get(i + 1).is_some_and(|t| t.kind == Kind::Punct)
            && matches!(f.t(i + 1), "=" | "+=" | "-=");
        if assigns {
            out.push(finding(
                f,
                "K001",
                f.tokens[i].line,
                format!(
                    "simulation-clock field `{}` written outside the event kernels \
                     (crates/core/src/{{system,shard}}.rs)",
                    f.t(i)
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// T001: thread/sync primitives outside approved concurrency modules
// ---------------------------------------------------------------------

/// The only non-test modules allowed to spawn threads or hold sync
/// primitives: the grid-level fan-out harness, the trace cache it shares,
/// and the sharded event kernel's leader/worker handshake. Everything
/// else must stay single-threaded so determinism arguments stay local to
/// these files.
const CONCURRENCY_MODULES: &[&str] = &[
    "crates/bench/src/parallel.rs",
    "crates/bench/src/lib.rs",
    "crates/core/src/shard.rs",
];

/// Directory prefixes whose non-test sources are concurrent by design.
/// The experiment service is a worker pool wrapped around the (still
/// single-threaded) simulator, so every module under it may hold sync
/// primitives; the trailing slash keeps lookalike paths (`crates/served/`)
/// outside the allowance.
const CONCURRENCY_DIRS: &[&str] = &["crates/serve/src/"];

/// Sync primitive type names banned outside [`CONCURRENCY_MODULES`].
/// `Arc` is deliberately absent: immutable sharing is harmless and
/// widespread (packed traces, spec tables).
const SYNC_PRIMITIVES: &[&str] = &["Mutex", "RwLock", "Condvar", "OnceLock", "mpsc"];

/// `std::thread` functions banned outside [`CONCURRENCY_MODULES`] (only
/// flagged as the `thread::name` path form, to spare unrelated local
/// idents like a variable named `scope`).
const THREAD_CALLS: &[&str] = &["spawn", "scope", "yield_now", "park", "sleep"];

fn t001_thread_primitives(f: &File, out: &mut Vec<Finding>) {
    if CONCURRENCY_MODULES.contains(&f.path.as_str())
        || CONCURRENCY_DIRS.iter().any(|d| f.path.starts_with(d))
    {
        return;
    }
    for (i, tok) in f.tokens.iter().enumerate() {
        if tok.kind != Kind::Ident || f.in_test(tok.line) {
            continue;
        }
        let text = f.t(i);
        let banned = SYNC_PRIMITIVES.contains(&text)
            || text.starts_with("Atomic")
            || (THREAD_CALLS.contains(&text)
                && i >= 2
                && f.is_punct(i - 1, "::")
                && f.t(i - 2) == "thread");
        if banned {
            out.push(finding(
                f,
                "T001",
                tok.line,
                format!(
                    "`{text}` outside an approved concurrency module: threads and \
                     sync primitives live only in {} and under {}",
                    CONCURRENCY_MODULES.join(", "),
                    CONCURRENCY_DIRS.join(", ")
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// K002: panics on the event hot path
// ---------------------------------------------------------------------

fn k002_hot_panics(f: &File, out: &mut Vec<Finding>) {
    let masked = debug_assert_mask(f);
    for (i, &m) in masked.iter().enumerate() {
        if m || f.tokens[i].kind != Kind::Ident {
            continue;
        }
        let line = f.tokens[i].line;
        if f.in_test(line) {
            continue;
        }
        let text = f.t(i);
        let hit = match text {
            "unwrap" | "expect" => i > 0 && f.is_punct(i - 1, ".") && f.is_punct(i + 1, "("),
            "panic" => f.is_punct(i + 1, "!"),
            _ => false,
        };
        if hit {
            out.push(finding(
                f,
                "K002",
                line,
                format!(
                    "`{text}` on the event hot path: handle the case, guard with \
                     debug_assert, or suppress with a written invariant"
                ),
            ));
        }
    }
}

/// Marks tokens inside `debug_assert*!(...)` calls, which may panic by
/// design (debug builds only).
fn debug_assert_mask(f: &File) -> Vec<bool> {
    let mut mask = vec![false; f.tokens.len()];
    let mut i = 0usize;
    while i < f.tokens.len() {
        if f.tokens[i].kind == Kind::Ident
            && f.t(i).starts_with("debug_assert")
            && f.is_punct(i + 1, "!")
            && f.is_punct(i + 2, "(")
        {
            let close = f.matching(i + 2);
            for m in mask
                .iter_mut()
                .take(close.min(f.tokens.len() - 1) + 1)
                .skip(i)
            {
                *m = true;
            }
            i = close + 1;
        } else {
            i += 1;
        }
    }
    mask
}

// ---------------------------------------------------------------------
// K003: non-exhaustive state capture in snapshot modules
// ---------------------------------------------------------------------

/// The modules that copy machine state into/out of checkpoints. Their
/// whole correctness argument is "the compiler errors when a field is
/// added but not captured", so both escape hatches — `..` rest patterns
/// and `Default::default()` — are banned outright: each one lets a new
/// field silently miss the snapshot and break restore bit-identity.
const SNAPSHOT_MODULES: &[&str] = &["crates/core/src/checkpoint.rs"];

fn k003_exhaustive_snapshots(f: &File, out: &mut Vec<Finding>) {
    if !SNAPSHOT_MODULES.contains(&f.path.as_str()) {
        return;
    }
    for (i, tok) in f.tokens.iter().enumerate() {
        if f.in_test(tok.line) {
            continue;
        }
        // A rest pattern is `..` directly before the closing delimiter
        // (a range expression always has an operand or `=` there).
        let rest_pattern = tok.kind == Kind::Punct
            && f.t(i) == ".."
            && (f.is_punct(i + 1, "}") || f.is_punct(i + 1, ")"));
        if rest_pattern {
            out.push(finding(
                f,
                "K003",
                tok.line,
                "`..` rest pattern in a snapshot module: destructure every field so a \
                 newly added one cannot silently escape the checkpoint"
                    .to_string(),
            ));
        }
        let default_call = tok.kind == Kind::Ident
            && f.t(i) == "Default"
            && f.is_punct(i + 1, "::")
            && f.is_ident(i + 2, "default");
        if default_call {
            out.push(finding(
                f,
                "K003",
                tok.line,
                "`Default::default()` in a snapshot module: copy the live value \
                 explicitly so restored state cannot silently reset"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// D001 / D002: banned names in sim crates
// ---------------------------------------------------------------------

fn d001_std_hash(f: &File, out: &mut Vec<Finding>) {
    for (i, tok) in f.tokens.iter().enumerate() {
        if tok.kind != Kind::Ident || f.in_test(tok.line) {
            continue;
        }
        let text = f.t(i);
        if text == "HashMap" || text == "HashSet" {
            out.push(finding(
                f,
                "D001",
                tok.line,
                format!(
                    "`{text}` in a sim crate: use pfsim_mem::Fx{text} (deterministic \
                     iteration order) or a sorted structure"
                ),
            ));
        }
    }
}

fn d002_wallclock(f: &File, out: &mut Vec<Finding>) {
    for (i, tok) in f.tokens.iter().enumerate() {
        if tok.kind != Kind::Ident || f.in_test(tok.line) {
            continue;
        }
        let text = f.t(i);
        if WALLCLOCK_IDENTS.contains(&text) {
            out.push(finding(
                f,
                "D002",
                tok.line,
                format!(
                    "`{text}` in a sim crate: simulation results must not depend on \
                     wall-clock time or OS randomness (use Cycle / SplitMix64)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// D003: unsorted hash-map iteration
// ---------------------------------------------------------------------

fn d003_hash_iteration(f: &File, out: &mut Vec<Finding>) {
    let names = hash_typed_names(f);
    if names.is_empty() {
        return;
    }
    let mut i = 0usize;
    while i < f.tokens.len() {
        if f.tokens[i].kind != Kind::Ident || !names.iter().any(|n| n == f.t(i)) {
            i += 1;
            continue;
        }
        let line = f.tokens[i].line;
        if f.in_test(line) {
            i += 1;
            continue;
        }
        // An iteration is `<name>.iter()`-style, or the name as the direct
        // subject of a `for … in [&[mut]] <name> {` header.
        let method_iter = f.is_punct(i + 1, ".")
            && f.tokens
                .get(i + 2)
                .is_some_and(|t| t.kind == Kind::Ident && ITER_METHODS.contains(&f.t(i + 2)));
        let direct_for = f.is_punct(i + 1, "{") && {
            let mut j = i;
            while j > 0 && (f.is_punct(j - 1, "&") || f.is_ident(j - 1, "mut")) {
                j -= 1;
            }
            f.is_ident(j.wrapping_sub(1), "in")
        };
        if !(method_iter || direct_for) {
            i += 1;
            continue;
        }
        if statement_is_order_safe(f, i) {
            i += 1;
            continue;
        }
        out.push(finding(
            f,
            "D003",
            line,
            format!(
                "iteration over hash container `{}` without a sort or order-insensitive \
                 reduction: hash order must never feed an observable output",
                f.t(i)
            ),
        ));
        i += 1;
    }
}

/// Collects identifiers declared (let/param/field) with an outermost
/// hash-container type in this file, plus `let x = FxHashMap::…` inits.
fn hash_typed_names(f: &File) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..f.tokens.len() {
        if f.tokens[i].kind != Kind::Ident || !HASH_TYPES.contains(&f.t(i)) {
            continue;
        }
        // `name : [& [mut]] HashType` — declaration with annotation.
        let mut j = i;
        while j > 0
            && (f.is_punct(j - 1, "&")
                || f.is_ident(j - 1, "mut")
                || f.tokens[j - 1].kind == Kind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && f.is_punct(j - 1, ":") && f.tokens[j - 2].kind == Kind::Ident {
            push_unique(&mut names, f.t(j - 2));
            continue;
        }
        // `let [mut] name = HashType ::` — inferred-type init.
        if i >= 2 && f.is_punct(i - 1, "=") && f.tokens[i - 2].kind == Kind::Ident {
            let name_at = i - 2;
            let lead = name_at.checked_sub(1).map(|k| f.t(k));
            if matches!(lead, Some("let") | Some("mut")) {
                push_unique(&mut names, f.t(name_at));
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, n: &str) {
    if !names.iter().any(|x| x == n) {
        names.push(n.to_string());
    }
}

/// Decides whether the statement containing the iteration at token `i`
/// is order-safe: its depth-0 chain contains a sort / snapshot helper or
/// an order-insensitive reduction, or it collects into a binding that is
/// sorted within the next few statements.
fn statement_is_order_safe(f: &File, i: usize) -> bool {
    let start = statement_start(f, i);
    // Walk forward from the statement start to its end (`;` or a `{` at
    // depth 0 — a for-loop body or match arm), collecting depth-0 idents.
    let mut depth = 0i32;
    let mut j = start;
    let mut chain: Vec<&str> = Vec::new();
    let mut end = f.tokens.len();
    while j < f.tokens.len() {
        let t = f.t(j);
        match f.tokens[j].kind {
            Kind::Punct => match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    end = j;
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth <= 0 => {
                    end = j;
                    break;
                }
                _ => {}
            },
            Kind::Ident if depth == 0 => chain.push(t),
            _ => {}
        }
        j += 1;
    }
    if chain.iter().any(|t| ORDER_SAFE.contains(t)) {
        return true;
    }
    // `let <name> = … .collect();` followed shortly by `<name>.sort…`.
    if chain.first() == Some(&"let") && chain.contains(&"collect") {
        let name_at = if f.is_ident(start + 1, "mut") {
            start + 2
        } else {
            start + 1
        };
        if f.tokens.get(name_at).is_some_and(|t| t.kind == Kind::Ident) {
            let name = f.t(name_at);
            let horizon = (end + 60).min(f.tokens.len().saturating_sub(2));
            for k in end..horizon {
                if f.is_ident(k, name)
                    && f.is_punct(k + 1, ".")
                    && f.tokens
                        .get(k + 2)
                        .is_some_and(|t| t.kind == Kind::Ident && f.t(k + 2).starts_with("sort"))
                {
                    return true;
                }
            }
        }
    }
    false
}

/// Finds the first token of the statement containing token `i`: walks
/// backward to the nearest `;`, `{` or `}` that is not nested deeper than
/// the statement itself (an unmatched `(` on the way back means token `i`
/// sits inside a call argument — the statement still starts further
/// left).
fn statement_start(f: &File, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        let k = j - 1;
        if f.tokens[k].kind == Kind::Punct {
            match f.t(k) {
                ")" | "]" => depth += 1,
                "(" | "[" => depth -= 1,
                ";" | "{" | "}" if depth <= 0 => return j,
                _ => {}
            }
        }
        j = k;
    }
    0
}

// ---------------------------------------------------------------------
// M001: metrics name registration
// ---------------------------------------------------------------------

/// Receiver names that identify a live `Registry` (as opposed to a
/// `MetricsSnapshot` lookup, which reads by the same method names).
const REGISTRY_RECEIVERS: &[&str] = &["reg", "registry"];

fn m001_metric_names(files: &[File], out: &mut Vec<Finding>) {
    // name -> (kind, file index, line)
    let mut seen: Vec<(String, &'static str, usize, u32)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for i in 2..f.tokens.len() {
            let reg_call = f.tokens[i].kind == Kind::Ident
                && matches!(f.t(i), "counter" | "histogram" | "record" | "record_max")
                && f.is_punct(i - 1, ".")
                && f.tokens[i - 2].kind == Kind::Ident
                && REGISTRY_RECEIVERS.contains(&f.t(i - 2))
                && f.is_punct(i + 1, "(")
                && f.tokens.get(i + 2).is_some_and(|t| t.kind == Kind::Str);
            if !reg_call || f.in_test(f.tokens[i].line) {
                continue;
            }
            let lit = f.t(i + 2);
            let name = lit.trim_matches('"').to_string();
            let kind: &'static str = if f.t(i) == "histogram" {
                "histogram"
            } else {
                "counter"
            };
            let line = f.tokens[i].line;
            if let Some((_, prev_kind, pfi, pline)) = seen.iter().find(|(n, ..)| *n == name) {
                let msg = if *prev_kind == kind {
                    format!(
                        "metric `{name}` registered more than once (first at {}:{pline}): \
                         register once and pass the id handle around",
                        files[*pfi].path
                    )
                } else {
                    format!(
                        "metric `{name}` registered as both {prev_kind} and {kind} \
                         (first at {}:{pline})",
                        files[*pfi].path
                    )
                };
                out.push(finding(f, "M001", line, msg));
            } else {
                seen.push((name, kind, fi, line));
            }
        }
    }
}

// ---------------------------------------------------------------------
// C001: oracle-hook coverage
// ---------------------------------------------------------------------

/// Path of the file defining the `CheckSink` trait.
const CHECK_TRAIT_FILE: &str = "crates/core/src/check.rs";

fn c001_oracle_coverage(files: &[File], out: &mut Vec<Finding>) {
    let Some(def) = files.iter().find(|f| f.path == CHECK_TRAIT_FILE) else {
        return;
    };
    let methods = trait_methods(def, "CheckSink");
    for (name, line) in methods {
        let called = files.iter().any(|f| {
            f.crate_dir.as_deref() == Some("core")
                && f.path.contains("/src/")
                && f.path != CHECK_TRAIT_FILE
                && has_method_call(f, &name)
        });
        if !called {
            out.push(finding(
                def,
                "C001",
                line,
                format!(
                    "CheckSink hook `{name}` has no call site in crates/core/src: a \
                     protocol edge is invisible to the consistency oracle"
                ),
            ));
        }
    }
}

/// Collects `(method name, line)` for every `fn` declared directly inside
/// `trait <trait_name> { … }`.
fn trait_methods(f: &File, trait_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        if !(f.is_ident(i, "trait") && f.is_ident(i + 1, trait_name)) {
            continue;
        }
        // Find the trait body opener (skipping generics / supertraits).
        let mut j = i + 2;
        while j < f.tokens.len() && !f.is_punct(j, "{") {
            j += 1;
        }
        if j == f.tokens.len() {
            return out;
        }
        let close = f.matching(j);
        let mut depth = 0i32;
        for k in j + 1..close {
            if f.tokens[k].kind == Kind::Punct {
                match f.t(k) {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    _ => {}
                }
            } else if depth == 0
                && f.is_ident(k, "fn")
                && f.tokens.get(k + 1).is_some_and(|t| t.kind == Kind::Ident)
            {
                out.push((f.t(k + 1).to_string(), f.tokens[k + 1].line));
            }
        }
        return out;
    }
    out
}

/// Whether non-test code in `f` contains a `.name(` method call.
fn has_method_call(f: &File, name: &str) -> bool {
    for i in 1..f.tokens.len() {
        if f.tokens[i].kind == Kind::Ident
            && f.t(i) == name
            && f.is_punct(i - 1, ".")
            && f.is_punct(i + 1, "(")
            && !f.in_test(f.tokens[i].line)
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

/// Marks findings covered by a same-line or line-above suppression.
/// `S000` is never suppressible (a broken suppression cannot excuse
/// itself).
fn apply_suppressions(files: &[File], findings: &mut [Finding]) {
    for fin in findings.iter_mut() {
        if fin.id == "S000" {
            continue;
        }
        let Some(f) = files.iter().find(|f| f.path == fin.file) else {
            continue;
        };
        let hit = f.suppressions.iter().find(|s| {
            (s.line == fin.line || s.line + 1 == fin.line) && s.ids.iter().any(|id| id == fin.id)
        });
        if let Some(s) = hit {
            fin.suppressed = true;
            fin.reason = Some(s.reason.clone());
        }
    }
}
