//! `pfsim-lint`: workspace-wide static invariant checker.
//!
//! The simulator's headline guarantee — bit-identical pclock totals across
//! serial/parallel, packed/materialized, and oracle-on/off runs — is easy
//! to break with one innocuous-looking line: an unsorted `HashMap`
//! iteration, an `Instant::now()`, a metrics name registered twice, a new
//! protocol edge that forgets its oracle hook. CI catches those hours
//! later; this crate rejects them at lint time.
//!
//! The design is a hand-rolled lexer ([`lex`]) plus lightweight token
//! scanners ([`lints`]) — no syn, no regex crate, matching the in-tree
//! FxHasher/SplitMix64/Json precedent. Lints are syntactic and scoped by
//! workspace layout; each has a stable ID, `file:line` diagnostics, and
//! per-site suppressions:
//!
//! ```text
//! // pfsim-lint: allow(K002) -- protocol invariant: reply implies txn
//! ```
//!
//! See `DESIGN.md` §11 for the lint table, rationale and suppression
//! policy, and [`lints::LINTS`] for the machine-readable list.
//!
//! # Examples
//!
//! ```
//! use pfsim_lint::{lint_source, Finding};
//!
//! let findings: Vec<Finding> = lint_source(
//!     "crates/core/src/demo.rs",
//!     "use std::collections::HashMap;\n",
//! );
//! assert_eq!(findings[0].id, "D001");
//! assert_eq!(findings[0].line, 1);
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod lex;
pub mod lints;
pub mod model;
pub mod parse;
pub mod report;
pub mod semantic;
pub mod source;

use std::path::{Path, PathBuf};

pub use report::{to_json, validate_report, Finding};
pub use source::File;

/// Lints a single in-memory source file as if it lived at `path`
/// (workspace-relative). Cross-file lints (M001/C001) see only this file.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_files(vec![File::new(path, src)])
}

/// Lints a set of already-loaded files as one workspace.
pub fn lint_files(files: Vec<File>) -> Vec<Finding> {
    lints::run_all(&files)
}

/// Directories scanned below the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path prefixes never scanned (fixtures are deliberately bad code).
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures", "target"];

/// Loads every workspace source file under `root`.
///
/// The walk order is sorted, so diagnostics and reports are byte-stable
/// run to run.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<File>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        if SKIP_PREFIXES.iter().any(|s| rel.starts_with(s)) {
            continue;
        }
        let src = std::fs::read_to_string(&p)?;
        files.push(File::new(rel, src));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` section.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
