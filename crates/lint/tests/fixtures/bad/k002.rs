//@ path: crates/coherence/src/fix.rs
//@ expect: K002 6
//@ expect: K002 9
//@ expect: K002 12
pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}
pub fn get(x: Option<u32>) -> u32 {
    x.expect("present")
}
pub fn trap() {
    panic!("boom");
}
