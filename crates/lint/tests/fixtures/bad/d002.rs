//@ path: crates/prefetch/src/fix.rs
//@ expect: D002 5
//@ expect: D002 6
//@ expect: D002 7
use std::time::Instant;
pub fn stamp() -> Instant {
    Instant::now()
}
