//@ path: crates/core/src/check.rs
//@ expect: S102 5
pub trait CheckSink {
    fn write_issued(&mut self, n: u16);
    fn fill(&mut self, n: u16);
}
