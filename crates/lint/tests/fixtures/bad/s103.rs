//@ path: crates/core/src/shard.rs
//@ expect: S103 12
pub struct Worker {
    queue: Queue,
}

impl Worker {
    pub fn worker_loop(&mut self) {
        self.flush();
    }
    fn flush(&mut self) {
        self.queue.schedule(7);
    }
}
