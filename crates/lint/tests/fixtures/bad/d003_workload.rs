//@ path: crates/workloads/src/mstride.rs
//@ expect: D003 5
use pfsim_mem::FxHashMap;
pub fn emit(rows: &FxHashMap<u64, u64>) {
    for (r, len) in rows.iter() {
        println!("{r} {len}");
    }
}
