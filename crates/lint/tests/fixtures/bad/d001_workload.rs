//@ path: crates/workloads/src/chase.rs
//@ expect: D001 5
//@ expect: D001 6
//@ expect: D001 7
use std::collections::HashMap;
pub fn ring(_nodes: usize) -> HashMap<u64, u64> {
    HashMap::default()
}
