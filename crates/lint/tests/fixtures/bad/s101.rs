//@ path: crates/core/src/checkpoint.rs
//@ expect: S101 10
pub struct Checkpoint {
    pub queue: u64,
    pub nodes: u64,
    pub started: bool,
}

pub fn snapshot(queue: u64, nodes: u64) -> Checkpoint {
    Checkpoint {
        queue,
        nodes,
    }
}
