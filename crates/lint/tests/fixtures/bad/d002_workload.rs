//@ path: crates/workloads/src/server.rs
//@ expect: D002 5
//@ expect: D002 6
//@ expect: D002 7
use std::time::Instant;
pub fn request_seed() -> Instant {
    Instant::now()
}
