//@ path: crates/bench/src/spec/wire.rs
//@ expect: S104 8
use pfsim_analysis::Json;

pub fn to_json(ops: u64, warmup: u64) -> Json {
    Json::obj(vec![
        ("ops", Json::uint(ops)),
        ("warmup", Json::uint(warmup)),
    ])
}

pub fn from_json(doc: &Json) -> Result<u64, String> {
    reject_unknown_keys(doc, &["ops"])?;
    field(doc, "ops")?.as_u64().ok_or_else(|| "not a u64".to_string())
}
