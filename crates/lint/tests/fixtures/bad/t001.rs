//@ path: crates/core/src/fix.rs
//@ expect: T001 6
//@ expect: T001 7
//@ expect: T001 10
//@ expect: T001 14
use std::sync::Mutex;
use std::sync::atomic::AtomicU32;

pub struct Holder {
    pub count: AtomicU32,
}

pub fn fan_out() {
    std::thread::spawn(|| {});
}
