//@ path: crates/core/src/engine.rs
pub fn run(sink: &mut dyn CheckSink) {
    sink.write_issued(1);
}

fn dead_audit(sink: &mut dyn CheckSink) {
    sink.fill(2);
}
