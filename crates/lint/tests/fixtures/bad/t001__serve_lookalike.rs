//@ path: crates/served/src/pool.rs
//@ expect: T001 7
//@ expect: T001 10
// The serve allowance is a directory *prefix* with a trailing slash:
// a crate whose name merely starts with "serve" (here `served`) gets
// no exemption.
use std::sync::Mutex;

pub struct NotExempt {
    pub guard: Mutex<u32>,
}
