//@ path: crates/core/src/checkpoint.rs
//@ expect: K003 6
//@ expect: K003 9
//@ expect: K003 13
pub fn fork_node(node: &Node) -> Node {
    let Node { flc, slc, .. } = node;
    Node {
        flc: flc.clone(),
        stats: Default::default(),
        slc: slc.clone(),
    }
}
pub fn fork_pair((a, ..): &(u64, u64, u64)) -> u64 {
    *a
}
