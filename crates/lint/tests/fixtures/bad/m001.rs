//@ path: crates/core/src/fix.rs
//@ expect: M001 6
//@ expect: M001 8
pub fn wire(reg: &mut Registry) {
    let a = reg.counter("read_misses");
    let b = reg.counter("read_misses");
    let c = reg.histogram("latency");
    let d = reg.counter("latency");
}
