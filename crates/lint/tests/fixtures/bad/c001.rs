//@ path: crates/core/src/check.rs
//@ expect: C001 5
//@ expect: C001 6
pub trait CheckSink {
    fn write_issued(&mut self, n: u16);
    fn fill(&mut self, n: u16);
}
