//@ path: crates/mem/src/fix.rs
//@ expect: U001 4
pub fn read(p: *const u64) -> u64 {
    unsafe { *p }
}
