//@ path: crates/workloads/src/mstride.rs
//@ expect: K001 5
//@ expect: K001 6
pub fn poke(node: &mut Node) {
    node.cpu_time += 4;
    node.last_time = 9;
}
