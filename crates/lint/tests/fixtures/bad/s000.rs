//@ path: crates/cache/src/fix.rs
//@ expect: S000 5
//@ expect: D001 6
//@ expect: S000 8
// pfsim-lint: allow(D001)
use std::collections::HashMap;
// pfsim-lint: allow(S000) -- a suppression cannot excuse a broken one
// pfsim-lint: allow(D999)
