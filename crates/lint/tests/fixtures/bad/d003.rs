//@ path: crates/analysis/src/fix.rs
//@ expect: D003 6
//@ expect: D003 11
use pfsim_mem::{FxHashMap, FxHashSet};
pub fn dump(hist: &FxHashMap<u64, u64>) {
    for (k, v) in hist.iter() {
        println!("{k} {v}");
    }
}
pub fn walk(set: &FxHashSet<u64>) {
    for b in set {
        println!("{b}");
    }
}
