//@ path: crates/cache/src/fix.rs
//@ expect: D001 5
//@ expect: D001 6
//@ expect: D001 7
use std::collections::HashMap;
pub fn victims() -> HashMap<u64, u32> {
    HashMap::default()
}
