//@ path: crates/analysis/src/fix.rs
use pfsim_mem::{sorted_entries, FxHashMap};
pub fn dump(hist: &FxHashMap<u64, u64>) -> u64 {
    for (k, v) in sorted_entries(hist) {
        println!("{k} {v}");
    }
    hist.values().sum()
}
pub fn ordered(hist: &FxHashMap<u64, u64>) -> Vec<u64> {
    let mut ks: Vec<u64> = hist.keys().copied().collect();
    ks.sort_unstable();
    ks
}
