//@ path: crates/network/src/fix.rs
pub fn read(node: &Node) -> u64 {
    node.cpu_time
}
