//@ path: crates/core/src/engine.rs
pub fn run(sink: &mut dyn CheckSink) {
    sink.write_issued(1);
    audit(sink);
}

fn audit(sink: &mut dyn CheckSink) {
    sink.fill(2);
}
