//@ path: crates/cache/src/fix.rs
// pfsim-lint: allow(D001) -- fixture: a well-formed suppression parses and applies
use std::collections::HashMap;
