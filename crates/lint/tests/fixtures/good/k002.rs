//@ path: crates/coherence/src/fix.rs
pub fn take(x: Option<u32>) -> u32 {
    debug_assert_eq!(x.unwrap(), 7);
    x.unwrap_or(0)
}
pub fn must(x: Option<u32>) -> u32 {
    // pfsim-lint: allow(K002) -- fixture: the invariant is documented here
    x.expect("checked by caller")
}
