//@ path: crates/workloads/src/chase.rs
use pfsim_mem::SplitMix64;
pub fn permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut order: Vec<u64> = (0..n).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..(i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}
