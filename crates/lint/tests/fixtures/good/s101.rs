//@ path: crates/core/src/checkpoint.rs
pub struct Checkpoint {
    pub queue: u64,
    pub nodes: u64,
    pub started: bool,
}

pub fn snapshot(queue: u64, nodes: u64, started: bool) -> Checkpoint {
    Checkpoint {
        queue,
        nodes,
        started,
    }
}

pub fn restore(c: Checkpoint) -> (u64, u64, bool) {
    let Checkpoint {
        queue,
        nodes,
        started,
    } = c;
    (queue, nodes, started)
}
