//@ path: crates/core2/src/shard.rs
// Same file name, same entry-point names, same direct queue call — but
// the path is not crates/core/src/shard.rs, so S103 must stay silent.
pub struct Worker {
    queue: Queue,
}

impl Worker {
    pub fn worker_loop(&mut self) {
        self.queue.schedule(7);
    }
}
