//@ path: crates/core/src/fix.rs
pub fn drive(sink: &mut dyn CheckSink) {
    sink.write_issued(0);
    sink.fill(0);
}
