//@ path: crates/workloads/src/server.rs
// Generators run at trace-build time, not on the event hot path: K002
// does not apply here, so parameter validation may panic outright.
pub fn validate(cpus: usize) {
    if cpus == 0 {
        panic!("server workload needs at least one cpu");
    }
}
