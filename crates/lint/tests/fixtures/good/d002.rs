//@ path: crates/prefetch/src/fix.rs
pub fn stamp(cycle: u64) -> u64 {
    cycle
}
