//@ path: crates/network/src/fix.rs
// Thread-adjacent *names* outside the `thread::` path form are fine, and
// test regions are exempt entirely.
pub struct Pool;

impl Pool {
    pub fn spawn(&self) {}
}

pub fn run(scope: u32) -> u32 {
    let pool = Pool;
    pool.spawn();
    scope
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_thread() {
        std::thread::scope(|_s| {});
    }
}
