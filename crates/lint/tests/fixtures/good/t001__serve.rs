//@ path: crates/serve/src/server.rs
// The experiment service is concurrent by design: every module under
// crates/serve/src/ is inside the T001 allowance, so worker pools,
// signal flags and queue locks are all fine here.
use std::sync::atomic::AtomicBool;
use std::sync::{Condvar, Mutex};

pub struct Pool {
    pub queue: Mutex<Vec<u32>>,
    pub wake: Condvar,
    pub draining: AtomicBool,
}

pub fn workers() {
    std::thread::spawn(|| {});
    std::thread::sleep(std::time::Duration::from_millis(1));
}
