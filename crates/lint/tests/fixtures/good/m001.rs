//@ path: crates/core/src/fix.rs
pub fn wire(reg: &mut Registry) -> MetricId {
    reg.counter("read_misses")
}
pub fn read(snap: &MetricsSnapshot) -> u64 {
    snap.counter("read_misses")
}
