//@ path: crates/core/src/checkpoint.rs
pub fn fork_node(node: &Node) -> Node {
    let Node { flc, slc, stats } = node;
    Node {
        flc: flc.clone(),
        slc: slc.clone(),
        stats: stats.clone(),
    }
}
pub fn warm_range(n: usize) -> usize {
    (0..n).sum()
}
