//@ path: crates/core/src/shard.rs
// The sharded kernel is an approved concurrency module: primitives are
// allowed here. Elsewhere, idents that merely *look* thread-adjacent
// (a local named `scope`, a method named `spawn` on another type) are
// not flagged, and test code may use whatever it likes.
use std::sync::Mutex;
use std::sync::atomic::AtomicU32;

pub struct Gate {
    pub epoch: AtomicU32,
    pub io: Mutex<u32>,
}

pub fn workers() {
    std::thread::scope(|_s| {});
}
