//@ path: crates/cache/src/fix.rs
use pfsim_mem::FxHashMap;
pub fn victims() -> FxHashMap<u64, u32> {
    FxHashMap::default()
}
