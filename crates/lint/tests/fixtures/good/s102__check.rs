//@ path: crates/core/src/check.rs
pub trait CheckSink {
    fn write_issued(&mut self, n: u16);
    fn fill(&mut self, n: u16);
}
