//@ path: crates/cache/src/fix.rs
#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn host_code_may_use_std_collections_and_wall_clocks() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        m.insert(1, 2);
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
