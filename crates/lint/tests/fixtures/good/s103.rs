//@ path: crates/core/src/shard.rs
pub struct Worker {
    fx: Fx,
}

impl Worker {
    pub fn worker_loop(&mut self) {
        self.flush();
    }
    fn flush(&mut self) {
        self.fx.schedule(7);
    }
}
