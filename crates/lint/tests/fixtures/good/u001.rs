//@ path: crates/mem/src/fix.rs
pub fn read(p: *const u64) -> u64 {
    // SAFETY: caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
pub fn read2(p: *const u64) -> u64 {
    unsafe { *p } // SAFETY: caller guarantees `p` is valid and aligned.
}
