//! Fixture corpus: every `bad/` fixture must produce exactly its declared
//! findings (IDs and line numbers), and every `good/` fixture must be
//! clean. Expectations are encoded in the fixtures themselves:
//!
//! ```text
//! //@ path: crates/cache/src/fix.rs     (synthetic workspace path)
//! //@ expect: D001 5                    (one line per expected finding)
//! ```
//!
//! Files named `case__part.rs` are linted together as one mini-workspace
//! (used by C001, which needs a trait definition file plus a caller).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use pfsim_lint::{lint_files, File};

struct Fixture {
    /// Synthetic workspace-relative path declared by the `//@ path` header.
    path: String,
    src: String,
    /// Expected `(lint id, line)` findings in this file.
    expect: Vec<(String, u32)>,
}

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
}

fn parse(path: &Path) -> Fixture {
    let src = std::fs::read_to_string(path).unwrap();
    let mut synth = None;
    let mut expect = Vec::new();
    for line in src.lines() {
        if let Some(rest) = line.strip_prefix("//@ path:") {
            synth = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("//@ expect:") {
            let mut it = rest.split_whitespace();
            let id = it.next().expect("expect header needs an id").to_string();
            let line = it
                .next()
                .expect("expect header needs a line")
                .parse()
                .unwrap();
            expect.push((id, line));
        }
    }
    Fixture {
        path: synth.unwrap_or_else(|| panic!("{} missing //@ path header", path.display())),
        src,
        expect,
    }
}

/// Groups fixture files into cases: `name__part.rs` files share the case
/// `name`; everything else is a singleton case.
fn cases(kind: &str) -> BTreeMap<String, Vec<Fixture>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixture_dir(kind))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    paths.sort();
    let mut out: BTreeMap<String, Vec<Fixture>> = BTreeMap::new();
    for p in paths {
        let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
        let case = stem.split("__").next().unwrap().to_string();
        out.entry(case).or_default().push(parse(&p));
    }
    out
}

/// Active (non-suppressed) findings for one case, as `(file, id, line)`.
fn active(fixtures: &[Fixture]) -> Vec<(String, String, u32)> {
    let files = fixtures
        .iter()
        .map(|fx| File::new(fx.path.clone(), fx.src.clone()))
        .collect();
    lint_files(files)
        .into_iter()
        .filter(|f| !f.suppressed)
        .map(|f| (f.file, f.id.to_string(), f.line))
        .collect()
}

#[test]
fn bad_fixtures_are_caught_exactly() {
    for (case, fixtures) in cases("bad") {
        let mut want: Vec<(String, String, u32)> = fixtures
            .iter()
            .flat_map(|fx| {
                fx.expect
                    .iter()
                    .map(|(id, line)| (fx.path.clone(), id.clone(), *line))
            })
            .collect();
        assert!(!want.is_empty(), "bad case `{case}` declares no findings");
        want.sort();
        let mut got = active(&fixtures);
        got.sort();
        assert_eq!(got, want, "case `{case}`");
    }
}

#[test]
fn good_fixtures_are_clean() {
    for (case, fixtures) in cases("good") {
        for fx in &fixtures {
            assert!(
                fx.expect.is_empty(),
                "good case `{case}` must not declare findings"
            );
        }
        let got = active(&fixtures);
        assert!(got.is_empty(), "good case `{case}` not clean: {got:?}");
    }
}

#[test]
fn every_lint_has_a_bad_and_a_good_fixture() {
    for kind in ["bad", "good"] {
        let cs = cases(kind);
        for lint in pfsim_lint::lints::LINTS {
            let want = lint.id.to_ascii_lowercase();
            assert!(
                cs.contains_key(&want),
                "lint {} has no `{kind}/` fixture case `{want}`",
                lint.id
            );
        }
    }
}
