//! Lexer round-trip tests: every byte of the input is covered by exactly
//! one span, including the tricky tokens (raw strings, nested comments,
//! lifetime vs. char-literal disambiguation) — asserted both on a
//! hand-picked corpus and on every real source file in the workspace.

use pfsim_lint::lex::{lex, lex_spans, Kind};

/// Asserts the gap-free coverage invariant and rebuilds the source from
/// its spans.
fn assert_round_trip(src: &str) {
    let spans = lex_spans(src);
    let mut pos = 0usize;
    for s in &spans {
        assert_eq!(s.lo, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(s.hi > s.lo, "empty span at byte {pos} in {src:?}");
        pos = s.hi;
    }
    assert_eq!(pos, src.len(), "lexer stopped early in {src:?}");
    let rebuilt: String = spans.iter().map(|s| &src[s.lo..s.hi]).collect();
    assert_eq!(rebuilt, src);
}

#[test]
fn round_trips_tricky_tokens() {
    let corpus = [
        "let s = r#\"raw \"quoted\" text\"#;",
        "let b = br##\"fence ## and \"# inside\"##;",
        "/* nested /* block */ comments */ fn x() {}",
        "let c: char = 'a'; let lt: &'a str = s;",
        "'outer: loop { break 'outer; }",
        "let e = '\\n'; let f = b'\\''; let g = '(';",
        "let n = 1_000u64 + 1.5e-3 as u64 + 0xff_u8 as u64;",
        "a <<= 2; b >>= 1; let r = 0..=9; x ..= y;",
        "let r#match = 1; // raw identifier",
        "let s = \"multi\nline\nstring\"; let t = b\"bytes\";",
        "let uni = \"λ §\"; let idλ = 1;",
        "",
        "// trailing comment, no newline",
        "\"unterminated",
        "'",
    ];
    for src in corpus {
        assert_round_trip(src);
    }
}

#[test]
fn classifies_tricky_tokens() {
    let src = "let lt: &'a str = x; let c = 'a'; let s = r#\"q\"#; /* /* n */ */";
    let lexed = lex(src);
    let kinds: Vec<(Kind, &str)> = lexed
        .tokens
        .iter()
        .map(|s| (s.kind, &src[s.lo..s.hi]))
        .collect();
    assert!(kinds.contains(&(Kind::Lifetime, "'a")));
    assert!(kinds.contains(&(Kind::Char, "'a'")));
    assert!(kinds.contains(&(Kind::Str, "r#\"q\"#")));
    assert_eq!(lexed.comments.len(), 1, "nested comment is one span");
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "/* a\nb */\nfn f() {}\nlet s = \"x\ny\";\nlet tail = 1;\n";
    let spans = lex_spans(src);
    let line_of = |text: &str| {
        spans
            .iter()
            .find(|s| &src[s.lo..s.hi] == text)
            .unwrap_or_else(|| panic!("token {text:?} not found"))
            .line
    };
    assert_eq!(line_of("fn"), 3);
    assert_eq!(line_of("\"x\ny\""), 4);
    assert_eq!(line_of("tail"), 6);
}

#[test]
fn round_trips_the_whole_workspace() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = pfsim_lint::load_workspace(&root).unwrap();
    assert!(files.len() > 50, "workspace walk found {}", files.len());
    for f in &files {
        assert_round_trip(&f.src);
    }
}
