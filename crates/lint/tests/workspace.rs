//! The real workspace must be lint-clean: zero active findings, and every
//! suppression carries a written reason (the `-- reason` part is already
//! mandatory in the grammar; this pins it end to end).

use std::path::Path;

use pfsim_lint::{lint_files, load_workspace, to_json, validate_report};

fn workspace_findings() -> Vec<pfsim_lint::Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    lint_files(load_workspace(&root).unwrap())
}

#[test]
fn workspace_has_no_active_findings() {
    let findings = workspace_findings();
    let active: Vec<String> = findings
        .iter()
        .filter(|f| !f.suppressed)
        .map(|f| f.render())
        .collect();
    assert!(active.is_empty(), "active findings:\n{}", active.join("\n"));
}

#[test]
fn workspace_suppressions_carry_reasons() {
    for f in workspace_findings().iter().filter(|f| f.suppressed) {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "{}:{} ({}) suppressed without a reason",
            f.file,
            f.line,
            f.id
        );
    }
}

#[test]
fn workspace_report_validates() {
    let findings = workspace_findings();
    let json = to_json(&findings, 1);
    let back = pfsim_analysis::json::Json::parse(&json.render()).unwrap();
    validate_report(&back).unwrap();
}
