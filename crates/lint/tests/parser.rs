//! Parser and symbol-model checks against the *real* workspace sources.
//!
//! The fixture corpus proves the lints bite on synthetic cases; these
//! tests prove the item parser, span bookkeeping, and call graph hold up
//! on the trickiest files we actually ship — the generic-heavy kernel
//! (`system.rs`, `shard.rs`), the wire codec, and the manifest module.

use std::path::Path;

use pfsim_lint::callgraph::reachable;
use pfsim_lint::model::{FnId, Model};
use pfsim_lint::{lint_files, load_workspace, File};

fn workspace() -> Vec<File> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let files = load_workspace(&root).unwrap();
    assert!(files.len() > 50, "workspace walk found {}", files.len());
    files
}

fn file_index(files: &[File], path: &str) -> usize {
    files
        .iter()
        .position(|f| f.path == path)
        .unwrap_or_else(|| panic!("{path} not in workspace walk"))
}

/// Every parsed function in every real file has a sane span: the body
/// brackets are a matched `{`/`}` pair, lines are non-decreasing from
/// the declaration, and `enclosing_fn` maps the body's opening line back
/// to a function whose extent contains it.
#[test]
fn real_workspace_spans_are_sane() {
    let files = workspace();
    let model = Model::build(&files);
    let mut fns_seen = 0usize;
    for (fi, f) in model.files.iter().enumerate() {
        for (idx, func) in model.items[fi].fns.iter().enumerate() {
            fns_seen += 1;
            assert!(!func.name.is_empty(), "{}: unnamed fn", f.path);
            assert!(func.line >= 1);
            let Some((open, close)) = func.body else {
                continue;
            };
            assert!(open < close, "{}: fn {} span inverted", f.path, func.name);
            assert!(close < f.tokens.len(), "{}: fn {}", f.path, func.name);
            assert_eq!(f.t(open), "{", "{}: fn {}", f.path, func.name);
            assert_eq!(f.t(close), "}", "{}: fn {}", f.path, func.name);
            assert!(
                f.tokens[open].line >= func.line,
                "{}: fn {} body before decl",
                f.path,
                func.name
            );
            let id = model
                .enclosing_fn(fi, f.tokens[open].line)
                .unwrap_or_else(|| panic!("{}: fn {} not its own encloser", f.path, func.name));
            // The innermost encloser is this fn or one nested inside it.
            let encl = model.fn_item(id);
            let (_, encl_close) = encl.body.unwrap();
            assert!(
                encl.line >= func.line && encl_close <= close,
                "{}: encloser of {} escapes its extent",
                f.path,
                func.name
            );
            let _ = FnId { file: fi, idx };
        }
    }
    assert!(fns_seen > 500, "only {fns_seen} fns parsed");
}

/// The kernel state struct parses with its exact field list — the list
/// S101 diffs snapshot()/restore() against.
#[test]
fn system_struct_fields_parse_exactly() {
    let files = workspace();
    let model = Model::build(&files);
    let fi = file_index(&files, "crates/core/src/system.rs");
    let sys = model.items[fi]
        .structs
        .iter()
        .find(|s| s.name == "System" && s.named)
        .expect("struct System");
    let names: Vec<&str> = sys.fields.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "cfg",
            "workload",
            "queue",
            "mesh",
            "nodes",
            "last_time",
            "dir_actions",
            "obs",
            "check",
            "started"
        ]
    );
    for w in sys.fields.windows(2) {
        assert!(w[0].1 <= w[1].1, "field lines out of order");
    }
}

/// The codec and kernel entry points the semantic lints anchor on all
/// parse with bodies and the right owners.
#[test]
fn anchor_symbols_resolve() {
    let files = workspace();
    let model = Model::build(&files);
    for (path, owner, name) in [
        ("crates/core/src/checkpoint.rs", Some("System"), "snapshot"),
        ("crates/core/src/checkpoint.rs", Some("System"), "restore"),
        ("crates/core/src/system.rs", Some("Fx"), "send"),
        ("crates/core/src/shard.rs", None, "replay_hook"),
        ("crates/bench/src/spec/wire.rs", Some("WireSpec"), "to_json"),
        (
            "crates/bench/src/spec/wire.rs",
            Some("WireSpec"),
            "from_json",
        ),
        ("crates/bench/src/spec/wire.rs", None, "variant_from_json"),
        ("crates/bench/src/manifest.rs", None, "assemble_manifest"),
        ("crates/bench/src/manifest.rs", None, "validate_doc"),
    ] {
        let fi = file_index(&files, path);
        let hit = model.items[fi]
            .fns
            .iter()
            .find(|f| f.name == name && f.owner.as_deref() == owner)
            .unwrap_or_else(|| panic!("{path}: fn {owner:?}::{name} not parsed"));
        assert!(hit.body.is_some(), "{path}: fn {name} has no body span");
    }
}

/// On the real call graph, every CheckSink hook except the suppressed
/// `into_any` downcast helper is reachable from the kernel entry points
/// — the live form of the S102 proof.
#[test]
fn checksink_hooks_reachable_in_real_kernel() {
    let files = workspace();
    let model = Model::build(&files);
    let fi = file_index(&files, "crates/core/src/check.rs");
    let mut roots = Vec::new();
    for (rfi, f) in model.files.iter().enumerate() {
        if f.crate_dir.as_deref() != Some("core") || !f.path.contains("/src/") {
            continue;
        }
        for (idx, func) in model.items[rfi].fns.iter().enumerate() {
            if ["run", "run_until", "run_threads", "snapshot", "restore"]
                .contains(&func.name.as_str())
                && !f.in_test(func.line)
            {
                roots.push(FnId { file: rfi, idx });
            }
        }
    }
    assert!(!roots.is_empty());
    let reach = reachable(&model, &roots, "core", &[]);
    let mut hooks = 0usize;
    for (idx, func) in model.items[fi].fns.iter().enumerate() {
        if func.owner.as_deref() != Some("CheckSink") || func.name == "into_any" {
            continue;
        }
        hooks += 1;
        assert!(
            reach.contains(&FnId { file: fi, idx }),
            "hook {} unreachable",
            func.name
        );
    }
    assert!(hooks >= 5, "only {hooks} hooks found");
}

/// The whole workspace is lint-clean (suppressions carry reasons; no
/// active findings) — the same gate ci.sh enforces, testable offline.
#[test]
fn real_workspace_is_lint_clean() {
    let findings = lint_files(workspace());
    let active: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    assert!(active.is_empty(), "active findings: {active:?}");
    for f in &findings {
        assert!(f.reason.is_some(), "suppression without reason: {f:?}");
    }
}

/// The content-hash parse cache returns the same parsed items for the
/// same source text — the property the ci.sh stage's run-to-run speed
/// rests on.
#[test]
fn parse_cache_shares_identical_sources() {
    let files = workspace();
    let m1 = Model::build(&files);
    let m2 = Model::build(&files);
    for (a, b) in m1.items.iter().zip(&m2.items) {
        assert!(std::rc::Rc::ptr_eq(a, b));
    }
}
