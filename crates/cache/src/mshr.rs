//! The miss-status holding registers that make the SLC lockup-free.

use std::error::Error;
use std::fmt;

use pfsim_mem::BlockAddr;

/// Error returned when allocating in a full [`MshrFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrFull;

impl fmt::Display for MshrFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("second-level write buffer is full")
    }
}

impl Error for MshrFull {}

/// Outcome of [`MshrFile::try_alloc`], the fused probe-and-allocate walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrTryAlloc {
    /// A transaction for the block was already outstanding; nothing was
    /// allocated (the caller merges or drops).
    InFlight,
    /// The file is at capacity; nothing was allocated.
    Full,
    /// A fresh entry was allocated.
    Allocated,
}

/// The second-level write buffer (SLWB): a bounded file of outstanding SLC
/// transactions, keyed by block.
///
/// "The SLC is made lockup-free by the second-level write-buffer (SLWB)
/// which buffers all pending requests such as prefetch, read miss, and
/// invalidation requests." At most one transaction per block is in flight;
/// later requests for the same block merge into the existing entry (the
/// payload type `E` records what is being waited for). The paper sizes the
/// SLWB at 16 entries; when it is full, demand requests stall the drain and
/// prefetch requests are silently dropped.
///
/// # Examples
///
/// ```
/// use pfsim_cache::MshrFile;
/// use pfsim_mem::BlockAddr;
///
/// let mut slwb: MshrFile<&str> = MshrFile::new(16);
/// let b = BlockAddr::new(3);
/// slwb.alloc(b, "read miss")?;
/// assert!(slwb.contains(b));           // a second miss would merge
/// assert_eq!(slwb.remove(b), Some("read miss")); // reply arrived
/// # Ok::<(), pfsim_cache::MshrFull>(())
/// ```
///
/// # Implementation
///
/// The file is hardware-sized (16 entries in the paper), so it is stored as
/// a flat vector searched linearly — a scan of at most `capacity` tag
/// compares, which beats hashing at these sizes and matches the
/// fully-associative CAM lookup the hardware performs.
#[derive(Debug, Clone)]
pub struct MshrFile<E> {
    entries: Vec<(BlockAddr, E)>,
    capacity: usize,
    high_water: usize,
}

impl<E> MshrFile<E> {
    /// Creates a file of at most `capacity` simultaneous transactions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            high_water: 0,
        }
    }

    #[inline]
    fn position(&self, block: BlockAddr) -> Option<usize> {
        self.entries.iter().position(|(b, _)| *b == block)
    }

    /// Allocates an entry for `block`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] if the file is at capacity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block` already has an entry — callers
    /// must merge into the existing transaction instead (look up with
    /// [`get_mut`](Self::get_mut) first). Release builds skip the check:
    /// every allocation would otherwise pay a redundant second CAM scan.
    pub fn alloc(&mut self, block: BlockAddr, entry: E) -> Result<&mut E, MshrFull> {
        debug_assert!(
            self.position(block).is_none(),
            "MSHR already allocated for {block}: merge instead"
        );
        if self.entries.len() == self.capacity {
            return Err(MshrFull);
        }
        self.entries.push((block, entry));
        self.high_water = self.high_water.max(self.entries.len());
        // pfsim-lint: allow(K002) -- push on the line above guarantees last_mut is Some
        Ok(&mut self.entries.last_mut().expect("just pushed").1)
    }

    /// Whether a transaction for `block` is outstanding.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.position(block).is_some()
    }

    /// One fused CAM walk combining [`contains`](Self::contains),
    /// [`is_full`](Self::is_full) and [`alloc`](Self::alloc): allocates
    /// an entry for `block` unless one is already in flight or the file
    /// is full, reporting which. The prefetch-issue filter probes every
    /// candidate this way, so folding the three checks into one scan
    /// halves its tag walks.
    pub fn try_alloc(&mut self, block: BlockAddr, entry: E) -> MshrTryAlloc {
        if self.position(block).is_some() {
            return MshrTryAlloc::InFlight;
        }
        if self.entries.len() == self.capacity {
            return MshrTryAlloc::Full;
        }
        self.entries.push((block, entry));
        self.high_water = self.high_water.max(self.entries.len());
        MshrTryAlloc::Allocated
    }

    /// The outstanding transaction for `block`, if any.
    pub fn get(&self, block: BlockAddr) -> Option<&E> {
        self.position(block).map(|i| &self.entries[i].1)
    }

    /// Mutable access to the outstanding transaction for `block` — the merge
    /// point for secondary misses.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut E> {
        self.position(block).map(|i| &mut self.entries[i].1)
    }

    /// Completes the transaction for `block`, freeing the entry.
    pub fn remove(&mut self, block: BlockAddr) -> Option<E> {
        self.position(block).map(|i| self.entries.swap_remove(i).1)
    }

    /// Number of outstanding transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no transactions are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the file is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Maximum simultaneous transactions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterates over outstanding `(block, entry)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &E)> + '_ {
        self.entries.iter().map(|(b, e)| (*b, e))
    }

    /// Iterates mutably over outstanding `(block, entry)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (BlockAddr, &mut E)> + '_ {
        self.entries.iter_mut().map(|(b, e)| (*b, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_remove_lifecycle() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        m.alloc(BlockAddr::new(1), 10).unwrap();
        assert!(m.contains(BlockAddr::new(1)));
        *m.get_mut(BlockAddr::new(1)).unwrap() += 1;
        assert_eq!(m.remove(BlockAddr::new(1)), Some(11));
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_limits_outstanding_transactions() {
        let mut m: MshrFile<()> = MshrFile::new(2);
        m.alloc(BlockAddr::new(1), ()).unwrap();
        m.alloc(BlockAddr::new(2), ()).unwrap();
        assert_eq!(m.alloc(BlockAddr::new(3), ()), Err(MshrFull));
        assert!(m.is_full());
        m.remove(BlockAddr::new(1));
        assert!(m.alloc(BlockAddr::new(3), ()).is_ok());
    }

    #[test]
    #[should_panic(expected = "merge instead")]
    fn double_alloc_panics() {
        let mut m: MshrFile<()> = MshrFile::new(2);
        m.alloc(BlockAddr::new(1), ()).unwrap();
        let _ = m.alloc(BlockAddr::new(1), ());
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        for i in 0..3 {
            m.alloc(BlockAddr::new(i), i as u32).unwrap();
        }
        let mut got: Vec<_> = m.iter().map(|(b, e)| (b.as_u64(), *e)).collect();
        got.sort_unstable();
        assert_eq!(got, [(0, 0), (1, 1), (2, 2)]);
    }
}
