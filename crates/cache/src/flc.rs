//! The on-chip first-level data cache.

use pfsim_mem::{BlockAddr, Geometry};

use crate::DirectMapped;

/// The first-level data cache (FLC): write-through, direct-mapped, no
/// allocation on write misses, blocking on read misses, with an external
/// block-invalidation pin.
///
/// The FLC holds no coherence state (the write-through policy plus
/// FLC⊆SLC inclusion migrates all coherence maintenance to the SLC), so a
/// line is just a valid bit and tag. The paper's configuration is 4 KB with
/// 32-byte blocks (128 lines).
///
/// # Examples
///
/// ```
/// use pfsim_cache::FirstLevelCache;
/// use pfsim_mem::{BlockAddr, Geometry};
///
/// let mut flc = FirstLevelCache::new(4096, Geometry::paper());
/// let b = BlockAddr::new(7);
/// assert!(!flc.read(b));          // cold miss
/// flc.fill(b);
/// assert!(flc.read(b));           // now hits
/// assert!(flc.invalidate(b));     // external invalidation pin
/// assert!(!flc.read(b));
/// ```
#[derive(Debug, Clone)]
pub struct FirstLevelCache {
    lines: DirectMapped<()>,
}

impl FirstLevelCache {
    /// Creates an FLC of `capacity_bytes` with the block size of `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a power-of-two multiple of the block
    /// size.
    pub fn new(capacity_bytes: u64, geometry: Geometry) -> Self {
        let sets = capacity_bytes / geometry.block_bytes();
        assert!(
            sets > 0 && (sets as usize).is_power_of_two(),
            "FLC capacity must be a power-of-two number of blocks, got {sets}"
        );
        FirstLevelCache {
            lines: DirectMapped::new(sets as usize),
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.lines.sets()
    }

    /// Probes for a read: returns whether `block` hits.
    ///
    /// Read misses block the processor; the miss request is then buffered in
    /// the FLWB and serviced by the SLC.
    #[inline]
    pub fn read(&self, block: BlockAddr) -> bool {
        self.lines.get(block).is_some()
    }

    /// Probes for a write. Writes are passed through to the SLC regardless;
    /// a write miss does **not** allocate (no-write-allocate), and a write
    /// hit simply updates the line in place, so the tag array is unchanged
    /// either way. Returns whether the write hit.
    #[inline]
    pub fn write(&self, block: BlockAddr) -> bool {
        self.lines.get(block).is_some()
    }

    /// Fills `block` after a read miss completes, evicting any conflicting
    /// line (clean by construction: the FLC is write-through). Returns the
    /// evicted block, which callers may use for statistics.
    pub fn fill(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let (evicted, _) = self.lines.insert(block, ());
        evicted.map(|(victim, ())| victim).filter(|v| *v != block)
    }

    /// External invalidation (the "block-invalidation pin"): drops `block`
    /// if present, returning whether it was.
    ///
    /// The SLC asserts this pin whenever coherence or replacement removes a
    /// block from the SLC, preserving inclusion.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        self.lines.remove(block).is_some()
    }

    /// Number of valid lines (for tests and audits).
    pub fn valid_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flc() -> FirstLevelCache {
        FirstLevelCache::new(4096, Geometry::paper())
    }

    #[test]
    fn paper_flc_has_128_lines() {
        assert_eq!(flc().lines(), 128);
    }

    #[test]
    fn write_never_allocates() {
        let mut c = flc();
        assert!(!c.write(BlockAddr::new(9)));
        // Still a miss afterwards: no allocation happened.
        assert!(!c.read(BlockAddr::new(9)));
        c.fill(BlockAddr::new(9));
        assert!(c.write(BlockAddr::new(9)));
    }

    #[test]
    fn conflicting_fill_evicts() {
        let mut c = flc();
        c.fill(BlockAddr::new(1));
        let evicted = c.fill(BlockAddr::new(129)); // 129 % 128 == 1
        assert_eq!(evicted, Some(BlockAddr::new(1)));
        assert!(!c.read(BlockAddr::new(1)));
        assert!(c.read(BlockAddr::new(129)));
    }

    #[test]
    fn refill_same_block_reports_no_eviction() {
        let mut c = flc();
        c.fill(BlockAddr::new(1));
        assert_eq!(c.fill(BlockAddr::new(1)), None);
    }

    #[test]
    fn invalidate_absent_block_is_noop() {
        let mut c = flc();
        assert!(!c.invalidate(BlockAddr::new(77)));
        c.fill(BlockAddr::new(77));
        assert!(c.invalidate(BlockAddr::new(77)));
        assert_eq!(c.valid_lines(), 0);
    }
}
