//! A generic direct-mapped tag array.

use pfsim_mem::BlockAddr;

/// A direct-mapped cache structure mapping block numbers to per-line
/// payloads of type `T`.
///
/// Both caches in the node are direct-mapped (the FLC by the paper's design,
/// the finite SLC per §5.3), and the I-detection Reference Prediction Table
/// is "organized as a 256-entry, direct-mapped cache" — all three reuse this
/// array. The set index is `block % sets` and the tag is `block / sets`.
///
/// # Examples
///
/// ```
/// use pfsim_cache::DirectMapped;
/// use pfsim_mem::BlockAddr;
///
/// let mut dm: DirectMapped<&str> = DirectMapped::new(128);
/// let (evicted, _) = dm.insert(BlockAddr::new(5), "five");
/// assert!(evicted.is_none());
/// // Block 133 maps to the same set (133 % 128 == 5) and evicts block 5:
/// let (evicted, _) = dm.insert(BlockAddr::new(133), "one-three-three");
/// assert_eq!(evicted, Some((BlockAddr::new(5), "five")));
/// assert!(dm.get(BlockAddr::new(5)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct DirectMapped<T> {
    sets: Vec<Option<(u64, T)>>, // (tag, payload)
    mask: u64,
    shift: u32,
    occupied: usize,
}

impl<T> DirectMapped<T> {
    /// Creates an array with `sets` sets (one line each).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a nonzero power of two.
    pub fn new(sets: usize) -> Self {
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        DirectMapped {
            sets: (0..sets).map(|_| None).collect(),
            mask: (sets - 1) as u64,
            shift: sets.trailing_zeros(),
            occupied: 0,
        }
    }

    #[inline]
    fn index(&self, key: BlockAddr) -> (usize, u64) {
        let raw = key.as_u64();
        ((raw & self.mask) as usize, raw >> self.shift)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Number of valid lines.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no line is valid.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The payload stored for `key`, if the line holding it is valid and
    /// tagged with `key`.
    pub fn get(&self, key: BlockAddr) -> Option<&T> {
        let (set, tag) = self.index(key);
        match &self.sets[set] {
            Some((t, payload)) if *t == tag => Some(payload),
            _ => None,
        }
    }

    /// Mutable access to the payload stored for `key`.
    pub fn get_mut(&mut self, key: BlockAddr) -> Option<&mut T> {
        let (set, tag) = self.index(key);
        match &mut self.sets[set] {
            Some((t, payload)) if *t == tag => Some(payload),
            _ => None,
        }
    }

    /// Inserts `payload` for `key`, returning the evicted conflicting entry
    /// (if any) and a mutable reference to the stored payload.
    ///
    /// Inserting over the *same* key replaces the payload and reports the
    /// old one as evicted, which callers use to detect re-fills.
    pub fn insert(&mut self, key: BlockAddr, payload: T) -> (Option<(BlockAddr, T)>, &mut T) {
        let (set, tag) = self.index(key);
        let old = self.sets[set].take();
        let evicted = match old {
            Some((old_tag, old_payload)) => {
                let old_key = BlockAddr::new((old_tag << self.shift) | set as u64);
                Some((old_key, old_payload))
            }
            None => {
                self.occupied += 1;
                None
            }
        };
        self.sets[set] = Some((tag, payload));
        let stored = match &mut self.sets[set] {
            Some((_, p)) => p,
            None => unreachable!(),
        };
        (evicted, stored)
    }

    /// Removes and returns the payload stored for `key`.
    pub fn remove(&mut self, key: BlockAddr) -> Option<T> {
        let (set, tag) = self.index(key);
        match &self.sets[set] {
            Some((t, _)) if *t == tag => {
                self.occupied -= 1;
                self.sets[set].take().map(|(_, p)| p)
            }
            _ => None,
        }
    }

    /// Iterates over `(key, payload)` for every valid line.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> + '_ {
        self.sets.iter().enumerate().filter_map(|(set, line)| {
            line.as_ref()
                .map(|(tag, p)| (BlockAddr::new((tag << self.shift) | set as u64), p))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::SplitMix64;

    #[test]
    fn hit_after_insert() {
        let mut dm = DirectMapped::new(8);
        dm.insert(BlockAddr::new(3), 30);
        assert_eq!(dm.get(BlockAddr::new(3)), Some(&30));
        assert_eq!(dm.get(BlockAddr::new(11)), None); // same set, wrong tag
    }

    #[test]
    fn conflict_evicts_and_reports_victim_key() {
        let mut dm = DirectMapped::new(8);
        dm.insert(BlockAddr::new(3), 'a');
        let (evicted, _) = dm.insert(BlockAddr::new(11), 'b');
        assert_eq!(evicted, Some((BlockAddr::new(3), 'a')));
        assert_eq!(dm.get(BlockAddr::new(11)), Some(&'b'));
    }

    #[test]
    fn reinsert_same_key_replaces_payload() {
        let mut dm = DirectMapped::new(8);
        dm.insert(BlockAddr::new(3), 1);
        let (evicted, _) = dm.insert(BlockAddr::new(3), 2);
        assert_eq!(evicted, Some((BlockAddr::new(3), 1)));
        assert_eq!(dm.get(BlockAddr::new(3)), Some(&2));
        assert_eq!(dm.len(), 1);
    }

    #[test]
    fn remove_frees_the_set() {
        let mut dm = DirectMapped::new(8);
        dm.insert(BlockAddr::new(5), ());
        assert_eq!(dm.remove(BlockAddr::new(5)), Some(()));
        assert_eq!(dm.remove(BlockAddr::new(5)), None);
        assert!(dm.is_empty());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut dm = DirectMapped::new(8);
        dm.insert(BlockAddr::new(5), 10);
        *dm.get_mut(BlockAddr::new(5)).unwrap() += 1;
        assert_eq!(dm.get(BlockAddr::new(5)), Some(&11));
    }

    #[test]
    fn iter_reconstructs_keys() {
        let mut dm = DirectMapped::new(16);
        for k in [1u64, 17, 40, 300] {
            dm.remove(BlockAddr::new(k)); // no-op, exercises miss path
            dm.insert(BlockAddr::new(k), k * 2);
        }
        let mut pairs: Vec<_> = dm.iter().map(|(k, v)| (k.as_u64(), *v)).collect();
        pairs.sort_unstable();
        // 1 and 17 conflict (set 1): 17 wins.
        assert_eq!(pairs, vec![(17, 34), (40, 80), (300, 600)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        DirectMapped::<()>::new(12);
    }

    /// After any insert sequence, each key maps to the most recent value
    /// inserted into its set, provided the tags match (seeded cases).
    #[test]
    fn model_matches_last_writer_per_set() {
        let mut rng = SplitMix64::seed_from_u64(0xd1_3c7);
        for _case in 0..64 {
            let len = rng.random_range(1usize..200);
            let keys: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..1024)).collect();
            let sets = 32usize;
            let mut dm = DirectMapped::new(sets);
            let mut model: Vec<Option<u64>> = vec![None; sets]; // set -> key
            for (i, &k) in keys.iter().enumerate() {
                dm.insert(BlockAddr::new(k), i);
                model[(k % sets as u64) as usize] = Some(k);
            }
            #[allow(clippy::needless_range_loop)] // set is the set index
            for set in 0..sets {
                match model[set] {
                    Some(k) => {
                        // The last key written to this set must hit.
                        assert!(dm.get(BlockAddr::new(k)).is_some());
                    }
                    None => assert!(dm
                        .iter()
                        .all(|(key, _)| (key.as_u64() % sets as u64) as usize != set)),
                }
            }
            assert_eq!(dm.len(), model.iter().filter(|s| s.is_some()).count());
        }
    }
}
