//! The lockup-free second-level cache.

use pfsim_mem::{BlockAddr, PagedMap};

use crate::{DirectMapped, SetAssocArray};

/// Coherence state of an SLC line under the write-invalidate MSI protocol.
///
/// `Invalid` is represented by the line's absence, so only the two valid
/// states appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Readable copy; memory (or another cache) may also hold copies.
    Shared,
    /// The only copy in the system; dirty with respect to memory.
    Modified,
}

/// One valid SLC line: coherence state plus the 1-bit *prefetched* tag.
///
/// The tag bit is the prefetch-phase mechanism common to all three schemes:
/// blocks brought in by a prefetch are tagged; a demand hit on a tagged
/// block resets the bit and triggers the prefetch of the next block in the
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlcLine {
    /// MSI coherence state.
    pub state: LineState,
    /// Whether the block was brought in by a prefetch and has not yet been
    /// referenced by the processor.
    pub prefetched: bool,
}

/// Result of inserting a block into a finite SLC: the victim line, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// No line was displaced.
    None,
    /// A clean (Shared) line was displaced; no writeback needed, but the
    /// FLC copy must be invalidated to preserve inclusion.
    Clean(BlockAddr),
    /// A dirty (Modified) line was displaced and must be written back to
    /// its home memory.
    Dirty(BlockAddr),
}

/// Capacity configuration of the SLC.
///
/// The paper's default is an infinitely large SLC (isolating cold and
/// coherence misses); §5.3 studies a finite 16 KB direct-mapped SLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlcConfig {
    /// Unbounded capacity: no replacement misses ever occur.
    Infinite,
    /// Direct-mapped with the given capacity in bytes (32-byte blocks).
    DirectMapped {
        /// Total capacity in bytes; must be a power-of-two multiple of the
        /// block size.
        capacity_bytes: u64,
    },
    /// Set-associative with true LRU (an extension beyond the paper's
    /// direct-mapped §5.3 configuration).
    SetAssociative {
        /// Total capacity in bytes.
        capacity_bytes: u64,
        /// Number of ways per set.
        ways: usize,
    },
}

impl SlcConfig {
    /// The paper's default: an infinite SLC.
    pub fn infinite() -> Self {
        SlcConfig::Infinite
    }

    /// The §5.3 configuration: a finite direct-mapped SLC.
    pub fn direct_mapped(capacity_bytes: u64) -> Self {
        SlcConfig::DirectMapped { capacity_bytes }
    }

    /// A finite set-associative SLC (extension).
    pub fn set_associative(capacity_bytes: u64, ways: usize) -> Self {
        SlcConfig::SetAssociative {
            capacity_bytes,
            ways,
        }
    }

    /// A short stable description for reports and run manifests
    /// ("infinite", "16KB-dm", "16KB-4way").
    pub fn describe(&self) -> String {
        match *self {
            SlcConfig::Infinite => "infinite".to_string(),
            SlcConfig::DirectMapped { capacity_bytes } => {
                format!("{}KB-dm", capacity_bytes / 1024)
            }
            SlcConfig::SetAssociative {
                capacity_bytes,
                ways,
            } => format!("{}KB-{}way", capacity_bytes / 1024, ways),
        }
    }
}

#[derive(Debug, Clone)]
enum Storage {
    Infinite(PagedMap<SlcLine>),
    Finite(DirectMapped<SlcLine>),
    Assoc(SetAssocArray<SlcLine>),
}

/// The second-level cache (SLC) tag/state array.
///
/// This type models the storage and coherence state of the SLC; the timing
/// (SRAM port occupancy, the SLWB, the protocol engine) lives in the
/// full-system simulator. The SLC is write-back: a line first written here
/// becomes [`LineState::Modified`] and must be written back on eviction.
///
/// # Examples
///
/// ```
/// use pfsim_cache::{Eviction, LineState, SecondLevelCache, SlcConfig};
/// use pfsim_mem::BlockAddr;
///
/// // The finite 16 KB SLC of §5.3 holds 512 blocks.
/// let mut slc = SecondLevelCache::new(SlcConfig::direct_mapped(16 * 1024));
/// slc.fill(BlockAddr::new(0), LineState::Modified, false);
/// // Block 512 conflicts with block 0 and forces a writeback:
/// let ev = slc.fill(BlockAddr::new(512), LineState::Shared, false);
/// assert_eq!(ev, Eviction::Dirty(BlockAddr::new(0)));
/// ```
#[derive(Debug, Clone)]
pub struct SecondLevelCache {
    storage: Storage,
    /// Fused-probe memo: `Some(block)` records that the most recent
    /// mutating access was a [`write_access`](Self::write_access) hit on
    /// `block` in [`LineState::Modified`] — and that nothing has touched
    /// the cache since. Store buffers drain runs of writes to the same
    /// line back to back, so the next write to `block` can answer
    /// `(Modified, untagged)` without walking the tag store at all.
    /// Every other mutating entry point clears the memo, which is what
    /// makes the shortcut exact rather than heuristic.
    write_memo: Option<BlockAddr>,
}

impl SecondLevelCache {
    /// Creates an SLC with the given capacity configuration and the
    /// paper's 32-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics for a finite configuration whose capacity is not a
    /// power-of-two number of blocks.
    pub fn new(config: SlcConfig) -> Self {
        Self::with_block_bytes(config, 32)
    }

    /// Creates an SLC with the given capacity configuration and block
    /// size (the block-size ablation uses 64- and 128-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics for a finite configuration whose capacity is not a
    /// power-of-two number of `block_bytes` blocks.
    pub fn with_block_bytes(config: SlcConfig, block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        let storage = match config {
            SlcConfig::Infinite => Storage::Infinite(PagedMap::new()),
            SlcConfig::DirectMapped { capacity_bytes } => {
                let sets = capacity_bytes / block_bytes;
                assert!(
                    sets > 0 && (sets as usize).is_power_of_two(),
                    "SLC capacity must be a power-of-two number of blocks, got {sets}"
                );
                Storage::Finite(DirectMapped::new(sets as usize))
            }
            SlcConfig::SetAssociative {
                capacity_bytes,
                ways,
            } => {
                assert!(ways >= 1, "need at least one way");
                let blocks = capacity_bytes / block_bytes;
                assert!(
                    blocks > 0 && blocks.is_multiple_of(ways as u64),
                    "capacity must be a whole number of ways"
                );
                let sets = blocks / ways as u64;
                assert!(
                    (sets as usize).is_power_of_two(),
                    "SLC set count must be a power of two, got {sets}"
                );
                Storage::Assoc(SetAssocArray::new(sets as usize, ways))
            }
        };
        SecondLevelCache {
            storage,
            write_memo: None,
        }
    }

    /// The line holding `block`, if valid.
    pub fn lookup(&self, block: BlockAddr) -> Option<SlcLine> {
        match &self.storage {
            Storage::Infinite(map) => map.get(block.as_u64()).copied(),
            Storage::Finite(dm) => dm.get(block).copied(),
            Storage::Assoc(sa) => sa.get(block).copied(),
        }
    }

    /// Records a demand access to `block` for replacement purposes (LRU
    /// promotion in the set-associative configuration; a no-op otherwise).
    pub fn touch(&mut self, block: BlockAddr) {
        self.write_memo = None;
        if let Storage::Assoc(sa) = &mut self.storage {
            sa.touch(block);
        }
    }

    /// Performs a demand read access in one probe: promotes the line for
    /// replacement, consumes the *prefetched* tag, and reports the result.
    ///
    /// Returns `None` on a miss, `Some(was_tagged)` on a hit; a `true`
    /// tag fires the prefetch-phase mechanism exactly once.
    pub fn demand_access(&mut self, block: BlockAddr) -> Option<bool> {
        self.write_memo = None;
        if let Storage::Assoc(sa) = &mut self.storage {
            sa.touch(block);
        }
        let line = self.line_mut(block)?;
        let was_tagged = line.prefetched;
        line.prefetched = false;
        Some(was_tagged)
    }

    /// Performs a demand write access in one probe: consumes the
    /// *prefetched* tag and reports the line's state, or `None` on a miss.
    ///
    /// Equivalent to [`Self::lookup`] followed by
    /// [`Self::clear_prefetched`], in a single tag-store probe — the write
    /// path runs once per drained FLWB entry, so the saved probe matters.
    ///
    /// Adjacent same-line writes share one walk: a hit on a Modified line
    /// arms the write memo (see the field docs), and the next write to
    /// the same block — with no intervening cache activity — answers from
    /// the memo without probing the tag store. The memo'd answer is exact:
    /// an absorbed write changes neither the state (still Modified) nor
    /// the tag (already consumed by the walk that armed the memo).
    pub fn write_access(&mut self, block: BlockAddr) -> Option<(LineState, bool)> {
        if self.write_memo == Some(block) {
            return Some((LineState::Modified, false));
        }
        let (state, was_tagged) = {
            let line = self.line_mut(block)?;
            let was_tagged = line.prefetched;
            line.prefetched = false;
            (line.state, was_tagged)
        };
        self.write_memo = (state == LineState::Modified).then_some(block);
        Some((state, was_tagged))
    }

    /// Whether `block` is present in any valid state.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.lookup(block).is_some()
    }

    /// Inserts `block` with `state`, marking it prefetched or not, and
    /// returns the eviction the insertion caused.
    ///
    /// Filling a block that is already present updates its state in place
    /// (e.g. Shared → Modified on an ownership grant) and returns
    /// [`Eviction::None`].
    pub fn fill(&mut self, block: BlockAddr, state: LineState, prefetched: bool) -> Eviction {
        self.write_memo = None;
        let line = SlcLine { state, prefetched };
        match &mut self.storage {
            Storage::Infinite(map) => {
                map.insert(block.as_u64(), line);
                Eviction::None
            }
            Storage::Finite(dm) => {
                let (evicted, _) = dm.insert(block, line);
                match evicted {
                    Some((victim, _)) if victim == block => Eviction::None,
                    Some((victim, old)) => match old.state {
                        LineState::Modified => Eviction::Dirty(victim),
                        LineState::Shared => Eviction::Clean(victim),
                    },
                    None => Eviction::None,
                }
            }
            Storage::Assoc(sa) => match sa.insert(block, line) {
                Some((victim, old)) => match old.state {
                    LineState::Modified => Eviction::Dirty(victim),
                    LineState::Shared => Eviction::Clean(victim),
                },
                None => Eviction::None,
            },
        }
    }

    /// Promotes `block` to [`LineState::Modified`] (ownership granted).
    ///
    /// Returns `false` if the block is no longer present — the race where an
    /// invalidation beat the upgrade reply; the caller must then treat the
    /// grant as a full fill.
    pub fn promote(&mut self, block: BlockAddr) -> bool {
        self.write_memo = None;
        match self.line_mut(block) {
            Some(line) => {
                line.state = LineState::Modified;
                true
            }
            None => false,
        }
    }

    /// Clears the *prefetched* tag of `block`, returning whether the tag was
    /// set. A `true` return is what fires the prefetch-phase mechanism (and
    /// counts the prefetch as useful).
    pub fn clear_prefetched(&mut self, block: BlockAddr) -> bool {
        self.write_memo = None;
        match self.line_mut(block) {
            Some(line) if line.prefetched => {
                line.prefetched = false;
                true
            }
            _ => false,
        }
    }

    /// Removes `block` (coherence invalidation), returning the removed line.
    ///
    /// A dirty line removed by a fetch-invalidate carries its data to the
    /// requester; the caller decides what to do with it.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<SlcLine> {
        self.write_memo = None;
        match &mut self.storage {
            Storage::Infinite(map) => map.remove(block.as_u64()),
            Storage::Finite(dm) => dm.remove(block),
            Storage::Assoc(sa) => sa.remove(block),
        }
    }

    /// Downgrades `block` from Modified to Shared (remote read of a dirty
    /// block). Returns `false` if the block is absent.
    pub fn downgrade(&mut self, block: BlockAddr) -> bool {
        self.write_memo = None;
        match self.line_mut(block) {
            Some(line) => {
                line.state = LineState::Shared;
                true
            }
            None => false,
        }
    }

    fn line_mut(&mut self, block: BlockAddr) -> Option<&mut SlcLine> {
        match &mut self.storage {
            Storage::Infinite(map) => map.get_mut(block.as_u64()),
            Storage::Finite(dm) => dm.get_mut(block),
            Storage::Assoc(sa) => sa.get_mut(block),
        }
    }

    /// Number of valid lines.
    pub fn valid_lines(&self) -> usize {
        match &self.storage {
            Storage::Infinite(map) => map.len(),
            Storage::Finite(dm) => dm.len(),
            Storage::Assoc(sa) => sa.len(),
        }
    }

    /// Iterates over all valid `(block, line)` pairs, in arbitrary order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (BlockAddr, SlcLine)> + '_> {
        match &self.storage {
            Storage::Infinite(map) => Box::new(map.iter().map(|(b, l)| (BlockAddr::new(b), *l))),
            Storage::Finite(dm) => Box::new(dm.iter().map(|(b, l)| (b, *l))),
            Storage::Assoc(sa) => Box::new(sa.iter().map(|(b, l)| (b, *l))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::SplitMix64;

    #[test]
    fn infinite_slc_never_evicts() {
        let mut slc = SecondLevelCache::new(SlcConfig::infinite());
        for i in 0..10_000 {
            assert_eq!(
                slc.fill(BlockAddr::new(i), LineState::Shared, false),
                Eviction::None
            );
        }
        assert_eq!(slc.valid_lines(), 10_000);
    }

    #[test]
    fn finite_slc_reports_clean_and_dirty_victims() {
        let mut slc = SecondLevelCache::new(SlcConfig::direct_mapped(16 * 1024));
        slc.fill(BlockAddr::new(1), LineState::Shared, false);
        assert_eq!(
            slc.fill(BlockAddr::new(513), LineState::Shared, false),
            Eviction::Clean(BlockAddr::new(1))
        );
        slc.fill(BlockAddr::new(2), LineState::Modified, false);
        assert_eq!(
            slc.fill(BlockAddr::new(514), LineState::Shared, false),
            Eviction::Dirty(BlockAddr::new(2))
        );
    }

    #[test]
    fn refill_updates_in_place() {
        let mut slc = SecondLevelCache::new(SlcConfig::direct_mapped(16 * 1024));
        slc.fill(BlockAddr::new(1), LineState::Shared, true);
        assert_eq!(
            slc.fill(BlockAddr::new(1), LineState::Modified, false),
            Eviction::None
        );
        let line = slc.lookup(BlockAddr::new(1)).unwrap();
        assert_eq!(line.state, LineState::Modified);
        assert!(!line.prefetched);
    }

    #[test]
    fn promote_and_downgrade() {
        let mut slc = SecondLevelCache::new(SlcConfig::infinite());
        let b = BlockAddr::new(9);
        assert!(!slc.promote(b)); // absent: upgrade lost the race
        slc.fill(b, LineState::Shared, false);
        assert!(slc.promote(b));
        assert_eq!(slc.lookup(b).unwrap().state, LineState::Modified);
        assert!(slc.downgrade(b));
        assert_eq!(slc.lookup(b).unwrap().state, LineState::Shared);
    }

    #[test]
    fn prefetched_tag_fires_once() {
        let mut slc = SecondLevelCache::new(SlcConfig::infinite());
        let b = BlockAddr::new(5);
        slc.fill(b, LineState::Shared, true);
        assert!(slc.clear_prefetched(b));
        assert!(!slc.clear_prefetched(b)); // second demand hit: tag already clear
        assert!(!slc.clear_prefetched(BlockAddr::new(6))); // absent block
    }

    #[test]
    fn invalidate_returns_line() {
        let mut slc = SecondLevelCache::new(SlcConfig::infinite());
        let b = BlockAddr::new(5);
        slc.fill(b, LineState::Modified, false);
        let line = slc.invalidate(b).unwrap();
        assert_eq!(line.state, LineState::Modified);
        assert!(!slc.contains(b));
        assert!(slc.invalidate(b).is_none());
    }

    /// Infinite and finite SLCs agree on lookups whenever the finite one
    /// has not evicted the block (seeded randomized cases).
    #[test]
    fn finite_is_infinite_minus_evictions() {
        let mut rng = SplitMix64::seed_from_u64(0x51c1);
        for _case in 0..64 {
            let len = rng.random_range(1usize..300);
            let blocks: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..2048)).collect();
            let mut inf = SecondLevelCache::new(SlcConfig::infinite());
            let mut fin = SecondLevelCache::new(SlcConfig::direct_mapped(16 * 1024)); // 512 sets
            let mut evicted = std::collections::HashSet::new();
            for &b in &blocks {
                let block = BlockAddr::new(b);
                inf.fill(block, LineState::Shared, false);
                match fin.fill(block, LineState::Shared, false) {
                    Eviction::Clean(v) | Eviction::Dirty(v) => {
                        evicted.insert(v);
                    }
                    Eviction::None => {}
                }
                evicted.remove(&block);
            }
            for &b in &blocks {
                let block = BlockAddr::new(b);
                assert!(inf.contains(block));
                assert_eq!(fin.contains(block), !evicted.contains(&block));
            }
        }
    }
}
