//! Bounded FIFO buffers (the FLWB and other queues).

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error returned when pushing to a full [`FifoBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferFull;

impl fmt::Display for BufferFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("write buffer is full")
    }
}

impl Error for BufferFull {}

/// A bounded FIFO queue modelling a hardware write buffer.
///
/// The first-level write buffer (FLWB) buffers write requests,
/// synchronization requests and read-miss requests from the FLC *in FIFO
/// order* — reads do not bypass earlier writes. The paper sizes it at 8
/// entries; when it fills, the processor stalls until the SLC drains an
/// entry.
///
/// # Examples
///
/// ```
/// use pfsim_cache::FifoBuffer;
///
/// let mut flwb: FifoBuffer<u32> = FifoBuffer::new(2);
/// flwb.push(1)?;
/// flwb.push(2)?;
/// assert!(flwb.push(3).is_err()); // full: the processor would stall
/// assert_eq!(flwb.pop(), Some(1)); // FIFO drain by the SLC
/// # Ok::<(), pfsim_cache::BufferFull>(())
/// ```
#[derive(Debug, Clone)]
pub struct FifoBuffer<T> {
    queue: VecDeque<T>,
    capacity: usize,
    high_water: usize,
}

impl<T> FifoBuffer<T> {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a write buffer needs at least one entry");
        FifoBuffer {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
        }
    }

    /// Appends `entry` at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`BufferFull`] (and gives `entry` up) if the buffer is at
    /// capacity; in the machine this is the condition that stalls the
    /// processor.
    pub fn push(&mut self, entry: T) -> Result<(), BufferFull> {
        if self.queue.len() == self.capacity {
            return Err(BufferFull);
        }
        self.queue.push_back(entry);
        self.high_water = self.high_water.max(self.queue.len());
        Ok(())
    }

    /// Removes and returns the head entry.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// The head entry without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() == self.capacity
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever observed (a sizing statistic).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterates the entries from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::SplitMix64;

    #[test]
    fn fifo_order_is_preserved() {
        let mut b = FifoBuffer::new(8);
        for i in 0..5 {
            b.push(i).unwrap();
        }
        let drained: Vec<_> = std::iter::from_fn(|| b.pop()).collect();
        assert_eq!(drained, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn push_to_full_buffer_fails_without_losing_entries() {
        let mut b = FifoBuffer::new(2);
        b.push('x').unwrap();
        b.push('y').unwrap();
        assert_eq!(b.push('z'), Err(BufferFull));
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop(), Some('x'));
        b.push('z').unwrap();
        assert!(b.is_full());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut b = FifoBuffer::new(2);
        b.push(7).unwrap();
        assert_eq!(b.peek(), Some(&7));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut b = FifoBuffer::new(4);
        b.push(1).unwrap();
        b.push(2).unwrap();
        b.pop();
        b.pop();
        b.push(3).unwrap();
        assert_eq!(b.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        FifoBuffer::<()>::new(0);
    }

    /// The buffer behaves exactly like a bounded VecDeque (seeded cases).
    #[test]
    fn matches_unbounded_model() {
        let mut rng = SplitMix64::seed_from_u64(0xf1f0);
        for _case in 0..64 {
            let ops = rng.random_range(0usize..200);
            let mut b = FifoBuffer::new(3);
            let mut model: Vec<u32> = Vec::new();
            let mut next = 0u32;
            for _ in 0..ops {
                if rng.random_bool() {
                    let ok = b.push(next).is_ok();
                    assert_eq!(ok, model.len() < 3);
                    if ok {
                        model.push(next);
                    }
                    next += 1;
                } else {
                    let popped = b.pop();
                    let expected = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    assert_eq!(popped, expected);
                }
                assert_eq!(b.len(), model.len());
                assert_eq!(b.is_empty(), model.is_empty());
            }
        }
    }
}
