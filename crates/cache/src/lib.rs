//! Cache models for the `pfsim` processing node (Figure 1 of the paper).
//!
//! Each node couples a small, fast on-chip first-level data cache
//! ([`FirstLevelCache`], *FLC*: write-through, direct-mapped, no
//! write-allocate, externally invalidatable) to a larger lockup-free
//! write-back second-level cache ([`SecondLevelCache`], *SLC*) through a
//! FIFO first-level write buffer ([`FifoBuffer`], *FLWB*). Outstanding SLC
//! requests — read misses, prefetches, upgrades — live in the second-level
//! write buffer, modelled as an MSHR file ([`MshrFile`], *SLWB*) that makes
//! the SLC lockup-free.
//!
//! Because the FLC is direct-mapped and write-through there is full
//! inclusion between FLC and SLC, so all coherence machinery lives at the
//! SLC: the [`SecondLevelCache`] keeps the MSI protocol state
//! ([`LineState`]) and the 1-bit *prefetched* tag that drives the
//! prefetch-phase mechanism shared by all three prefetching schemes.
//!
//! # Examples
//!
//! ```
//! use pfsim_cache::{LineState, SecondLevelCache, SlcConfig};
//! use pfsim_mem::BlockAddr;
//!
//! let mut slc = SecondLevelCache::new(SlcConfig::infinite());
//! let b = BlockAddr::new(42);
//! slc.fill(b, LineState::Shared, /*prefetched=*/ true);
//! let line = slc.lookup(b).unwrap();
//! assert!(line.prefetched);
//! // A demand hit on a tagged block resets the tag (and, in the full
//! // system, triggers the next prefetch of the stream):
//! assert!(slc.clear_prefetched(b));
//! assert!(!slc.lookup(b).unwrap().prefetched);
//! ```

#![warn(missing_docs)]

mod buffer;
mod direct_mapped;
mod flc;
mod mshr;
mod set_assoc;
mod slc;

pub use buffer::{BufferFull, FifoBuffer};
pub use direct_mapped::DirectMapped;
pub use flc::FirstLevelCache;
pub use mshr::{MshrFile, MshrFull, MshrTryAlloc};
pub use set_assoc::SetAssocArray;
pub use slc::{Eviction, LineState, SecondLevelCache, SlcConfig, SlcLine};
