//! A set-associative tag array with per-set LRU replacement.

use pfsim_mem::BlockAddr;

/// An `N`-way set-associative cache structure with true-LRU replacement,
/// mapping block numbers to per-line payloads.
///
/// The paper's finite SLC is direct-mapped (§5.3); this array backs the
/// set-associative configuration offered as an extension, so conflict
/// sensitivity of the replacement-miss results can be measured.
///
/// # Examples
///
/// ```
/// use pfsim_cache::SetAssocArray;
/// use pfsim_mem::BlockAddr;
///
/// let mut sa: SetAssocArray<&str> = SetAssocArray::new(2, 2);
/// sa.insert(BlockAddr::new(0), "a");
/// sa.insert(BlockAddr::new(2), "b"); // same set (2 sets), second way
/// assert!(sa.get(BlockAddr::new(0)).is_some());
/// // Touch block 0 so block 2 is the LRU line, then overflow the set:
/// sa.touch(BlockAddr::new(0));
/// let evicted = sa.insert(BlockAddr::new(4), "c");
/// assert_eq!(evicted, Some((BlockAddr::new(2), "b")));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocArray<T> {
    /// Per set: (tag, payload), most recently used first.
    sets: Vec<Vec<(u64, T)>>,
    ways: usize,
    mask: u64,
    shift: u32,
}

impl<T> SetAssocArray<T> {
    /// Creates an array with `sets` sets of `ways` lines each.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a nonzero power of two and `ways` ≥ 1.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        assert!(ways >= 1, "need at least one way");
        SetAssocArray {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            mask: (sets - 1) as u64,
            shift: sets.trailing_zeros(),
        }
    }

    #[inline]
    fn index(&self, key: BlockAddr) -> (usize, u64) {
        let raw = key.as_u64();
        ((raw & self.mask) as usize, raw >> self.shift)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of valid lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no line is valid.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// The payload stored for `key`, without updating recency.
    pub fn get(&self, key: BlockAddr) -> Option<&T> {
        let (set, tag) = self.index(key);
        self.sets[set]
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p)
    }

    /// Mutable access to the payload for `key`, without updating recency.
    pub fn get_mut(&mut self, key: BlockAddr) -> Option<&mut T> {
        let (set, tag) = self.index(key);
        self.sets[set]
            .iter_mut()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p)
    }

    /// Promotes `key` to most-recently-used (a demand access). Returns
    /// whether the line was present.
    pub fn touch(&mut self, key: BlockAddr) -> bool {
        let (set, tag) = self.index(key);
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|(t, _)| *t == tag) {
            let line = lines.remove(pos);
            lines.insert(0, line);
            true
        } else {
            false
        }
    }

    /// Inserts `payload` for `key` as most-recently-used, returning the
    /// LRU victim if the set overflowed. Reinserting an existing key
    /// replaces its payload in place (no eviction).
    pub fn insert(&mut self, key: BlockAddr, payload: T) -> Option<(BlockAddr, T)> {
        let (set, tag) = self.index(key);
        let shift = self.shift;
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|(t, _)| *t == tag) {
            lines.remove(pos);
            lines.insert(0, (tag, payload));
            return None;
        }
        let evicted = if lines.len() == self.ways {
            lines
                .pop()
                .map(|(t, p)| (BlockAddr::new((t << shift) | set as u64), p))
        } else {
            None
        };
        lines.insert(0, (tag, payload));
        evicted
    }

    /// Removes `key`, returning its payload.
    pub fn remove(&mut self, key: BlockAddr) -> Option<T> {
        let (set, tag) = self.index(key);
        let lines = &mut self.sets[set];
        let pos = lines.iter().position(|(t, _)| *t == tag)?;
        Some(lines.remove(pos).1)
    }

    /// Iterates all valid `(key, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> + '_ {
        let shift = self.shift;
        self.sets.iter().enumerate().flat_map(move |(set, lines)| {
            lines
                .iter()
                .map(move |(tag, p)| (BlockAddr::new((tag << shift) | set as u64), p))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::SplitMix64;

    #[test]
    fn associativity_absorbs_conflicts() {
        // Keys 0, 8, 16, 24 all map to set 0 of an 8-set array.
        let mut sa = SetAssocArray::new(8, 4);
        for k in [0u64, 8, 16, 24] {
            assert!(sa.insert(BlockAddr::new(k), k).is_none());
        }
        for k in [0u64, 8, 16, 24] {
            assert_eq!(sa.get(BlockAddr::new(k)), Some(&k));
        }
        // A fifth conflicting key evicts the LRU (key 0).
        let evicted = sa.insert(BlockAddr::new(32), 32);
        assert_eq!(evicted, Some((BlockAddr::new(0), 0)));
    }

    #[test]
    fn touch_changes_the_victim() {
        let mut sa = SetAssocArray::new(8, 2);
        sa.insert(BlockAddr::new(0), 'a');
        sa.insert(BlockAddr::new(8), 'b');
        assert!(sa.touch(BlockAddr::new(0)));
        let evicted = sa.insert(BlockAddr::new(16), 'c');
        assert_eq!(evicted, Some((BlockAddr::new(8), 'b')));
        assert!(!sa.touch(BlockAddr::new(8)));
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut sa = SetAssocArray::new(8, 2);
        sa.insert(BlockAddr::new(0), 1);
        sa.insert(BlockAddr::new(8), 2);
        assert!(sa.insert(BlockAddr::new(0), 3).is_none());
        assert_eq!(sa.get(BlockAddr::new(0)), Some(&3));
        assert_eq!(sa.len(), 2);
    }

    #[test]
    fn remove_and_iter() {
        let mut sa = SetAssocArray::new(4, 2);
        sa.insert(BlockAddr::new(1), 10);
        sa.insert(BlockAddr::new(2), 20);
        assert_eq!(sa.remove(BlockAddr::new(1)), Some(10));
        assert_eq!(sa.remove(BlockAddr::new(1)), None);
        let all: Vec<_> = sa.iter().map(|(k, v)| (k.as_u64(), *v)).collect();
        assert_eq!(all, [(2, 20)]);
    }

    #[test]
    fn one_way_degenerates_to_direct_mapped() {
        let mut sa = SetAssocArray::new(8, 1);
        sa.insert(BlockAddr::new(3), 'x');
        let evicted = sa.insert(BlockAddr::new(11), 'y');
        assert_eq!(evicted, Some((BlockAddr::new(3), 'x')));
    }

    /// A 4-way array with LRU matches a reference model (seeded cases).
    #[test]
    fn matches_lru_model() {
        let mut rng = SplitMix64::seed_from_u64(0x1_5e7a);
        for _case in 0..64 {
            let len = rng.random_range(1usize..300);
            let keys: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..256)).collect();
            let sets = 8usize;
            let ways = 4usize;
            let mut sa = SetAssocArray::new(sets, ways);
            // Model: per set, a Vec of keys, MRU first.
            let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
            for &k in &keys {
                let set = (k % sets as u64) as usize;
                let m = &mut model[set];
                if let Some(pos) = m.iter().position(|&x| x == k) {
                    m.remove(pos);
                } else if m.len() == ways {
                    m.pop();
                }
                m.insert(0, k);
                sa.insert(BlockAddr::new(k), ());
            }
            for (set, m) in model.iter().enumerate() {
                for &k in m {
                    assert!(sa.get(BlockAddr::new(k)).is_some(), "set {set} key {k}");
                }
            }
            assert_eq!(sa.len(), model.iter().map(Vec::len).sum::<usize>());
        }
    }
}
