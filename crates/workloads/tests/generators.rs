//! Property tests for the modern generator families (CHASE, MSTRIDE,
//! SERVER): packed round-trips, address bounds and cross-thread
//! determinism — the invariants the big-mesh experiment grid leans on.

use pfsim_mem::{Addr, Pc};
use pfsim_workloads::{chase, mstride, server, App, Op, ProblemSize, TraceBuilder};

const PAGE: u64 = 4096;

fn tiny_chase() -> chase::ChaseParams {
    chase::ChaseParams {
        list_nodes_per_cpu: 64,
        tree_nodes: 31,
        walks: 2,
        steps_per_walk: 64,
        probes_per_walk: 8,
        cpus: 64,
        seed: 7,
    }
}

fn tiny_mstride() -> mstride::MstrideParams {
    mstride::MstrideParams {
        rows: 64,
        cols: 32,
        strides: (1, 32, 3),
        iters: 2,
        cpus: 64,
    }
}

fn tiny_server() -> server::ServerParams {
    server::ServerParams {
        heap_blocks: 1024,
        requests_per_cpu: 40,
        sessions: 8,
        hot_blocks: 4,
        scan_blocks: 4,
        cpus: 64,
        seed: 7,
    }
}

fn addr_of(op: &Op) -> Option<u64> {
    match *op {
        Op::Read { addr, .. } | Op::Write { addr, .. } => Some(addr.as_u64()),
        Op::Acquire { lock } | Op::Release { lock } => Some(lock.as_u64()),
        Op::Compute { .. } | Op::Barrier { .. } => None,
    }
}

/// Page-rounded footprint of a sequence of allocations, mirroring the
/// bump allocator: regions start at page 1 and each is rounded up to a
/// whole page.
fn footprint(region_bytes: &[u64]) -> u64 {
    PAGE + region_bytes
        .iter()
        .map(|b| b.div_ceil(PAGE).max(1) * PAGE)
        .sum::<u64>()
}

/// Every address each family emits lands inside one of its allocations'
/// pages — no index arithmetic escapes the configured footprint, at any
/// processor count.
#[test]
fn refs_stay_in_bounds_for_64_cpus() {
    let cases: [(&str, pfsim_workloads::TraceWorkload, u64); 3] = [
        ("CHASE", chase::build(tiny_chase()), {
            let p = tiny_chase();
            footprint(&[
                p.list_nodes_per_cpu * p.cpus as u64 * chase::NODE_BYTES,
                p.tree_nodes * chase::NODE_BYTES,
            ])
        }),
        ("MSTRIDE", mstride::build(tiny_mstride()), {
            let p = tiny_mstride();
            let e = mstride::ELEMENT_BYTES;
            footprint(&[
                p.rows * p.cols * p.strides.0 * e,
                (p.rows + p.cols * p.strides.1) * e,
                p.rows * p.cols * p.strides.2 * e,
            ])
        }),
        ("SERVER", server::build(tiny_server()), {
            let p = tiny_server();
            footprint(&[
                p.heap_blocks * server::RECORD_BYTES,
                p.hot_blocks * server::RECORD_BYTES,
                p.sessions * server::RECORD_BYTES,
                p.sessions * server::RECORD_BYTES,
            ])
        }),
    ];
    for (name, wl, ceiling) in &cases {
        for cpu in 0..64 {
            for op in wl.trace(cpu) {
                if let Some(a) = addr_of(op) {
                    assert!(
                        (PAGE..*ceiling).contains(&a),
                        "{name} cpu {cpu}: address {a:#x} outside [{PAGE:#x}, {ceiling:#x})"
                    );
                }
            }
        }
    }
}

/// Block-record families keep every access inside its 32-byte record:
/// base-aligned element loads plus field offsets that never straddle a
/// block boundary.
#[test]
fn record_accesses_never_straddle_blocks() {
    let wl = chase::build(tiny_chase());
    for cpu in 0..64 {
        for op in wl.trace(cpu) {
            if let Some(a) = addr_of(op) {
                assert_eq!(a % 8, 0, "cpu {cpu}: {a:#x} not field-aligned");
                assert!(a % chase::NODE_BYTES < chase::NODE_BYTES);
            }
        }
    }
}

/// The packed encoding is lossless: materializing a packed trace gives
/// back exactly the ops the direct builder produces, for every family.
#[test]
fn packed_round_trip_preserves_every_op() {
    let pairs = [
        (
            chase::build(tiny_chase()),
            chase::build_packed(tiny_chase()),
        ),
        (
            mstride::build(tiny_mstride()),
            mstride::build_packed(tiny_mstride()),
        ),
        (
            server::build(tiny_server()),
            server::build_packed(tiny_server()),
        ),
    ];
    for (direct, packed) in &pairs {
        assert_eq!(packed.num_cpus(), 64);
        let via_packed = packed.materialize();
        for cpu in 0..64 {
            assert_eq!(
                direct.trace(cpu),
                via_packed.trace(cpu),
                "{} cpu {cpu}",
                packed.name()
            );
            let from_iter: Vec<Op> = packed.iter_cpu(cpu).collect();
            assert_eq!(direct.trace(cpu), &from_iter[..]);
        }
    }
}

/// Addresses above 4 GiB survive the packed encoding's wide-address
/// escape: a trace alternating low and >32-bit addresses round-trips
/// exactly.
#[test]
fn wide_addresses_round_trip_through_packing() {
    let mut b = TraceBuilder::new("wide", 2);
    // 8 GiB of 32-byte records: the tail sits far above the 4 GiB line.
    let big = b.alloc("BigHeap", 1 << 28, 32);
    let pc = b.pc_site();
    for i in 0..64u64 {
        let idx = if i % 2 == 0 { i } else { (1 << 28) - 1 - i };
        b.read(0, b.element(big, 32, idx), pc);
        b.write(1, b.element(big, 32, idx / 2 + (1 << 27)), pc);
    }
    let direct = b.finish();

    let mut b2 = TraceBuilder::new("wide", 2);
    let big2 = b2.alloc("BigHeap", 1 << 28, 32);
    let pc2 = b2.pc_site();
    for i in 0..64u64 {
        let idx = if i % 2 == 0 { i } else { (1 << 28) - 1 - i };
        b2.read(0, b2.element(big2, 32, idx), pc2);
        b2.write(1, b2.element(big2, 32, idx / 2 + (1 << 27)), pc2);
    }
    let packed = b2.finish_packed();

    let crosses_4g = direct
        .trace(1)
        .iter()
        .filter_map(addr_of)
        .any(|a| a > u64::from(u32::MAX));
    assert!(crosses_4g, "test must actually exercise the wide escape");

    let round = packed.materialize();
    assert_eq!(direct.trace(0), round.trace(0));
    assert_eq!(direct.trace(1), round.trace(1));
}

/// Wide addresses also survive hand-built traces with every op kind in
/// between (compute coalescing must not disturb escape sequencing).
#[test]
fn wide_escape_survives_mixed_op_kinds() {
    let mut b = TraceBuilder::new("mixed", 1);
    let big = b.alloc("Big", 1 << 28, 32);
    let pc = b.pc_site();
    let lo = b.element(big, 32, 1);
    let hi = b.element(big, 32, (1 << 28) - 1);
    b.read(0, lo, pc);
    b.compute(0, 3);
    b.compute(0, 4); // coalesces with the previous compute
    b.write(0, hi, pc);
    b.acquire(0, hi);
    b.release(0, hi);
    b.barrier_all();
    b.read(0, hi, pc);
    let packed = b.finish_packed();

    let ops: Vec<Op> = packed.iter_cpu(0).collect();
    assert_eq!(
        ops,
        vec![
            Op::Read {
                addr: lo,
                pc: Pc::new(0x0010_0000)
            },
            Op::Compute { cycles: 7 },
            Op::Write {
                addr: hi,
                pc: Pc::new(0x0010_0000)
            },
            Op::Acquire { lock: hi },
            Op::Release { lock: hi },
            Op::Barrier { id: 0 },
            Op::Read {
                addr: hi,
                pc: Pc::new(0x0010_0000)
            },
        ]
    );
    assert!(hi.as_u64() > u64::from(u32::MAX));
    assert!(Addr::new(hi.as_u64()).as_u64() == hi.as_u64());
}

/// Building the same family with the same seed on different threads
/// yields byte-identical packed traces — the property that lets the
/// bench cache share one trace across a whole experiment grid.
#[test]
fn identical_seeds_are_byte_identical_across_threads() {
    for app in App::MODERN {
        let reference = app.build_packed_for(ProblemSize::Default, 16);
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || app.build_packed_for(ProblemSize::Default, 16)))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), reference, "{app}");
        }
    }
}

/// Changing only the seed changes the emitted topology for the seeded
/// families (and the unseeded MSTRIDE ignores it by construction).
#[test]
fn seed_selects_the_topology() {
    let a = chase::build_packed(chase::ChaseParams {
        seed: 1,
        ..tiny_chase()
    });
    let b = chase::build_packed(chase::ChaseParams {
        seed: 2,
        ..tiny_chase()
    });
    assert_ne!(a, b);
    let a = server::build_packed(server::ServerParams {
        seed: 1,
        ..tiny_server()
    });
    let b = server::build_packed(server::ServerParams {
        seed: 2,
        ..tiny_server()
    });
    assert_ne!(a, b);
}
