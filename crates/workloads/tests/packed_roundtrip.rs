//! Property test for the packed shared-trace encoding: seeded random op
//! streams — including wide (>32-bit) addresses that take the escape
//! opcodes, lock ops, and barriers — must survive the round trip through
//! `TraceBuilder::finish_packed` and back out of a `TraceCursor`.
//!
//! The expected sequence is computed with the builder's documented
//! compute-coalescing model (zero-cycle computes dropped, back-to-back
//! computes merged saturating), so the test also pins that contract.

use std::sync::Arc;

use pfsim_mem::{Addr, Pc, SplitMix64};
use pfsim_workloads::{Op, TraceBuilder, TraceCursor, Workload};

/// Mirrors `PackedLane::push`: the reference model every decoded lane is
/// compared against.
fn push_expected(lane: &mut Vec<Op>, op: Op) {
    if let Op::Compute { cycles } = op {
        if cycles == 0 {
            return;
        }
        if let Some(Op::Compute { cycles: prev }) = lane.last_mut() {
            *prev = prev.saturating_add(cycles);
            return;
        }
    }
    lane.push(op);
}

/// Draws one random op for `cpu`; roughly a quarter of the addresses set
/// the high 32 bits so the wide escape opcodes get real coverage.
fn draw_op(rng: &mut SplitMix64) -> Op {
    let wide = rng.random_range(0u8..4) == 0;
    let lo = u64::from(rng.random_range(0u32..u32::MAX)) & !0x3f;
    let hi = if wide {
        u64::from(rng.random_range(1u32..0x100)) << 32
    } else {
        0
    };
    let addr = Addr::new(hi | lo);
    let pc = Pc::new(0x400 + rng.random_range(0u32..64) * 4);
    match rng.random_range(0u8..8) {
        0..=2 => Op::Read { addr, pc },
        3 | 4 => Op::Write { addr, pc },
        // Includes zero-cycle computes, which the encoding must drop.
        5 | 6 => Op::Compute {
            cycles: rng.random_range(0u32..6),
        },
        _ => {
            if rng.random_range(0u8..2) == 0 {
                Op::Acquire { lock: addr }
            } else {
                Op::Release { lock: addr }
            }
        }
    }
}

/// Builds a random trace and the expected decoded lanes side by side.
fn build_case(rng: &mut SplitMix64) -> (TraceBuilder, Vec<Vec<Op>>) {
    let cpus = rng.random_range(2usize..9);
    let mut b = TraceBuilder::new("roundtrip", cpus);
    let mut expected: Vec<Vec<Op>> = vec![Vec::new(); cpus];
    let mut next_barrier = 0u32;
    for _ in 0..rng.random_range(40usize..160) {
        // Occasionally a global barrier; otherwise one op on one cpu.
        if rng.random_range(0u8..16) == 0 {
            let id = b.barrier_all();
            assert_eq!(id, next_barrier, "builder barrier ids are sequential");
            next_barrier += 1;
            for lane in &mut expected {
                push_expected(lane, Op::Barrier { id });
            }
            continue;
        }
        let cpu = rng.random_range(0usize..cpus);
        let op = draw_op(rng);
        match op {
            Op::Read { addr, pc } => b.read(cpu, addr, pc),
            Op::Write { addr, pc } => b.write(cpu, addr, pc),
            Op::Compute { cycles } => b.compute(cpu, cycles),
            Op::Acquire { lock } => b.acquire(cpu, lock),
            Op::Release { lock } => b.release(cpu, lock),
            Op::Barrier { .. } => unreachable!("draw_op never yields barriers"),
        }
        push_expected(&mut expected[cpu], op);
    }
    (b, expected)
}

/// Seeded random streams round-trip exactly: `iter_cpu`, a `TraceCursor`
/// drained in random interleaving, a rewound replay, and the
/// materialized workload all yield the reference sequence.
#[test]
fn random_streams_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x9ac4ed);
    for _case in 0..16 {
        let (builder, expected) = build_case(&mut rng);
        let cpus = expected.len();
        let trace = Arc::new(builder.finish_packed());

        let expected_total: usize = expected.iter().map(Vec::len).sum();
        assert_eq!(trace.total_ops(), expected_total);
        assert_eq!(trace.num_cpus(), cpus);

        // Borrowed iterator decode.
        for (cpu, want) in expected.iter().enumerate() {
            let got: Vec<Op> = trace.iter_cpu(cpu).collect();
            assert_eq!(&got, want, "iter_cpu({cpu}) diverged");
        }

        // Cursor decode under a random cpu interleaving — positions are
        // per-cpu, so draining order must not matter.
        let mut cursor = TraceCursor::new(Arc::clone(&trace));
        let mut got: Vec<Vec<Op>> = vec![Vec::new(); cpus];
        let mut live: Vec<usize> = (0..cpus).collect();
        while !live.is_empty() {
            let pick = live[rng.random_range(0usize..live.len())];
            match cursor.next(pick) {
                Some(op) => got[pick].push(op),
                None => live.retain(|&c| c != pick),
            }
        }
        assert_eq!(got, expected, "cursor decode diverged");

        // A rewound cursor replays the identical sequence.
        cursor.rewind();
        for (cpu, want) in expected.iter().enumerate() {
            let replay: Vec<Op> = std::iter::from_fn(|| cursor.next(cpu)).collect();
            assert_eq!(&replay, want, "rewound replay diverged on cpu {cpu}");
        }

        // The materialized workload is the same decode.
        let mut wl = trace.materialize();
        for (cpu, want) in expected.iter().enumerate() {
            let materialized: Vec<Op> = std::iter::from_fn(|| wl.next(cpu)).collect();
            assert_eq!(&materialized, want, "materialize diverged on cpu {cpu}");
        }
    }
}

/// Directed check of the wide-address escapes: a >32-bit address on every
/// address-carrying op kind survives packing bit-exactly.
#[test]
fn wide_addresses_take_the_escape_and_survive() {
    let wide = Addr::new(0x0123_4567_89ab_cdc0);
    let pc = Pc::new(0x4040);
    let mut b = TraceBuilder::new("wide", 1);
    b.read(0, wide, pc);
    b.write(0, wide, pc);
    b.acquire(0, wide);
    b.release(0, wide);
    let trace = Arc::new(b.finish_packed());
    let got: Vec<Op> = trace.iter_cpu(0).collect();
    assert_eq!(
        got,
        vec![
            Op::Read { addr: wide, pc },
            Op::Write { addr: wide, pc },
            Op::Acquire { lock: wide },
            Op::Release { lock: wide },
        ]
    );
    // Wide ops cost one extra payload word each: 4 opcodes + (3+3+2+2)
    // payload words = 44 bytes.
    assert_eq!(trace.packed_bytes(), 44);
}

/// Directed check of compute coalescing: zero-cycle computes vanish and
/// runs of computes merge, including across a dropped zero.
#[test]
fn compute_coalescing_is_exact() {
    let mut b = TraceBuilder::new("coalesce", 1);
    let a = Addr::new(0x1000);
    let pc = Pc::new(0x400);
    b.compute(0, 0); // dropped
    b.compute(0, 3);
    b.compute(0, 0); // dropped, does not break the run
    b.compute(0, 4); // merges into 7
    b.read(0, a, pc);
    b.compute(0, u32::MAX);
    b.compute(0, 5); // saturates
    let trace = b.finish_packed();
    let got: Vec<Op> = trace.iter_cpu(0).collect();
    assert_eq!(
        got,
        vec![
            Op::Compute { cycles: 7 },
            Op::Read { addr: a, pc },
            Op::Compute { cycles: u32::MAX },
        ]
    );
}
