//! Parallel scientific workload models for the prefetching study.
//!
//! The paper drives its simulator with six applications — MP3D, Cholesky,
//! Water and PTHOR from the SPLASH suite plus the Stanford LU and Ocean
//! programs — compiled for SPARC and executed program-driven. This crate
//! substitutes *workload models*: Rust implementations of the same parallel
//! algorithms that emit, per processor, the stream of shared-memory
//! operations ([`Op`]) the application's parallel section would issue —
//! PC-tagged reads, writes, compute delays, lock acquire/release and
//! barriers. The models reproduce each application's documented data
//! layout, partitioning, synchronization and sharing structure, which is
//! what determines the Table 2 characteristics (fraction of read misses in
//! stride sequences, sequence lengths, dominant strides) that the paper
//! uses to explain its results. See `DESIGN.md` for the substitution
//! rationale.
//!
//! All generators are deterministic: the same parameters always produce the
//! same trace.
//!
//! # Examples
//!
//! ```
//! use pfsim_workloads::{lu, Workload};
//!
//! let mut wl = lu::build(lu::LuParams { n: 32, ..Default::default() });
//! assert_eq!(wl.num_cpus(), 16);
//! let first = wl.next(0).expect("cpu 0 has work");
//! println!("cpu 0 starts with {first:?}");
//! ```

#![warn(missing_docs)]

mod builder;
mod op;
mod packed;
mod stats;

pub mod cholesky;
pub mod fuzz;
pub mod lu;
pub mod micro;
pub mod mp3d;
pub mod ocean;
pub mod pthor;
pub mod water;

pub use builder::TraceBuilder;
pub use op::{Op, TraceWorkload, Workload};
pub use packed::{OpIter, PackedTrace, TraceCursor};
pub use stats::{packed_stats, trace_stats, TraceStats};

/// The six applications of the paper's evaluation, in its presentation
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Rarefied-fluid particle simulation (SPLASH).
    Mp3d,
    /// Sparse Cholesky factorization (SPLASH).
    Cholesky,
    /// N-body molecular dynamics of water (SPLASH).
    Water,
    /// Dense LU factorization (Stanford).
    Lu,
    /// Ocean-basin eddy-current simulation (Stanford).
    Ocean,
    /// Parallel logic simulator (SPLASH).
    Pthor,
}

impl App {
    /// All six applications in the paper's order.
    pub const ALL: [App; 6] = [
        App::Mp3d,
        App::Cholesky,
        App::Water,
        App::Lu,
        App::Ocean,
        App::Pthor,
    ];

    /// The application's display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            App::Mp3d => "MP3D",
            App::Cholesky => "Cholesky",
            App::Water => "Water",
            App::Lu => "LU",
            App::Ocean => "Ocean",
            App::Pthor => "PTHOR",
        }
    }

    /// Builds the workload at the default (scaled-down) problem size.
    pub fn build_default(self) -> TraceWorkload {
        match self {
            App::Mp3d => mp3d::build(Default::default()),
            App::Cholesky => cholesky::build(Default::default()),
            App::Water => water::build(Default::default()),
            App::Lu => lu::build(Default::default()),
            App::Ocean => ocean::build(Default::default()),
            App::Pthor => pthor::build(Default::default()),
        }
    }

    /// Builds the workload at (approximately) the paper's problem size.
    pub fn build_paper(self) -> TraceWorkload {
        match self {
            App::Mp3d => mp3d::build(mp3d::Mp3dParams::paper()),
            App::Cholesky => cholesky::build(cholesky::CholeskyParams::paper()),
            App::Water => water::build(water::WaterParams::paper()),
            App::Lu => lu::build(lu::LuParams::paper()),
            App::Ocean => ocean::build(ocean::OceanParams::paper()),
            App::Pthor => pthor::build(pthor::PthorParams::paper()),
        }
    }

    /// Builds the workload at an enlarged problem size (the §5.4 study).
    pub fn build_large(self) -> TraceWorkload {
        match self {
            App::Mp3d => mp3d::build(mp3d::Mp3dParams::large()),
            App::Cholesky => cholesky::build(cholesky::CholeskyParams::large()),
            App::Water => water::build(water::WaterParams::large()),
            App::Lu => lu::build(lu::LuParams::large()),
            App::Ocean => ocean::build(ocean::OceanParams::large()),
            App::Pthor => pthor::build(pthor::PthorParams::paper()),
        }
    }

    /// Packed counterpart of [`build_default`](Self::build_default).
    pub fn build_default_packed(self) -> PackedTrace {
        match self {
            App::Mp3d => mp3d::build_packed(Default::default()),
            App::Cholesky => cholesky::build_packed(Default::default()),
            App::Water => water::build_packed(Default::default()),
            App::Lu => lu::build_packed(Default::default()),
            App::Ocean => ocean::build_packed(Default::default()),
            App::Pthor => pthor::build_packed(Default::default()),
        }
    }

    /// Packed counterpart of [`build_paper`](Self::build_paper).
    pub fn build_paper_packed(self) -> PackedTrace {
        match self {
            App::Mp3d => mp3d::build_packed(mp3d::Mp3dParams::paper()),
            App::Cholesky => cholesky::build_packed(cholesky::CholeskyParams::paper()),
            App::Water => water::build_packed(water::WaterParams::paper()),
            App::Lu => lu::build_packed(lu::LuParams::paper()),
            App::Ocean => ocean::build_packed(ocean::OceanParams::paper()),
            App::Pthor => pthor::build_packed(pthor::PthorParams::paper()),
        }
    }

    /// Packed counterpart of [`build_large`](Self::build_large).
    pub fn build_large_packed(self) -> PackedTrace {
        match self {
            App::Mp3d => mp3d::build_packed(mp3d::Mp3dParams::large()),
            App::Cholesky => cholesky::build_packed(cholesky::CholeskyParams::large()),
            App::Water => water::build_packed(water::WaterParams::large()),
            App::Lu => lu::build_packed(lu::LuParams::large()),
            App::Ocean => ocean::build_packed(ocean::OceanParams::large()),
            App::Pthor => pthor::build_packed(pthor::PthorParams::paper()),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_at_default_size() {
        for app in App::ALL {
            let mut wl = app.build_default();
            assert_eq!(wl.num_cpus(), 16, "{app}");
            let total: usize = (0..16).map(|c| wl.remaining(c)).sum();
            assert!(total > 1000, "{app} produced only {total} ops");
            assert!(wl.next(0).is_some(), "{app} cpu 0 empty");
        }
    }

    #[test]
    fn names_match_paper_tables() {
        let names: Vec<_> = App::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["MP3D", "Cholesky", "Water", "LU", "Ocean", "PTHOR"]);
    }
}
