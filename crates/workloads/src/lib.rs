//! Parallel scientific workload models for the prefetching study.
//!
//! The paper drives its simulator with six applications — MP3D, Cholesky,
//! Water and PTHOR from the SPLASH suite plus the Stanford LU and Ocean
//! programs — compiled for SPARC and executed program-driven. This crate
//! substitutes *workload models*: Rust implementations of the same parallel
//! algorithms that emit, per processor, the stream of shared-memory
//! operations ([`Op`]) the application's parallel section would issue —
//! PC-tagged reads, writes, compute delays, lock acquire/release and
//! barriers. The models reproduce each application's documented data
//! layout, partitioning, synchronization and sharing structure, which is
//! what determines the Table 2 characteristics (fraction of read misses in
//! stride sequences, sequence lengths, dominant strides) that the paper
//! uses to explain its results. See `DESIGN.md` for the substitution
//! rationale.
//!
//! Beyond the paper's six, three *modern* families probe access patterns
//! the 1995 suite under-represents: [`chase`] (pointer-chasing linked
//! structures), [`mstride`] (multi-strided nested loops) and [`server`]
//! (irregular, large-footprint mixed traffic). All generators accept a
//! `cpus` parameter, so the same algorithm re-partitions onto larger
//! meshes; [`App::build_packed_for`] selects family, [`ProblemSize`] and
//! processor count in one call.
//!
//! All generators are deterministic: the same parameters always produce the
//! same trace.
//!
//! # Examples
//!
//! ```
//! use pfsim_workloads::{lu, Workload};
//!
//! let mut wl = lu::build(lu::LuParams { n: 32, ..Default::default() });
//! assert_eq!(wl.num_cpus(), 16);
//! let first = wl.next(0).expect("cpu 0 has work");
//! println!("cpu 0 starts with {first:?}");
//! ```

#![warn(missing_docs)]

mod builder;
mod op;
mod packed;
mod stats;

pub mod chase;
pub mod cholesky;
pub mod fuzz;
pub mod lu;
pub mod micro;
pub mod mp3d;
pub mod mstride;
pub mod ocean;
pub mod pthor;
pub mod server;
pub mod water;

pub use builder::TraceBuilder;
pub use op::{Op, TraceWorkload, Workload};
pub use packed::{OpIter, PackedTrace, TraceCursor};
pub use stats::{packed_stats, trace_stats, TraceStats};

/// A problem-size selector usable across every application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemSize {
    /// Scaled-down inputs for tests and quick runs.
    Default,
    /// Inputs at (approximately) the paper's scale.
    Paper,
    /// Enlarged data sets (the §5.4 trend study).
    Large,
}

/// The applications: the paper's six (in its presentation order) plus
/// the three modern families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Rarefied-fluid particle simulation (SPLASH).
    Mp3d,
    /// Sparse Cholesky factorization (SPLASH).
    Cholesky,
    /// N-body molecular dynamics of water (SPLASH).
    Water,
    /// Dense LU factorization (Stanford).
    Lu,
    /// Ocean-basin eddy-current simulation (Stanford).
    Ocean,
    /// Parallel logic simulator (SPLASH).
    Pthor,
    /// Pointer-chasing over randomized linked structures (modern).
    Chase,
    /// Multi-strided nested-loop kernel (modern).
    Mstride,
    /// Irregular request-serving mixed traffic (modern).
    Server,
}

/// Expands to the preset of `$ty` selected by a [`ProblemSize`], with the
/// processor count overridden. `$large` names the method backing
/// `ProblemSize::Large` (PTHOR has no enlarged input, so it re-uses
/// `paper`, as the paper's §5.4 does).
macro_rules! preset {
    ($ty:ty, $size:expr, $cpus:expr) => {
        preset!($ty, $size, $cpus, large)
    };
    ($ty:ty, $size:expr, $cpus:expr, $large:ident) => {{
        let mut p = match $size {
            ProblemSize::Default => <$ty>::default(),
            ProblemSize::Paper => <$ty>::paper(),
            ProblemSize::Large => <$ty>::$large(),
        };
        p.cpus = $cpus;
        p
    }};
}

/// Expands to the builder call for `$app` at `$size` with `$cpus`
/// processors, invoking either `build` or `build_packed` per `$build`.
macro_rules! dispatch {
    ($app:expr, $size:expr, $cpus:expr, $build:ident) => {
        match $app {
            App::Mp3d => mp3d::$build(preset!(mp3d::Mp3dParams, $size, $cpus)),
            App::Cholesky => cholesky::$build(preset!(cholesky::CholeskyParams, $size, $cpus)),
            App::Water => water::$build(preset!(water::WaterParams, $size, $cpus)),
            App::Lu => lu::$build(preset!(lu::LuParams, $size, $cpus)),
            App::Ocean => ocean::$build(preset!(ocean::OceanParams, $size, $cpus)),
            App::Pthor => pthor::$build(preset!(pthor::PthorParams, $size, $cpus, paper)),
            App::Chase => chase::$build(preset!(chase::ChaseParams, $size, $cpus)),
            App::Mstride => mstride::$build(preset!(mstride::MstrideParams, $size, $cpus)),
            App::Server => server::$build(preset!(server::ServerParams, $size, $cpus)),
        }
    };
}

impl App {
    /// The paper's six applications in its presentation order.
    pub const ALL: [App; 6] = [
        App::Mp3d,
        App::Cholesky,
        App::Water,
        App::Lu,
        App::Ocean,
        App::Pthor,
    ];

    /// The three modern workload families of the scaling study.
    pub const MODERN: [App; 3] = [App::Chase, App::Mstride, App::Server];

    /// Every application: the paper's six followed by the modern three.
    pub const EVERY: [App; 9] = [
        App::Mp3d,
        App::Cholesky,
        App::Water,
        App::Lu,
        App::Ocean,
        App::Pthor,
        App::Chase,
        App::Mstride,
        App::Server,
    ];

    /// The application's display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            App::Mp3d => "MP3D",
            App::Cholesky => "Cholesky",
            App::Water => "Water",
            App::Lu => "LU",
            App::Ocean => "Ocean",
            App::Pthor => "PTHOR",
            App::Chase => "CHASE",
            App::Mstride => "MSTRIDE",
            App::Server => "SERVER",
        }
    }

    /// Builds the workload at `size` for a machine with `cpus`
    /// processors. With `cpus == 16` this is identical to the fixed
    /// builders below; other counts re-partition the same algorithm.
    pub fn build_for(self, size: ProblemSize, cpus: usize) -> TraceWorkload {
        dispatch!(self, size, cpus, build)
    }

    /// Packed counterpart of [`build_for`](Self::build_for).
    pub fn build_packed_for(self, size: ProblemSize, cpus: usize) -> PackedTrace {
        dispatch!(self, size, cpus, build_packed)
    }

    /// Builds the workload at the default (scaled-down) problem size.
    pub fn build_default(self) -> TraceWorkload {
        self.build_for(ProblemSize::Default, 16)
    }

    /// Builds the workload at (approximately) the paper's problem size.
    pub fn build_paper(self) -> TraceWorkload {
        self.build_for(ProblemSize::Paper, 16)
    }

    /// Builds the workload at an enlarged problem size (the §5.4 study).
    pub fn build_large(self) -> TraceWorkload {
        self.build_for(ProblemSize::Large, 16)
    }

    /// Packed counterpart of [`build_default`](Self::build_default).
    pub fn build_default_packed(self) -> PackedTrace {
        self.build_packed_for(ProblemSize::Default, 16)
    }

    /// Packed counterpart of [`build_paper`](Self::build_paper).
    pub fn build_paper_packed(self) -> PackedTrace {
        self.build_packed_for(ProblemSize::Paper, 16)
    }

    /// Packed counterpart of [`build_large`](Self::build_large).
    pub fn build_large_packed(self) -> PackedTrace {
        self.build_packed_for(ProblemSize::Large, 16)
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_at_default_size() {
        for app in App::EVERY {
            let mut wl = app.build_default();
            assert_eq!(wl.num_cpus(), 16, "{app}");
            let total: usize = (0..16).map(|c| wl.remaining(c)).sum();
            assert!(total > 1000, "{app} produced only {total} ops");
            assert!(wl.next(0).is_some(), "{app} cpu 0 empty");
        }
    }

    #[test]
    fn names_match_paper_tables() {
        let names: Vec<_> = App::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["MP3D", "Cholesky", "Water", "LU", "Ocean", "PTHOR"]);
    }

    #[test]
    fn rosters_are_consistent() {
        let every: Vec<_> = App::ALL.iter().chain(&App::MODERN).copied().collect();
        assert_eq!(every, App::EVERY);
        let names: Vec<_> = App::MODERN.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["CHASE", "MSTRIDE", "SERVER"]);
    }

    /// The fixed 16-cpu builders and the parameterized `build_for` must
    /// agree exactly — the paper-grid anchors depend on it.
    #[test]
    fn build_for_matches_fixed_builders_at_16_cpus() {
        for app in App::EVERY {
            assert_eq!(
                app.build_packed_for(ProblemSize::Default, 16),
                app.build_default_packed(),
                "{app}"
            );
        }
    }

    /// Re-partitioning onto a bigger machine gives every processor work.
    #[test]
    fn modern_apps_scale_to_64_cpus() {
        for app in App::MODERN {
            let mut wl = app.build_for(ProblemSize::Default, 64);
            assert_eq!(wl.num_cpus(), 64, "{app}");
            for cpu in 0..64 {
                assert!(wl.next(cpu).is_some(), "{app} cpu {cpu} empty");
            }
        }
    }
}
