//! The builder the workload generators use to emit traces.

use pfsim_mem::{Addr, ArrayLayout, Geometry, Pc};

use crate::packed::{PackedLane, PackedTrace};
use crate::{Op, TraceWorkload};

/// Accumulates per-processor operation streams plus the shared data layout.
///
/// The builder hands out page-aligned shared allocations (via
/// [`ArrayLayout`]), stable program counters per load/store site (so
/// I-detection sees the same instruction addresses a compiled binary would
/// produce), and global barrier identifiers.
///
/// # Examples
///
/// ```
/// use pfsim_workloads::{TraceBuilder, Workload};
///
/// let mut b = TraceBuilder::new("example", 2);
/// let a = b.alloc("A", 100, 8);
/// let pc_load = b.pc_site();
/// for i in 0..10 {
///     b.read(0, b.element(a, 8, i), pc_load);
/// }
/// b.barrier_all();
/// let wl = b.finish();
/// assert_eq!(wl.num_cpus(), 2);
/// assert_eq!(wl.total_ops(), 12); // 10 reads + 2 barrier ops
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    name: String,
    lanes: Vec<PackedLane>,
    layout: ArrayLayout,
    next_pc: u32,
    next_barrier: u32,
}

impl TraceBuilder {
    /// Creates a builder for `cpus` processors using the paper's geometry.
    pub fn new(name: impl Into<String>, cpus: usize) -> Self {
        TraceBuilder {
            name: name.into(),
            lanes: vec![PackedLane::default(); cpus],
            layout: ArrayLayout::new(Geometry::paper()),
            // Leave low "text addresses" for manually chosen PCs.
            next_pc: 0x0010_0000,
            next_barrier: 0,
        }
    }

    /// Number of processors.
    pub fn cpus(&self) -> usize {
        self.lanes.len()
    }

    /// Allocates a page-aligned shared region of `count` × `element_bytes`.
    pub fn alloc(&mut self, name: &'static str, count: u64, element_bytes: u64) -> Addr {
        self.layout.alloc(name, count, element_bytes)
    }

    /// Address of element `index` in an array at `base`.
    pub fn element(&self, base: Addr, element_bytes: u64, index: u64) -> Addr {
        self.layout.element(base, element_bytes, index)
    }

    /// Address of `field_offset` within element `index` of a struct array.
    pub fn field(&self, base: Addr, element_bytes: u64, index: u64, field_offset: u64) -> Addr {
        self.layout.field(base, element_bytes, index, field_offset)
    }

    /// Allocates a fresh program-counter value for a load/store site.
    ///
    /// Each static load or store in the modelled program gets exactly one
    /// site, mirroring compiled code.
    pub fn pc_site(&mut self) -> Pc {
        let pc = Pc::new(self.next_pc);
        self.next_pc += 4;
        pc
    }

    /// Emits a load on `cpu`.
    pub fn read(&mut self, cpu: usize, addr: Addr, pc: Pc) {
        self.lanes[cpu].push(Op::Read { addr, pc });
    }

    /// Emits a store on `cpu`.
    pub fn write(&mut self, cpu: usize, addr: Addr, pc: Pc) {
        self.lanes[cpu].push(Op::Write { addr, pc });
    }

    /// Emits local computation on `cpu`. Zero-cycle computes are dropped;
    /// consecutive computes coalesce to keep traces compact (and to keep
    /// `total_ops` an honest issue count).
    pub fn compute(&mut self, cpu: usize, cycles: u32) {
        self.lanes[cpu].push(Op::Compute { cycles });
    }

    /// Emits a lock acquire on `cpu`.
    pub fn acquire(&mut self, cpu: usize, lock: Addr) {
        self.lanes[cpu].push(Op::Acquire { lock });
    }

    /// Emits a lock release on `cpu`.
    pub fn release(&mut self, cpu: usize, lock: Addr) {
        self.lanes[cpu].push(Op::Release { lock });
    }

    /// Emits a barrier across *all* processors and returns its id.
    pub fn barrier_all(&mut self) -> u32 {
        let id = self.next_barrier;
        self.next_barrier += 1;
        for lane in &mut self.lanes {
            lane.push(Op::Barrier { id });
        }
        id
    }

    /// Finalizes the builder into the packed shared-trace encoding.
    ///
    /// This is the zero-copy path: wrap the result in an `Arc` and replay
    /// it through any number of [`TraceCursor`](crate::TraceCursor)s.
    pub fn finish_packed(self) -> PackedTrace {
        PackedTrace::from_lanes(self.name, self.lanes)
    }

    /// Finalizes the builder into a fully materialized workload.
    ///
    /// Decodes the packed streams the builder accumulates, so it yields
    /// exactly the op sequence [`finish_packed`](Self::finish_packed)
    /// replays — the differential-determinism tests rely on that.
    pub fn finish(self) -> TraceWorkload {
        self.finish_packed().materialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn pc_sites_are_distinct_and_stable() {
        let mut b = TraceBuilder::new("t", 1);
        let a = b.pc_site();
        let c = b.pc_site();
        assert_ne!(a, c);
        assert_eq!(c.as_u32() - a.as_u32(), 4);
    }

    #[test]
    fn computes_coalesce() {
        let mut b = TraceBuilder::new("t", 1);
        b.compute(0, 2);
        b.compute(0, 3);
        b.compute(0, 0);
        let pc = b.pc_site();
        b.read(0, Addr::new(0x1000), pc);
        b.compute(0, 1);
        let wl = b.finish();
        assert_eq!(wl.trace(0).len(), 3);
        assert_eq!(wl.trace(0)[0], Op::Compute { cycles: 5 });
    }

    #[test]
    fn barrier_reaches_every_cpu_with_same_id() {
        let mut b = TraceBuilder::new("t", 4);
        let id0 = b.barrier_all();
        let id1 = b.barrier_all();
        assert_ne!(id0, id1);
        let mut wl = b.finish();
        for cpu in 0..4 {
            assert_eq!(wl.next(cpu), Some(Op::Barrier { id: id0 }));
            assert_eq!(wl.next(cpu), Some(Op::Barrier { id: id1 }));
        }
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut b = TraceBuilder::new("t", 1);
        let a = b.alloc("a", 512, 8);
        let c = b.alloc("c", 512, 8);
        assert!(c.as_u64() >= a.as_u64() + 4096);
    }
}
