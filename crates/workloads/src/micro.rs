//! Micro-workloads with analytically known behaviour, used by the test
//! suite and the mechanism benchmarks.

use pfsim_mem::Addr;
use pfsim_mem::SplitMix64;

use crate::{TraceBuilder, TraceWorkload};

/// Each processor repeatedly walks its own private region with a constant
/// byte stride — the cleanest possible stride-sequence source.
///
/// `repeats` full passes are made; under an infinite SLC only the first
/// pass misses, so set `repeats = 1` when studying miss streams.
///
/// # Examples
///
/// ```
/// use pfsim_workloads::{micro, Workload};
/// let wl = micro::stride_stream(4, 64, 100, 1);
/// assert_eq!(wl.num_cpus(), 4);
/// assert_eq!(wl.total_ops(), 4 * 100);
/// ```
pub fn stride_stream(cpus: usize, stride_bytes: u64, len: u64, repeats: u32) -> TraceWorkload {
    let mut b = TraceBuilder::new(format!("stride-{stride_bytes}B"), cpus);
    let span = stride_bytes * len;
    let bases: Vec<Addr> = (0..cpus)
        .map(|c| {
            let _ = c;
            b.alloc("stream", span.max(1), 1)
        })
        .collect();
    let pcs: Vec<_> = (0..cpus).map(|_| b.pc_site()).collect();
    for cpu in 0..cpus {
        for _ in 0..repeats {
            for k in 0..len {
                b.read(
                    cpu,
                    Addr::new(bases[cpu].as_u64() + k * stride_bytes),
                    pcs[cpu],
                );
            }
        }
    }
    b.finish()
}

/// Each processor walks its own region one 32-byte block at a time —
/// sequential prefetching's best case.
pub fn sequential_walk(cpus: usize, blocks: u64, repeats: u32) -> TraceWorkload {
    stride_stream(cpus, 32, blocks, repeats)
}

/// Each processor reads uniformly random blocks of its own large region —
/// no strides, no spatial locality; every prefetch is useless.
pub fn random_access(cpus: usize, region_blocks: u64, accesses: u64) -> TraceWorkload {
    let mut b = TraceBuilder::new("random", cpus);
    let bases: Vec<Addr> = (0..cpus)
        .map(|_| b.alloc("region", region_blocks, 32))
        .collect();
    let pcs: Vec<_> = (0..cpus).map(|_| b.pc_site()).collect();
    let mut rng = SplitMix64::seed_from_u64(0x9e3779b97f4a7c15);
    for cpu in 0..cpus {
        for _ in 0..accesses {
            let block = rng.random_range(0..region_blocks);
            b.read(cpu, Addr::new(bases[cpu].as_u64() + block * 32), pcs[cpu]);
        }
    }
    b.finish()
}

/// CPU 0 writes a region, everyone synchronizes at a barrier, then all
/// other CPUs read the region sequentially — the canonical
/// producer-consumer sharing pattern (coherence misses with high spatial
/// locality at the consumers).
pub fn producer_consumer(cpus: usize, blocks: u64) -> TraceWorkload {
    assert!(cpus >= 2, "producer-consumer needs at least two CPUs");
    let mut b = TraceBuilder::new("producer-consumer", cpus);
    let region = b.alloc("region", blocks, 32);
    let wpc = b.pc_site();
    let rpc = b.pc_site();
    for k in 0..blocks {
        b.write(0, Addr::new(region.as_u64() + k * 32), wpc);
    }
    b.barrier_all();
    for cpu in 1..cpus {
        for k in 0..blocks {
            b.read(cpu, Addr::new(region.as_u64() + k * 32), rpc);
        }
    }
    b.finish()
}

/// CPUs 0 and 1 alternately increment a lock-protected shared counter —
/// exercises locks, upgrades and ownership migration. The remaining CPUs
/// (if any) idle, so the workload can run on a full-size machine.
pub fn lock_ping_pong(cpus: usize, rounds: u32) -> TraceWorkload {
    assert!(cpus >= 2, "ping-pong needs two active CPUs");
    let mut b = TraceBuilder::new("lock-ping-pong", cpus);
    let counter = b.alloc("counter", 1, 32);
    let lock = b.alloc("lock", 1, 32);
    let rpc = b.pc_site();
    let wpc = b.pc_site();
    for _ in 0..rounds {
        for cpu in 0..2 {
            b.acquire(cpu, lock);
            b.read(cpu, counter, rpc);
            b.compute(cpu, 2);
            b.write(cpu, counter, wpc);
            b.release(cpu, lock);
        }
    }
    b.finish()
}

/// Every CPU reads the same region after CPU 0 initializes it — wide
/// read sharing (the directory's presence vector fills up), then CPU 0
/// rewrites it, invalidating everyone.
pub fn broadcast_then_invalidate(cpus: usize, blocks: u64) -> TraceWorkload {
    let mut b = TraceBuilder::new("broadcast-invalidate", cpus);
    let region = b.alloc("region", blocks, 32);
    let wpc = b.pc_site();
    let rpc = b.pc_site();
    let rpc2 = b.pc_site();
    for k in 0..blocks {
        b.write(0, Addr::new(region.as_u64() + k * 32), wpc);
    }
    b.barrier_all();
    for cpu in 0..cpus {
        for k in 0..blocks {
            b.read(cpu, Addr::new(region.as_u64() + k * 32), rpc);
        }
    }
    b.barrier_all();
    for k in 0..blocks {
        b.write(0, Addr::new(region.as_u64() + k * 32), wpc);
    }
    b.barrier_all();
    for cpu in 1..cpus {
        for k in 0..blocks {
            b.read(cpu, Addr::new(region.as_u64() + k * 32), rpc2);
        }
    }
    b.finish()
}

/// A single CPU interleaving `streams` stride sequences from distinct load
/// sites — stresses detection-table capacity and interference.
pub fn interleaved_streams(streams: usize, stride_bytes: u64, len: u64) -> TraceWorkload {
    let mut b = TraceBuilder::new("interleaved-streams", 1);
    let span = (stride_bytes * len).max(1);
    let bases: Vec<Addr> = (0..streams).map(|_| b.alloc("stream", span, 1)).collect();
    let pcs: Vec<_> = (0..streams).map(|_| b.pc_site()).collect();
    for k in 0..len {
        for s in 0..streams {
            b.read(0, Addr::new(bases[s].as_u64() + k * stride_bytes), pcs[s]);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Workload};

    #[test]
    fn stride_stream_addresses_are_equidistant() {
        let mut wl = stride_stream(1, 96, 10, 1);
        let mut prev: Option<u64> = None;
        while let Some(op) = wl.next(0) {
            if let Op::Read { addr, .. } = op {
                if let Some(p) = prev {
                    assert_eq!(addr.as_u64() - p, 96);
                }
                prev = Some(addr.as_u64());
            }
        }
    }

    #[test]
    fn regions_are_private_per_cpu() {
        let wl = stride_stream(4, 32, 8, 1);
        let mut firsts = Vec::new();
        for cpu in 0..4 {
            if let Op::Read { addr, .. } = wl.trace(cpu)[0] {
                firsts.push(addr.as_u64() / 4096);
            }
        }
        firsts.dedup();
        assert_eq!(firsts.len(), 4, "regions share pages: {firsts:?}");
    }

    #[test]
    fn random_access_is_deterministic() {
        let a = random_access(2, 64, 50);
        let b = random_access(2, 64, 50);
        assert_eq!(a.trace(0), b.trace(0));
        assert_eq!(a.trace(1), b.trace(1));
    }

    #[test]
    fn producer_consumer_shape() {
        let wl = producer_consumer(3, 10);
        // CPU 0: 10 writes + 1 barrier; CPUs 1,2: 1 barrier + 10 reads.
        assert_eq!(wl.trace(0).len(), 11);
        assert_eq!(wl.trace(1).len(), 11);
        assert!(matches!(wl.trace(0)[0], Op::Write { .. }));
        assert!(matches!(wl.trace(1)[0], Op::Barrier { .. }));
    }

    #[test]
    fn lock_ping_pong_brackets_critical_sections() {
        let wl = lock_ping_pong(2, 2);
        let t = wl.trace(0);
        assert!(matches!(t[0], Op::Acquire { .. }));
        assert!(matches!(t[4], Op::Release { .. }));
    }

    #[test]
    fn interleaved_streams_alternate_pcs() {
        let wl = interleaved_streams(3, 32, 4);
        let t = wl.trace(0);
        let pcs: Vec<u32> = t
            .iter()
            .filter_map(|op| match op {
                Op::Read { pc, .. } => Some(pc.as_u32()),
                _ => None,
            })
            .collect();
        assert_eq!(pcs.len(), 12);
        assert_eq!(
            pcs[0..3]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
        assert_eq!(pcs[0], pcs[3]);
    }
}
