//! MP3D: rarefied-fluid particle simulation (SPLASH), the paper's
//! low-stride / high-spatial-locality workload.
//!
//! Particles are 24-byte records packed in one array; the space lattice is
//! an array of 16-byte cells. Each step every processor moves its own
//! particles (which stay cached under an infinite SLC), touches the space
//! cell each particle lands in, and collides some particles with partners
//! owned by other processors. Space cells and collision partners are
//! written by whichever processor's particle got there last, so the
//! steady-state read misses are scattered coherence misses — few stride
//! sequences (Table 2: 9.2%) — but *spatially correlated*: consecutive
//! particles land in nearby cells, which is the locality that lets
//! sequential prefetching remove ~28% of MP3D's misses while stride
//! prefetching manages ~5% (§5.2).

use pfsim_mem::SplitMix64;

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Size of one particle record in bytes.
pub const PARTICLE_BYTES: u64 = 24;
/// Size of one space cell in bytes.
pub const CELL_BYTES: u64 = 16;

/// Problem-size parameters for MP3D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mp3dParams {
    /// Number of particles (the paper uses 10 000).
    pub particles: u64,
    /// Number of space-lattice cells.
    pub cells: u64,
    /// Number of time steps (the paper uses 10).
    pub steps: u32,
    /// Collision probability per particle per step, in percent.
    pub collision_pct: u32,
    /// Number of processors.
    pub cpus: usize,
}

impl Default for Mp3dParams {
    /// A scaled-down system for tests and quick runs.
    fn default() -> Self {
        Mp3dParams {
            particles: 4000,
            cells: 2048,
            steps: 10,
            collision_pct: 50,
            cpus: 16,
        }
    }
}

impl Mp3dParams {
    /// The paper's input: 10 000 particles for 10 time steps.
    pub fn paper() -> Self {
        Mp3dParams {
            particles: 10_000,
            cells: 4096,
            steps: 10,
            collision_pct: 30,
            cpus: 16,
        }
    }

    /// The enlarged data set for the §5.4 trend study (more particles; the
    /// paper expects the stride fraction to stay about the same).
    pub fn large() -> Self {
        Mp3dParams {
            particles: 24_000,
            cells: 8192,
            steps: 6,
            collision_pct: 30,
            cpus: 16,
        }
    }
}

/// Builds the MP3D workload.
///
/// # Panics
///
/// Panics if there are fewer particles than processors.
pub fn build(params: Mp3dParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: Mp3dParams) -> PackedTrace {
    emit(params).finish_packed()
}

fn emit(params: Mp3dParams) -> TraceBuilder {
    let Mp3dParams {
        particles,
        cells,
        steps,
        collision_pct,
        cpus,
    } = params;
    assert!(particles >= cpus as u64);
    assert!(cells > 16);

    let mut b = TraceBuilder::new(format!("MP3D-{particles}p"), cpus);
    let part = b.alloc("Particles", particles, PARTICLE_BYTES);
    let space = b.alloc("SpaceCells", cells, CELL_BYTES);
    // The ambient-gas reservoir: consulted and updated whenever a particle
    // moves, with essentially random cell association — a second source of
    // scattered coherence misses, as in the original program's reservoir
    // and boundary-cell handling.
    let reservoir = b.alloc("Reservoir", cells, 8);
    let counters = b.alloc("GlobalCounters", 4, 32);
    let counter_lock = b.alloc("CounterLock", 1, 32);

    let pc_own_r = b.pc_site();
    let pc_own_w = b.pc_site();
    let pc_cell_r = b.pc_site();
    let pc_cell_w = b.pc_site();
    let pc_coll_r = b.pc_site();
    let pc_coll_w = b.pc_site();
    let pc_res_r = b.pc_site();
    let pc_res_w = b.pc_site();
    let pc_cnt_r = b.pc_site();
    let pc_cnt_w = b.pc_site();

    let per_cpu = particles / cpus as u64;
    let mut rng = SplitMix64::seed_from_u64(0x3D_3D_3D);

    for step in 0..steps {
        for p in 0..cpus {
            let lo = p as u64 * per_cpu;
            let hi = if p == cpus - 1 {
                particles
            } else {
                lo + per_cpu
            };
            for i in lo..hi {
                // Move phase: read and rewrite the particle's own record.
                b.read(p, b.element(part, PARTICLE_BYTES, i), pc_own_r);
                b.compute(p, 8);
                b.write(p, b.element(part, PARTICLE_BYTES, i), pc_own_w);

                // The particle's space cell: each particle has its own
                // velocity, so positions drift apart over the steps and a
                // processor's particles cross cells that other processors'
                // particles also visit (coherence misses). Consecutive
                // particles still land in *nearby* cells — spatial
                // locality — but the jitter keeps the walk from being
                // equidistant, so it does not read as stride sequences.
                let velocity = (i * 2_654_435_761 % 33) as i64 - 16;
                let base_cell = (i * cells / particles) as i64
                    + i64::from(step) * velocity
                    + rng.random_range(-5..=5);
                let cell = base_cell.rem_euclid(cells as i64) as u64;
                b.read(p, b.element(space, CELL_BYTES, cell), pc_cell_r);
                b.compute(p, 4);
                b.write(p, b.element(space, CELL_BYTES, cell), pc_cell_w);

                // Reservoir interaction: read the ambient state around
                // the particle's cell and update a neighbouring entry.
                // The addresses are scattered (written by many
                // processors, never equidistant) but spatially local —
                // the same block-neighbourhood locality as the cell walk,
                // which is what sequential prefetching exploits in MP3D.
                let res_r =
                    (cell as i64 + rng.random_range(-12..=12)).rem_euclid(cells as i64) as u64;
                let res_w =
                    (cell as i64 + rng.random_range(-12..=12)).rem_euclid(cells as i64) as u64;
                b.read(p, b.element(reservoir, 8, res_r), pc_res_r);
                b.write(p, b.element(reservoir, 8, res_w), pc_res_w);

                // Collision phase: with some probability, pick a partner
                // from the same cell neighbourhood (usually another
                // processor's particle) and exchange momentum.
                if rng.random_range(0..100) < collision_pct {
                    let span = particles / 8;
                    let offset = rng.random_range(0..span);
                    let partner = (cell * particles / cells + offset) % particles;
                    b.read(p, b.element(part, PARTICLE_BYTES, partner), pc_coll_r);
                    b.compute(p, 6);
                    b.write(p, b.element(part, PARTICLE_BYTES, partner), pc_coll_w);
                }
            }
            // Per-step bookkeeping under the global lock.
            b.acquire(p, counter_lock);
            b.read(p, b.element(counters, 32, 0), pc_cnt_r);
            b.write(p, b.element(counters, 32, 0), pc_cnt_w);
            b.release(p, counter_lock);
        }
        b.barrier_all();
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn particles_do_not_align_with_blocks() {
        // 24-byte particles on 32-byte blocks: consecutive particles share
        // blocks, which is where MP3D's spatial locality comes from.
        assert_eq!(PARTICLE_BYTES % 32, 24);
    }

    #[test]
    fn own_particles_are_read_in_order() {
        let wl = build(Mp3dParams {
            particles: 256,
            cells: 64,
            steps: 1,
            collision_pct: 0,
            cpus: 4,
        });
        let reads: Vec<u64> = wl
            .trace(1)
            .iter()
            .filter_map(|op| match op {
                Op::Read { addr, pc } if pc.as_u32() == 0x0010_0000 => Some(addr.as_u64()),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 64);
        for w in reads.windows(2) {
            assert_eq!(w[1] - w[0], PARTICLE_BYTES);
        }
    }

    #[test]
    fn cell_accesses_are_correlated_but_not_equidistant() {
        let wl = build(Mp3dParams {
            particles: 1000,
            cells: 500,
            steps: 1,
            collision_pct: 0,
            cpus: 1,
        });
        let cells: Vec<u64> = wl
            .trace(0)
            .iter()
            .filter_map(|op| match op {
                Op::Read { addr, pc } if pc.as_u32() == 0x0010_0008 => Some(addr.as_u64()),
                _ => None,
            })
            .collect();
        // Deltas cluster near +0.5 cells/particle but vary (jitter).
        let deltas: Vec<i64> = cells
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        let distinct: std::collections::HashSet<_> = deltas.iter().collect();
        assert!(distinct.len() > 3, "cell walk is too regular");
        let small = deltas
            .iter()
            .filter(|d| d.unsigned_abs() <= 12 * CELL_BYTES)
            .count();
        assert!(
            small * 10 >= deltas.len() * 6,
            "cell walk lost its spatial locality: {small}/{}",
            deltas.len()
        );
    }

    #[test]
    fn collisions_touch_other_processors_particles() {
        let wl = build(Mp3dParams {
            particles: 1600,
            cells: 400,
            steps: 1,
            collision_pct: 100,
            cpus: 4,
        });
        let own_lo = 0u64;
        let own_hi = 400 * PARTICLE_BYTES;
        let mut foreign = 0;
        for op in wl.trace(0) {
            if let Op::Read { addr, pc } = op {
                if pc.as_u32() == 0x0010_0010 {
                    let off = addr.as_u64() - 4096; // particles region base
                    if off < own_lo || off >= own_hi {
                        foreign += 1;
                    }
                }
            }
        }
        assert!(foreign >= 80, "collisions stayed local: {foreign}");
    }

    #[test]
    fn deterministic() {
        let a = build(Mp3dParams::default());
        let b = build(Mp3dParams::default());
        for cpu in 0..16 {
            assert_eq!(a.trace(cpu), b.trace(cpu));
        }
    }
}
