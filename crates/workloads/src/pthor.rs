//! PTHOR: parallel distributed-time logic simulator (SPLASH), the paper's
//! worst case for every prefetcher.
//!
//! Circuit elements are one-block records linked by a randomized netlist;
//! activation follows those pointers, so each task reads an element that
//! some other processor wrote last — scattered single-block coherence
//! misses with neither strides (Table 2: 4.1% in sequences) nor spatial
//! locality. Work is distributed through lock-protected per-processor task
//! queues with stealing. Neither stride nor sequential prefetching is
//! expected to help here, and the paper shows both barely move the miss
//! count while sequential prefetching pays extra traffic.

use pfsim_mem::SplitMix64;

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Size of one circuit-element record in bytes (one cache block).
pub const ELEMENT_BYTES: u64 = 32;

/// Problem-size parameters for PTHOR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PthorParams {
    /// Number of circuit elements.
    pub elements: u64,
    /// Simulated activation tasks per processor.
    pub tasks_per_cpu: u64,
    /// Fanout of each element in the netlist.
    pub fanout: u64,
    /// Number of processors.
    pub cpus: usize,
}

impl Default for PthorParams {
    /// A scaled-down circuit for tests and quick runs.
    fn default() -> Self {
        PthorParams {
            elements: 2048,
            tasks_per_cpu: 3000,
            fanout: 3,
            cpus: 16,
        }
    }
}

impl PthorParams {
    /// A RISC-circuit-scale configuration (the paper simulates the RISC
    /// circuit for 1000 time steps).
    pub fn paper() -> Self {
        PthorParams {
            elements: 5060,
            tasks_per_cpu: 8000,
            fanout: 3,
            cpus: 16,
        }
    }
}

/// Builds the PTHOR workload.
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn build(params: PthorParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: PthorParams) -> PackedTrace {
    emit(params).finish_packed()
}

fn emit(params: PthorParams) -> TraceBuilder {
    let PthorParams {
        elements,
        tasks_per_cpu,
        fanout,
        cpus,
    } = params;
    assert!(elements > 0 && tasks_per_cpu > 0 && fanout > 0 && cpus > 0);

    let mut b = TraceBuilder::new(format!("PTHOR-{elements}e"), cpus);
    let elems = b.alloc("Elements", elements, ELEMENT_BYTES);
    // Netlist: `fanout` successor ids per element, 4 bytes each.
    let netlist = b.alloc("Netlist", elements * fanout, 4);
    let queues = b.alloc("TaskQueues", cpus as u64, 64);
    let queue_locks = b.alloc("QueueLocks", cpus as u64, 32);
    let clock = b.alloc("GlobalClock", 1, 32);

    let pc_elem_r = b.pc_site();
    let pc_elem_w = b.pc_site();
    let pc_net = b.pc_site();
    let pc_queue_r = b.pc_site();
    let pc_queue_w = b.pc_site();
    let pc_clock = b.pc_site();
    let pc_act_w = b.pc_site();

    let mut rng = SplitMix64::seed_from_u64(0x7404);
    // The randomized netlist topology (deterministic).
    let successors: Vec<u64> = (0..elements * fanout)
        .map(|_| rng.random_range(0..elements))
        .collect();

    // Each processor starts from a rotating cursor over the element space
    // and follows netlist pointers, as the activation lists make the real
    // simulator do.
    let mut cursors: Vec<u64> = (0..cpus as u64)
        .map(|p| p * elements / cpus as u64)
        .collect();

    for round in 0..tasks_per_cpu {
        #[allow(clippy::needless_range_loop)] // p is also the cpu id
        for p in 0..cpus {
            let e = cursors[p] % elements;

            // Pop a task: the queue head is lock-protected; stealing makes
            // a ninth of the pops hit a remote queue.
            let victim = if rng.random_range(0..9u32) == 0 {
                rng.random_range(0..cpus as u64)
            } else {
                p as u64
            };
            b.acquire(p, b.element(queue_locks, 32, victim));
            b.read(p, b.element(queues, 64, victim), pc_queue_r);
            b.write(p, b.element(queues, 64, victim), pc_queue_w);
            b.release(p, b.element(queue_locks, 32, victim));

            // Evaluate the element.
            b.read(p, b.element(elems, ELEMENT_BYTES, e), pc_elem_r);
            b.compute(p, 10);
            b.write(p, b.element(elems, ELEMENT_BYTES, e), pc_elem_w);

            // Read its netlist entry and activate one successor (a write
            // into the successor's record schedules it).
            let slot = e * fanout + u64::from(rng.random_range(0..fanout as u32));
            b.read(p, b.element(netlist, 4, slot), pc_net);
            let succ = successors[slot as usize];
            b.write(p, b.element(elems, ELEMENT_BYTES, succ), pc_act_w);

            // Consult the global virtual clock now and then.
            if round % 16 == 0 {
                b.read(p, clock, pc_clock);
            }

            cursors[p] = succ.wrapping_add(rng.random_range(0..7));
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn element_reads_are_scattered() {
        let wl = build(PthorParams {
            elements: 512,
            tasks_per_cpu: 200,
            fanout: 3,
            cpus: 2,
        });
        let reads: Vec<u64> = wl
            .trace(0)
            .iter()
            .filter_map(|op| match op {
                Op::Read { addr, pc } if pc.as_u32() == 0x0010_0000 => Some(addr.as_u64()),
                _ => None,
            })
            .collect();
        let deltas: std::collections::HashSet<i64> = reads
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        // Pointer chasing: essentially every delta distinct.
        assert!(deltas.len() > reads.len() / 2, "{} deltas", deltas.len());
    }

    #[test]
    fn queue_accesses_are_lock_protected() {
        let wl = build(PthorParams {
            elements: 64,
            tasks_per_cpu: 4,
            fanout: 2,
            cpus: 2,
        });
        let t = wl.trace(0);
        let acq = t
            .iter()
            .position(|op| matches!(op, Op::Acquire { .. }))
            .unwrap();
        assert!(matches!(t[acq + 1], Op::Read { .. }));
        assert!(matches!(t[acq + 3], Op::Release { .. }));
    }

    #[test]
    fn some_steals_hit_remote_queues() {
        let wl = build(PthorParams {
            elements: 256,
            tasks_per_cpu: 500,
            fanout: 2,
            cpus: 4,
        });
        let locks: std::collections::HashSet<u64> = wl
            .trace(0)
            .iter()
            .filter_map(|op| match op {
                Op::Acquire { lock } => Some(lock.as_u64()),
                _ => None,
            })
            .collect();
        assert!(locks.len() > 1, "cpu 0 never stole work");
    }

    #[test]
    fn deterministic() {
        let a = build(PthorParams::default());
        let b = build(PthorParams::default());
        for cpu in 0..16 {
            assert_eq!(a.trace(cpu), b.trace(cpu));
        }
    }
}
