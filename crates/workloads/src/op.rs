//! The shared-memory operation vocabulary and the trace container.

use pfsim_mem::{Addr, Pc};

/// One operation issued by a simulated processor.
///
/// Instructions and private data are simulated as always hitting in the
/// first-level cache, exactly as in the paper's methodology; they appear
/// here only in aggregate as [`Op::Compute`] delays. Shared-data references
/// carry the program counter of the issuing load/store so I-detection can
/// key its Reference Prediction Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A load from shared memory.
    Read {
        /// Byte address.
        addr: Addr,
        /// Instruction address of the load.
        pc: Pc,
    },
    /// A store to shared memory.
    Write {
        /// Byte address.
        addr: Addr,
        /// Instruction address of the store.
        pc: Pc,
    },
    /// Local computation: the processor is busy for `cycles` pclocks.
    Compute {
        /// Duration in pclocks.
        cycles: u32,
    },
    /// Acquire the queue-based lock at `lock` (blocks until granted).
    Acquire {
        /// Address identifying the lock (its home node holds the queue).
        lock: Addr,
    },
    /// Release the lock at `lock` (a release under release consistency:
    /// all prior writes must complete first).
    Release {
        /// Address identifying the lock.
        lock: Addr,
    },
    /// Wait at barrier `id` until all participants arrive.
    Barrier {
        /// Barrier identifier.
        id: u32,
    },
}

// `Op` sits on the simulator's per-op consume path and (when
// materialized) dominates trace memory, so it must stay at 16 bytes:
// 4-byte discriminant + packed-to-4 `Addr` + `Pc`. If this fires, a
// payload grew or `Addr` lost its `repr(packed(4))`.
const _: () = assert!(std::mem::size_of::<Op>() <= 16);

/// A per-processor stream of operations.
///
/// The full-system simulator pulls operations with [`next`](Self::next);
/// the *timing* of consumption is the simulator's business, so the same
/// workload produces the same reference streams under every architecture
/// configuration — the property the paper's program-driven methodology
/// guarantees and this reproduction preserves by construction.
pub trait Workload {
    /// Number of processors the workload was built for.
    fn num_cpus(&self) -> usize;

    /// The next operation for `cpu`, or `None` when that processor's
    /// parallel section is done.
    fn next(&mut self, cpu: usize) -> Option<Op>;

    /// Workload name for reports.
    fn name(&self) -> &str;

    /// Total operations across all processors (consumed or not), for
    /// throughput reporting.
    fn total_ops(&self) -> usize;
}

/// A fully materialized trace: one operation vector per processor.
///
/// All workload generators in this crate produce `TraceWorkload`s. The
/// explicit representation keeps generators simple (straight-line algorithm
/// code) and guarantees determinism and replayability.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{Addr, Pc};
/// use pfsim_workloads::{Op, TraceWorkload, Workload};
///
/// let mut wl = TraceWorkload::new(
///     "demo",
///     vec![vec![Op::Compute { cycles: 3 }], vec![]],
/// );
/// assert_eq!(wl.num_cpus(), 2);
/// assert_eq!(wl.next(0), Some(Op::Compute { cycles: 3 }));
/// assert_eq!(wl.next(0), None);
/// assert_eq!(wl.next(1), None);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    traces: Vec<Vec<Op>>,
    cursors: Vec<usize>,
}

impl TraceWorkload {
    /// Wraps per-CPU operation vectors as a workload.
    pub fn new(name: impl Into<String>, traces: Vec<Vec<Op>>) -> Self {
        let cursors = vec![0; traces.len()];
        TraceWorkload {
            name: name.into(),
            traces,
            cursors,
        }
    }

    /// Operations not yet consumed by `cpu`.
    pub fn remaining(&self, cpu: usize) -> usize {
        self.traces[cpu].len() - self.cursors[cpu]
    }

    /// Total operations across all processors (consumed or not).
    pub fn total_ops(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }

    /// Read-only view of a processor's full trace (for analysis tools that
    /// classify references without running the timing model).
    pub fn trace(&self, cpu: usize) -> &[Op] {
        &self.traces[cpu]
    }

    /// Rewinds all cursors so the workload can be replayed.
    pub fn rewind(&mut self) {
        self.cursors.iter_mut().for_each(|c| *c = 0);
    }
}

impl Workload for TraceWorkload {
    fn num_cpus(&self) -> usize {
        self.traces.len()
    }

    fn next(&mut self, cpu: usize) -> Option<Op> {
        let cursor = &mut self.cursors[cpu];
        let op = self.traces[cpu].get(*cursor).copied();
        if op.is_some() {
            *cursor += 1;
        }
        op
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn total_ops(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursors_are_independent_per_cpu() {
        let mut wl = TraceWorkload::new(
            "t",
            vec![
                vec![Op::Compute { cycles: 1 }, Op::Compute { cycles: 2 }],
                vec![Op::Compute { cycles: 9 }],
            ],
        );
        assert_eq!(wl.next(1), Some(Op::Compute { cycles: 9 }));
        assert_eq!(wl.next(0), Some(Op::Compute { cycles: 1 }));
        assert_eq!(wl.next(1), None);
        assert_eq!(wl.next(0), Some(Op::Compute { cycles: 2 }));
        assert_eq!(wl.remaining(0), 0);
    }

    #[test]
    fn rewind_replays_identically() {
        let mut wl = TraceWorkload::new("t", vec![vec![Op::Compute { cycles: 1 }]]);
        let a = wl.next(0);
        wl.rewind();
        let b = wl.next(0);
        assert_eq!(a, b);
    }

    #[test]
    fn total_ops_counts_everything() {
        let wl = TraceWorkload::new(
            "t",
            vec![
                vec![Op::Compute { cycles: 1 }; 3],
                vec![Op::Compute { cycles: 1 }; 2],
            ],
        );
        assert_eq!(wl.total_ops(), 5);
    }
}
