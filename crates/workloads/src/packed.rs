//! Packed struct-of-arrays trace encoding shared zero-copy across runs.
//!
//! The paper's program-driven methodology replays the *same* reference
//! stream under every architecture configuration (§4). A materialized
//! [`Vec<Op>`](crate::Op) honors that but costs 16 bytes per operation and
//! one private copy per run. [`PackedTrace`] encodes each processor's
//! stream as two parallel arrays — a 1-byte opcode stream and a
//! fixed-width `u32` payload stream — so a shared-read amounts to 9 bytes
//! and a whole six-application trace set fits comfortably under 10
//! amortized bytes per operation. The trace is immutable after
//! construction; N concurrent runs each hold a [`TraceCursor`] over one
//! `Arc<PackedTrace>` and decode independently with zero copies.
//!
//! Addresses are stored as one `u32` word when they fit (every generator's
//! allocations start at page 1 and stay far below 4 GiB) with a
//! wide-opcode escape carrying a second high word, so the format loses no
//! generality over the 64-bit [`Addr`](pfsim_mem::Addr) space.

use std::sync::Arc;

use pfsim_mem::{Addr, Pc};

use crate::{Op, TraceWorkload, Workload};

/// Opcode bytes of the packed encoding. The `_WIDE` variants carry an
/// extra high `u32` for addresses that do not fit in one payload word.
mod opcode {
    pub const READ: u8 = 0;
    pub const READ_WIDE: u8 = 1;
    pub const WRITE: u8 = 2;
    pub const WRITE_WIDE: u8 = 3;
    pub const COMPUTE: u8 = 4;
    pub const ACQUIRE: u8 = 5;
    pub const ACQUIRE_WIDE: u8 = 6;
    pub const RELEASE: u8 = 7;
    pub const RELEASE_WIDE: u8 = 8;
    pub const BARRIER: u8 = 9;
}

/// One processor's packed streams.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct PackedLane {
    pub(crate) opcodes: Vec<u8>,
    pub(crate) payload: Vec<u32>,
}

impl PackedLane {
    /// Appends `op`, coalescing into a preceding `Compute` when possible.
    ///
    /// Zero-cycle computes are dropped and back-to-back computes merge
    /// into one op (saturating), so `total_ops` counts what a processor
    /// actually issues rather than how chatty the generator was.
    pub(crate) fn push(&mut self, op: Op) {
        match op {
            Op::Read { addr, pc } => self.push_mem(opcode::READ, addr, Some(pc)),
            Op::Write { addr, pc } => self.push_mem(opcode::WRITE, addr, Some(pc)),
            Op::Compute { cycles } => {
                if cycles == 0 {
                    return;
                }
                if self.opcodes.last() == Some(&opcode::COMPUTE) {
                    let prev = self.payload.last_mut().expect("compute has payload");
                    *prev = prev.saturating_add(cycles);
                    return;
                }
                self.opcodes.push(opcode::COMPUTE);
                self.payload.push(cycles);
            }
            Op::Acquire { lock } => self.push_mem(opcode::ACQUIRE, lock, None),
            Op::Release { lock } => self.push_mem(opcode::RELEASE, lock, None),
            Op::Barrier { id } => {
                self.opcodes.push(opcode::BARRIER);
                self.payload.push(id);
            }
        }
    }

    /// Emits an address-carrying op. `base` must be a narrow opcode whose
    /// wide escape is `base + 1`.
    fn push_mem(&mut self, base: u8, addr: Addr, pc: Option<Pc>) {
        let raw = addr.as_u64();
        let lo = raw as u32;
        let hi = (raw >> 32) as u32;
        if hi == 0 {
            self.opcodes.push(base);
            self.payload.push(lo);
        } else {
            self.opcodes.push(base + 1);
            self.payload.push(lo);
            self.payload.push(hi);
        }
        if let Some(pc) = pc {
            self.payload.push(pc.as_u32());
        }
    }

    fn packed_bytes(&self) -> usize {
        self.opcodes.len() + 4 * self.payload.len()
    }
}

/// Decodes the op at `op_idx`/`payload_idx`; returns it plus the payload
/// index of the following op. Callers guarantee `op_idx` is in bounds.
#[inline]
fn decode(opcodes: &[u8], payload: &[u32], op_idx: usize, payload_idx: usize) -> (Op, usize) {
    /// The op's payload words as a fixed-size array: one range check per
    /// decoded op (the `try_into` length test folds away).
    #[inline]
    fn words<const N: usize>(payload: &[u32], at: usize) -> [u32; N] {
        payload[at..at + N].try_into().expect("sized by the range")
    }
    let wide = |lo: u32, hi: u32| Addr::new(lo as u64 | (hi as u64) << 32);
    match opcodes[op_idx] {
        opcode::READ => {
            let [lo, pc] = words(payload, payload_idx);
            (
                Op::Read {
                    addr: Addr::new(lo as u64),
                    pc: Pc::new(pc),
                },
                payload_idx + 2,
            )
        }
        opcode::READ_WIDE => {
            let [lo, hi, pc] = words(payload, payload_idx);
            (
                Op::Read {
                    addr: wide(lo, hi),
                    pc: Pc::new(pc),
                },
                payload_idx + 3,
            )
        }
        opcode::WRITE => {
            let [lo, pc] = words(payload, payload_idx);
            (
                Op::Write {
                    addr: Addr::new(lo as u64),
                    pc: Pc::new(pc),
                },
                payload_idx + 2,
            )
        }
        opcode::WRITE_WIDE => {
            let [lo, hi, pc] = words(payload, payload_idx);
            (
                Op::Write {
                    addr: wide(lo, hi),
                    pc: Pc::new(pc),
                },
                payload_idx + 3,
            )
        }
        opcode::COMPUTE => {
            let [cycles] = words(payload, payload_idx);
            (Op::Compute { cycles }, payload_idx + 1)
        }
        opcode::ACQUIRE => {
            let [lo] = words(payload, payload_idx);
            (
                Op::Acquire {
                    lock: Addr::new(lo as u64),
                },
                payload_idx + 1,
            )
        }
        opcode::ACQUIRE_WIDE => {
            let [lo, hi] = words(payload, payload_idx);
            (Op::Acquire { lock: wide(lo, hi) }, payload_idx + 2)
        }
        opcode::RELEASE => {
            let [lo] = words(payload, payload_idx);
            (
                Op::Release {
                    lock: Addr::new(lo as u64),
                },
                payload_idx + 1,
            )
        }
        opcode::RELEASE_WIDE => {
            let [lo, hi] = words(payload, payload_idx);
            (Op::Release { lock: wide(lo, hi) }, payload_idx + 2)
        }
        opcode::BARRIER => {
            let [id] = words(payload, payload_idx);
            (Op::Barrier { id }, payload_idx + 1)
        }
        other => unreachable!("corrupt packed trace: opcode {other}"),
    }
}

/// An immutable packed trace: per-CPU opcode + payload streams.
///
/// Built by [`TraceBuilder::finish_packed`](crate::TraceBuilder::finish_packed)
/// and shared across runs behind an [`Arc`]. Decode back to [`Op`]s with
/// [`iter_cpu`](Self::iter_cpu) (analysis) or a [`TraceCursor`]
/// (simulation).
///
/// # Examples
///
/// ```
/// use pfsim_workloads::{TraceBuilder, TraceCursor, Workload};
///
/// let mut b = TraceBuilder::new("demo", 2);
/// let a = b.alloc("A", 64, 8);
/// let pc = b.pc_site();
/// b.read(0, b.element(a, 8, 3), pc);
/// b.barrier_all();
/// let trace = std::sync::Arc::new(b.finish_packed());
/// assert_eq!(trace.total_ops(), 3); // one read + two barrier arrivals
/// assert!(trace.bytes_per_op() <= 10.0);
///
/// let mut cursor = TraceCursor::new(trace);
/// assert!(cursor.next(0).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTrace {
    name: String,
    lanes: Vec<PackedLane>,
}

impl PackedTrace {
    pub(crate) fn from_lanes(name: String, lanes: Vec<PackedLane>) -> Self {
        PackedTrace { name, lanes }
    }

    /// Workload name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors the trace was built for.
    pub fn num_cpus(&self) -> usize {
        self.lanes.len()
    }

    /// Operations in `cpu`'s stream.
    pub fn ops(&self, cpu: usize) -> usize {
        self.lanes[cpu].opcodes.len()
    }

    /// Total operations across all processors.
    pub fn total_ops(&self) -> usize {
        self.lanes.iter().map(|l| l.opcodes.len()).sum()
    }

    /// Resident bytes of the packed streams (opcodes + payload words).
    pub fn packed_bytes(&self) -> usize {
        self.lanes.iter().map(PackedLane::packed_bytes).sum()
    }

    /// Amortized resident bytes per operation.
    pub fn bytes_per_op(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            self.packed_bytes() as f64 / ops as f64
        }
    }

    /// Borrowed decode iterator over `cpu`'s stream.
    ///
    /// This is the analysis-side view: trace-classification tools walk
    /// ops straight out of the packed arrays without materializing a
    /// `Vec<Op>`.
    pub fn iter_cpu(&self, cpu: usize) -> OpIter<'_> {
        let lane = &self.lanes[cpu];
        OpIter {
            opcodes: &lane.opcodes,
            payload: &lane.payload,
            op_idx: 0,
            payload_idx: 0,
        }
    }

    /// Decodes the whole trace into a materialized [`TraceWorkload`].
    ///
    /// Exists for compatibility and for differential tests; experiment
    /// code should replay through a [`TraceCursor`] instead.
    pub fn materialize(&self) -> TraceWorkload {
        let traces = (0..self.num_cpus())
            .map(|cpu| self.iter_cpu(cpu).collect())
            .collect();
        TraceWorkload::new(self.name.clone(), traces)
    }
}

/// Borrowed iterator decoding one processor's packed stream into [`Op`]s.
#[derive(Debug, Clone)]
pub struct OpIter<'a> {
    opcodes: &'a [u8],
    payload: &'a [u32],
    op_idx: usize,
    payload_idx: usize,
}

impl Iterator for OpIter<'_> {
    type Item = Op;

    #[inline]
    fn next(&mut self) -> Option<Op> {
        if self.op_idx >= self.opcodes.len() {
            return None;
        }
        let (op, next_payload) = decode(self.opcodes, self.payload, self.op_idx, self.payload_idx);
        self.op_idx += 1;
        self.payload_idx = next_payload;
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.opcodes.len() - self.op_idx;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OpIter<'_> {}

/// A replay cursor over a shared packed trace.
///
/// Implements [`Workload`] by decoding ops on demand from an
/// `Arc<PackedTrace>`, so `System<TraceCursor>` keeps static dispatch
/// while N parallel runs share one immutable trace. Cloning a cursor (or
/// creating more from the same `Arc`) costs only the per-CPU cursor
/// state.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Arc<PackedTrace>,
    /// Per-CPU `(op index, payload index)` positions.
    cursors: Vec<(usize, usize)>,
}

impl TraceCursor {
    /// Creates a cursor at the start of `trace`.
    pub fn new(trace: Arc<PackedTrace>) -> Self {
        let cursors = vec![(0, 0); trace.num_cpus()];
        TraceCursor { trace, cursors }
    }

    /// The shared trace this cursor replays.
    pub fn trace(&self) -> &Arc<PackedTrace> {
        &self.trace
    }

    /// Total operations across all processors (consumed or not).
    pub fn total_ops(&self) -> usize {
        self.trace.total_ops()
    }

    /// Rewinds all cursors so the workload can be replayed.
    pub fn rewind(&mut self) {
        self.cursors.iter_mut().for_each(|c| *c = (0, 0));
    }
}

impl Workload for TraceCursor {
    fn num_cpus(&self) -> usize {
        self.trace.num_cpus()
    }

    #[inline]
    fn next(&mut self, cpu: usize) -> Option<Op> {
        let (op_idx, payload_idx) = self.cursors[cpu];
        let lane = &self.trace.lanes[cpu];
        if op_idx >= lane.opcodes.len() {
            return None;
        }
        let (op, next_payload) = decode(&lane.opcodes, &lane.payload, op_idx, payload_idx);
        self.cursors[cpu] = (op_idx + 1, next_payload);
        Some(op)
    }

    fn name(&self) -> &str {
        &self.trace.name
    }

    fn total_ops(&self) -> usize {
        self.trace.total_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Read {
                addr: Addr::new(0x1000),
                pc: Pc::new(0x40),
            },
            Op::Compute { cycles: 7 },
            Op::Write {
                addr: Addr::new(0x1_2345_6789), // needs the wide escape
                pc: Pc::new(0x44),
            },
            Op::Acquire {
                lock: Addr::new(0x2000),
            },
            Op::Release {
                lock: Addr::new(0x2000),
            },
            Op::Barrier { id: 3 },
            Op::Read {
                addr: Addr::new(u64::MAX),
                pc: Pc::new(0x48),
            },
            Op::Acquire {
                lock: Addr::new(u64::MAX - 1),
            },
            Op::Release {
                lock: Addr::new(u64::MAX - 1),
            },
        ]
    }

    fn pack(ops: &[Op]) -> PackedTrace {
        let mut lane = PackedLane::default();
        for &op in ops {
            lane.push(op);
        }
        PackedTrace::from_lanes("t".into(), vec![lane])
    }

    #[test]
    fn roundtrip_preserves_every_variant() {
        let ops = sample_ops();
        let trace = pack(&ops);
        let decoded: Vec<Op> = trace.iter_cpu(0).collect();
        assert_eq!(decoded, ops);
    }

    #[test]
    fn cursor_matches_iterator_and_rewinds() {
        let ops = sample_ops();
        let trace = Arc::new(pack(&ops));
        let mut cursor = TraceCursor::new(trace.clone());
        let first: Vec<Op> = std::iter::from_fn(|| cursor.next(0)).collect();
        assert_eq!(first, ops);
        assert_eq!(cursor.next(0), None);
        cursor.rewind();
        let second: Vec<Op> = std::iter::from_fn(|| cursor.next(0)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn computes_coalesce_and_zero_cycles_drop() {
        let mut lane = PackedLane::default();
        lane.push(Op::Compute { cycles: 2 });
        lane.push(Op::Compute { cycles: 3 });
        lane.push(Op::Compute { cycles: 0 });
        lane.push(Op::Barrier { id: 0 });
        lane.push(Op::Compute { cycles: 1 });
        let trace = PackedTrace::from_lanes("t".into(), vec![lane]);
        let decoded: Vec<Op> = trace.iter_cpu(0).collect();
        assert_eq!(
            decoded,
            vec![
                Op::Compute { cycles: 5 },
                Op::Barrier { id: 0 },
                Op::Compute { cycles: 1 },
            ]
        );
    }

    #[test]
    fn compute_coalescing_saturates() {
        let mut lane = PackedLane::default();
        lane.push(Op::Compute {
            cycles: u32::MAX - 1,
        });
        lane.push(Op::Compute { cycles: 10 });
        let trace = PackedTrace::from_lanes("t".into(), vec![lane]);
        let decoded: Vec<Op> = trace.iter_cpu(0).collect();
        assert_eq!(decoded, vec![Op::Compute { cycles: u32::MAX }]);
    }

    #[test]
    fn narrow_read_costs_nine_bytes() {
        let mut lane = PackedLane::default();
        lane.push(Op::Read {
            addr: Addr::new(0x1000),
            pc: Pc::new(0x40),
        });
        let trace = PackedTrace::from_lanes("t".into(), vec![lane]);
        assert_eq!(trace.packed_bytes(), 9);
        assert_eq!(trace.bytes_per_op(), 9.0);
    }

    #[test]
    fn materialize_matches_iterator() {
        let ops = sample_ops();
        let trace = pack(&ops);
        let wl = trace.materialize();
        assert_eq!(wl.trace(0), &ops[..]);
        assert_eq!(wl.total_ops(), trace.total_ops());
    }

    #[test]
    fn shared_decode_is_identical_across_threads() {
        let ops = sample_ops();
        let trace = Arc::new(pack(&ops));
        let decoded: Vec<Vec<Op>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let trace = Arc::clone(&trace);
                    scope.spawn(move || {
                        let mut cursor = TraceCursor::new(trace);
                        std::iter::from_fn(|| cursor.next(0)).collect::<Vec<Op>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for d in &decoded {
            assert_eq!(d, &ops);
        }
    }
}
