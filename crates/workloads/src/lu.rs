//! LU: dense LU factorization (Stanford), the paper's strongest stride
//! workload.
//!
//! The matrix is stored **column-major** (as in the Stanford code) and
//! columns are assigned to processors interleaved. Each elimination step
//! `k` has the owner of column `k` normalize it, a barrier, and then every
//! processor update its own columns `j > k` by reading the freshly written
//! pivot column. Under an infinite SLC virtually every read miss comes from
//! re-reading pivot columns after their owner's writes invalidated the
//! local copy — long runs of consecutive blocks, which is why the paper
//! measures 93% of LU's misses inside stride sequences with dominant
//! stride 1 and an average sequence length of ~17 (Table 2).

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Problem-size parameters for LU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuParams {
    /// Matrix dimension (the paper uses a 200×200 matrix).
    pub n: u64,
    /// Number of processors.
    pub cpus: usize,
}

impl Default for LuParams {
    /// A scaled-down size for tests and quick runs.
    fn default() -> Self {
        LuParams { n: 96, cpus: 16 }
    }
}

impl LuParams {
    /// The paper's input: a 200×200 matrix on 16 processors.
    pub fn paper() -> Self {
        LuParams { n: 200, cpus: 16 }
    }

    /// The enlarged data set used for the §5.4 trend study.
    pub fn large() -> Self {
        LuParams { n: 320, cpus: 16 }
    }
}

/// Builds the LU workload.
///
/// # Panics
///
/// Panics if `n` or `cpus` is zero.
pub fn build(params: LuParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: LuParams) -> PackedTrace {
    emit(params).finish_packed()
}

fn emit(params: LuParams) -> TraceBuilder {
    let LuParams { n, cpus } = params;
    assert!(n > 0 && cpus > 0, "LU needs a matrix and processors");

    let mut b = TraceBuilder::new(format!("LU-{n}x{n}"), cpus);
    let a = b.alloc("A", n * n, 8);
    // Column-major: A[i,j] lives at a + (j*n + i)*8.
    let elem = |b: &TraceBuilder, i: u64, j: u64| b.element(a, 8, j * n + i);

    let pc_diag = b.pc_site(); // load of A[k,k]
    let pc_norm_r = b.pc_site(); // load of A[i,k] in the normalize loop
    let pc_norm_w = b.pc_site(); // store of A[i,k]
    let pc_piv_elem = b.pc_site(); // load of A[k,j]
    let pc_colk = b.pc_site(); // load of A[i,k] in the update loop
    let pc_own_r = b.pc_site(); // load of A[i,j]
    let pc_own_w = b.pc_site(); // store of A[i,j]

    let owner = |j: u64| (j as usize) % cpus;

    for k in 0..n {
        // Normalize column k (its owner divides by the pivot).
        let p = owner(k);
        b.read(p, elem(&b, k, k), pc_diag);
        b.compute(p, 6); // the division
        for i in k + 1..n {
            b.read(p, elem(&b, i, k), pc_norm_r);
            b.compute(p, 2);
            b.write(p, elem(&b, i, k), pc_norm_w);
        }
        b.barrier_all();

        // Update trailing columns: A[i,j] -= A[i,k] * A[k,j].
        for j in k + 1..n {
            let p = owner(j);
            b.read(p, elem(&b, k, j), pc_piv_elem);
            for i in k + 1..n {
                b.read(p, elem(&b, i, k), pc_colk);
                b.read(p, elem(&b, i, j), pc_own_r);
                // One double-precision multiply-subtract plus index and
                // loop overhead; early-90s SPARC FPUs are not fully
                // pipelined, so an inner daxpy iteration costs ~15 pclocks
                // end to end.
                b.compute(p, 12);
                b.write(p, elem(&b, i, j), pc_own_w);
            }
        }
        b.barrier_all();
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn column_major_layout_makes_pivot_column_contiguous() {
        let p = LuParams { n: 16, cpus: 4 };
        let wl = build(p);
        // The normalize loop of k=0 on cpu 0 reads A[1..16,0]: consecutive
        // 8-byte elements.
        let reads: Vec<u64> = wl
            .trace(0)
            .iter()
            .filter_map(|op| match op {
                Op::Read { addr, .. } => Some(addr.as_u64()),
                _ => None,
            })
            .take(5)
            .collect();
        for w in reads.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn work_is_distributed_to_all_cpus() {
        let wl = build(LuParams { n: 32, cpus: 16 });
        for cpu in 0..16 {
            assert!(
                wl.trace(cpu).iter().any(|op| matches!(op, Op::Read { .. })),
                "cpu {cpu} has no reads"
            );
        }
    }

    #[test]
    fn barriers_keep_cpus_in_lockstep() {
        let wl = build(LuParams { n: 8, cpus: 4 });
        let barrier_count = |cpu: usize| {
            wl.trace(cpu)
                .iter()
                .filter(|op| matches!(op, Op::Barrier { .. }))
                .count()
        };
        let c0 = barrier_count(0);
        assert_eq!(c0, 16); // two barriers per elimination step
        for cpu in 1..4 {
            assert_eq!(barrier_count(cpu), c0);
        }
    }

    #[test]
    fn op_volume_scales_cubically() {
        let small = build(LuParams { n: 16, cpus: 16 }).total_ops();
        let big = build(LuParams { n: 32, cpus: 16 }).total_ops();
        let ratio = big as f64 / small as f64;
        assert!((4.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic() {
        let a = build(LuParams { n: 12, cpus: 4 });
        let b = build(LuParams { n: 12, cpus: 4 });
        for cpu in 0..4 {
            assert_eq!(a.trace(cpu), b.trace(cpu));
        }
    }
}
