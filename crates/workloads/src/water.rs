//! Water: molecular dynamics of liquid water (SPLASH), the paper's
//! long-stride workload.
//!
//! Each molecule is a large record (672 bytes = 21 blocks, matching the
//! paper's dominant stride of 21 blocks at 99%); the inter-molecular force
//! phase reads a few fields of *consecutive* molecules, so read misses from
//! one load site are 21 blocks apart. Because the different fields read
//! per molecule live in **adjacent** blocks, distinct stride-21 sequences
//! are spatially adjacent — the locality that lets sequential prefetching
//! match stride prefetching on Water despite the long stride (§5.2).
//!
//! Sequences are interrupted the way the real program's cutoff radius
//! interrupts them: each molecule interacts with *runs* of consecutive
//! molecules inside its shell, and the runs are medium length (the paper
//! measures an average sequence length of 8.0).

use pfsim_mem::SplitMix64;

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Size of one molecule record in bytes: 21 cache blocks.
pub const MOLECULE_BYTES: u64 = 672;

/// Problem-size parameters for Water.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaterParams {
    /// Number of molecules (the paper uses 288).
    pub molecules: u64,
    /// Number of simulated time steps (the paper uses 4).
    pub steps: u32,
    /// Mean length of an interaction run (consecutive molecules inside the
    /// cutoff shell).
    pub mean_run: u64,
    /// Number of processors.
    pub cpus: usize,
}

impl Default for WaterParams {
    /// A scaled-down system for tests and quick runs.
    fn default() -> Self {
        WaterParams {
            molecules: 288,
            steps: 2,
            mean_run: 8,
            cpus: 16,
        }
    }
}

impl WaterParams {
    /// The paper's input: 288 molecules for 4 time steps.
    pub fn paper() -> Self {
        WaterParams {
            molecules: 288,
            steps: 4,
            mean_run: 8,
            cpus: 16,
        }
    }

    /// The enlarged data set for the §5.4 trend study: more molecules and
    /// longer interaction runs.
    pub fn large() -> Self {
        WaterParams {
            molecules: 512,
            steps: 4,
            mean_run: 16,
            cpus: 16,
        }
    }
}

/// Builds the Water workload.
///
/// # Panics
///
/// Panics if there are fewer molecules than processors.
pub fn build(params: WaterParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: WaterParams) -> PackedTrace {
    emit(params).finish_packed()
}

fn emit(params: WaterParams) -> TraceBuilder {
    let WaterParams {
        molecules,
        steps,
        mean_run,
        cpus,
    } = params;
    assert!(
        molecules >= cpus as u64,
        "need at least one molecule per cpu"
    );
    assert!(mean_run >= 2);

    let mut b = TraceBuilder::new(format!("Water-{molecules}m"), cpus);
    let mols = b.alloc("MOL", molecules, MOLECULE_BYTES);
    let locks = b.alloc("MolLocks", molecules, 32);

    // Field offsets within a molecule record. The predicted positions the
    // force loop reads and the force accumulators it writes live in
    // *adjacent* blocks at the front of the record (as the real record
    // packs the per-atom position/derivative arrays): this adjacency
    // between different stride-21 sequences is the spatial locality that
    // §5.2 credits for sequential prefetching's good showing on Water.
    const F_POS_A: u64 = 0; // block +0
    const F_POS_B: u64 = 40; // block +1
                             // The force accumulators (3 atoms × 3 dimensions plus higher-order
                             // derivatives) occupy three consecutive blocks.
    const F_FORCE0: u64 = 72; // block +2
    const F_FORCE1: u64 = 104; // block +3
    const F_FORCE2: u64 = 136; // block +4

    let pc_pos_a = b.pc_site();
    let pc_pos_b = b.pc_site();
    let pc_force_r0 = b.pc_site();
    let pc_force_r1 = b.pc_site();
    let pc_force_r2 = b.pc_site();
    let pc_force_w0 = b.pc_site();
    let pc_force_w1 = b.pc_site();
    let pc_force_w2 = b.pc_site();
    let pc_own_r = b.pc_site();
    let pc_own_w = b.pc_site();
    let pc_own_w2 = b.pc_site();
    let pc_upd_r = b.pc_site();
    let pc_upd_f = b.pc_site();
    let pc_upd_f1 = b.pc_site();
    let pc_upd_f2 = b.pc_site();
    let pc_upd_w = b.pc_site();

    let per_cpu = molecules / cpus as u64;
    let own_range = |p: usize| {
        let lo = p as u64 * per_cpu;
        let hi = if p == cpus - 1 {
            molecules
        } else {
            lo + per_cpu
        };
        (lo, hi)
    };

    let mut rng = SplitMix64::seed_from_u64(0x57A7E5);

    for _step in 0..steps {
        // Phase 1 — intra-molecular: predict positions of own molecules.
        for p in 0..cpus {
            let (lo, hi) = own_range(p);
            for i in lo..hi {
                b.read(p, b.field(mols, MOLECULE_BYTES, i, F_POS_A), pc_own_r);
                b.compute(p, 12);
                // The predictor rewrites the whole position/derivative
                // prefix of the record (two blocks), invalidating last
                // step's readers.
                b.write(p, b.field(mols, MOLECULE_BYTES, i, F_POS_A), pc_own_w);
                b.write(p, b.field(mols, MOLECULE_BYTES, i, F_POS_B), pc_own_w2);
            }
        }
        b.barrier_all();

        // Phase 2 — inter-molecular forces. For each of its molecules,
        // a processor interacts with runs of consecutive molecules inside
        // the cutoff shell (half-shell method: partners ahead of i).
        for p in 0..cpus {
            let (lo, hi) = own_range(p);
            for i in lo..hi {
                // The shell of molecule i: a handful of runs starting at
                // pseudo-random offsets ahead of i.
                let mut cursor = i + 1;
                let shell_span = molecules / 2;
                let end = i + 1 + shell_span;
                while cursor < end {
                    let run = rng.random_range(2..=2 * mean_run - 2).min(end - cursor);
                    for j0 in cursor..cursor + run {
                        let j = j0 % molecules;
                        if j == i {
                            continue;
                        }
                        // Read the partner's positions: two loads hitting
                        // adjacent blocks of the record.
                        b.read(p, b.field(mols, MOLECULE_BYTES, j, F_POS_A), pc_pos_a);
                        b.read(p, b.field(mols, MOLECULE_BYTES, j, F_POS_B), pc_pos_b);
                        b.compute(p, 18);
                        // Accumulate into the partner's force region
                        // (three consecutive blocks) under its
                        // per-molecule lock.
                        b.acquire(p, b.element(locks, 32, j));
                        b.read(p, b.field(mols, MOLECULE_BYTES, j, F_FORCE0), pc_force_r0);
                        b.read(p, b.field(mols, MOLECULE_BYTES, j, F_FORCE1), pc_force_r1);
                        b.read(p, b.field(mols, MOLECULE_BYTES, j, F_FORCE2), pc_force_r2);
                        b.compute(p, 4);
                        b.write(p, b.field(mols, MOLECULE_BYTES, j, F_FORCE0), pc_force_w0);
                        b.write(p, b.field(mols, MOLECULE_BYTES, j, F_FORCE1), pc_force_w1);
                        b.write(p, b.field(mols, MOLECULE_BYTES, j, F_FORCE2), pc_force_w2);
                        b.release(p, b.element(locks, 32, j));
                    }
                    cursor += run;
                    // Gap outside the cutoff: skip a stretch of molecules,
                    // which is what bounds the miss-sequence length.
                    cursor += rng.random_range(1..=mean_run);
                }
            }
        }
        b.barrier_all();

        // Phase 3 — update own molecules from accumulated forces (written
        // by many other processors during phase 2).
        for p in 0..cpus {
            let (lo, hi) = own_range(p);
            for i in lo..hi {
                b.read(p, b.field(mols, MOLECULE_BYTES, i, F_FORCE0), pc_upd_f);
                b.read(p, b.field(mols, MOLECULE_BYTES, i, F_FORCE1), pc_upd_f1);
                b.read(p, b.field(mols, MOLECULE_BYTES, i, F_FORCE2), pc_upd_f2);
                b.read(p, b.field(mols, MOLECULE_BYTES, i, F_POS_A), pc_upd_r);
                b.compute(p, 10);
                b.write(p, b.field(mols, MOLECULE_BYTES, i, F_POS_A), pc_upd_w);
            }
        }
        b.barrier_all();
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn molecule_record_spans_21_blocks() {
        assert_eq!(MOLECULE_BYTES / 32, 21);
    }

    #[test]
    fn partner_reads_step_by_whole_molecules() {
        let wl = build(WaterParams {
            molecules: 64,
            steps: 1,
            mean_run: 8,
            cpus: 4,
        });
        // Collect the pc of the first partner-position load, then check
        // consecutive reads from that pc within a run differ by 672 bytes.
        let mut strides = std::collections::HashMap::new();
        for cpu in 0..4 {
            let mut prev: Option<u64> = None;
            for op in wl.trace(cpu) {
                if let Op::Read { addr, pc } = op {
                    if pc.as_u32() == 0x0010_0000 {
                        // pc_pos_a is the first allocated site
                        if let Some(p) = prev {
                            let d = addr.as_u64().wrapping_sub(p);
                            *strides.entry(d).or_insert(0u64) += 1;
                        }
                        prev = Some(addr.as_u64());
                    }
                }
            }
        }
        // The overwhelmingly most common distance is one molecule.
        let (&top, _) = strides.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_eq!(top, MOLECULE_BYTES);
    }

    #[test]
    fn force_updates_are_lock_protected() {
        let wl = build(WaterParams {
            molecules: 32,
            steps: 1,
            mean_run: 4,
            cpus: 2,
        });
        let t = wl.trace(0);
        let acq = t
            .iter()
            .position(|op| matches!(op, Op::Acquire { .. }))
            .unwrap();
        // Critical section: three force reads, compute, three force
        // writes, release.
        assert!(matches!(t[acq + 1], Op::Read { .. }));
        assert!(matches!(t[acq + 2], Op::Read { .. }));
        assert!(matches!(t[acq + 3], Op::Read { .. }));
        assert!(matches!(t[acq + 4], Op::Compute { .. }));
        assert!(matches!(t[acq + 5], Op::Write { .. }));
        assert!(matches!(t[acq + 8], Op::Release { .. }));
    }

    #[test]
    fn deterministic() {
        let a = build(WaterParams::default());
        let b = build(WaterParams::default());
        for cpu in 0..16 {
            assert_eq!(a.trace(cpu), b.trace(cpu));
        }
    }

    #[test]
    fn three_phases_per_step() {
        let wl = build(WaterParams {
            molecules: 32,
            steps: 3,
            mean_run: 4,
            cpus: 2,
        });
        let barriers = wl
            .trace(0)
            .iter()
            .filter(|op| matches!(op, Op::Barrier { .. }))
            .count();
        assert_eq!(barriers, 9);
    }
}
