//! Static trace statistics, in the style of the SPLASH report's workload
//! tables: operation mix, shared-data footprint and sharing degree,
//! computed from a trace without running the timing model.

use pfsim_mem::{sorted_entries, FxHashMap, FxHashSet, Geometry};

use crate::{Op, PackedTrace, TraceWorkload, Workload as _};

/// Operation mix and sharing profile of one workload.
///
/// # Examples
///
/// ```
/// use pfsim_workloads::{micro, trace_stats};
///
/// let stats = trace_stats(&micro::producer_consumer(16, 64));
/// assert_eq!(stats.writes, 64);
/// assert_eq!(stats.reads, 15 * 64);
/// // Every block is written by one cpu and read by 15: fully shared.
/// assert_eq!(stats.shared_blocks, 64);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Shared-data loads.
    pub reads: u64,
    /// Shared-data stores.
    pub writes: u64,
    /// Total compute pclocks.
    pub compute_cycles: u64,
    /// Lock acquires.
    pub acquires: u64,
    /// Barrier episodes (per-processor arrivals summed).
    pub barrier_arrivals: u64,
    /// Distinct 32-byte blocks referenced.
    pub footprint_blocks: u64,
    /// Blocks referenced by more than one processor.
    pub shared_blocks: u64,
    /// Blocks *written* by one processor and *referenced* by another —
    /// the communication footprint that generates coherence misses.
    pub communicated_blocks: u64,
    /// Distinct load/store sites (program counters).
    pub pc_sites: u64,
}

impl TraceStats {
    /// Shared fraction of the footprint.
    pub fn sharing_fraction(&self) -> f64 {
        if self.footprint_blocks == 0 {
            0.0
        } else {
            self.shared_blocks as f64 / self.footprint_blocks as f64
        }
    }

    /// Footprint in bytes (32-byte blocks).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_blocks * 32
    }
}

/// Computes the static statistics of a materialized `workload`.
pub fn trace_stats(workload: &TraceWorkload) -> TraceStats {
    stats_over(workload.num_cpus(), |cpu| {
        workload.trace(cpu).iter().copied()
    })
}

/// Computes the static statistics of a packed trace without
/// materializing it: ops are decoded on the fly through the borrowed
/// [`iter_cpu`](PackedTrace::iter_cpu) view.
pub fn packed_stats(trace: &PackedTrace) -> TraceStats {
    stats_over(trace.num_cpus(), |cpu| trace.iter_cpu(cpu))
}

/// Per-block sharing record: exact for any processor count (an earlier
/// bitmask encoding aliased cpus ≥ 32 and miscounted sharing on wide
/// meshes).
#[derive(Clone, Copy)]
struct BlockTouch {
    /// The first cpu to touch the block.
    first: u32,
    /// Whether a second, distinct cpu touched it.
    multi: bool,
    /// Whether any cpu wrote it.
    written: bool,
}

/// Shared accumulator over per-CPU op streams (32-byte blocks).
fn stats_over<I>(num_cpus: usize, lane: impl Fn(usize) -> I) -> TraceStats
where
    I: Iterator<Item = Op>,
{
    let g = Geometry::paper();
    let mut stats = TraceStats::default();
    let mut touched: FxHashMap<u64, BlockTouch> = FxHashMap::default();
    let mut pcs: FxHashSet<u32> = FxHashSet::default();

    for cpu in 0..num_cpus {
        let cpu = cpu as u32;
        let mut touch = |block: u64, write: bool| {
            let e = touched.entry(block).or_insert(BlockTouch {
                first: cpu,
                multi: false,
                written: false,
            });
            e.multi |= e.first != cpu;
            e.written |= write;
        };
        for op in lane(cpu as usize) {
            match op {
                Op::Read { addr, pc } => {
                    stats.reads += 1;
                    pcs.insert(pc.as_u32());
                    touch(g.block_of(addr).as_u64(), false);
                }
                Op::Write { addr, pc } => {
                    stats.writes += 1;
                    pcs.insert(pc.as_u32());
                    touch(g.block_of(addr).as_u64(), true);
                }
                Op::Compute { cycles } => stats.compute_cycles += u64::from(cycles),
                Op::Acquire { .. } => stats.acquires += 1,
                Op::Release { .. } => {}
                Op::Barrier { .. } => stats.barrier_arrivals += 1,
            }
        }
    }

    stats.footprint_blocks = touched.len() as u64;
    // The sums below are commutative, but walk the snapshot anyway: no
    // hash-ordered loop survives to be copied somewhere order-sensitive.
    for (_, touch) in sorted_entries(&touched) {
        if touch.multi {
            stats.shared_blocks += 1;
            // Communicated: the block is written and more than one
            // processor touches it, so ownership must move.
            if touch.written {
                stats.communicated_blocks += 1;
            }
        }
    }
    stats.pc_sites = pcs.len() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro;

    #[test]
    fn packed_stats_match_materialized_stats() {
        for app in crate::App::ALL {
            let packed = app.build_default_packed();
            assert_eq!(
                packed_stats(&packed),
                trace_stats(&packed.materialize()),
                "{app}"
            );
        }
    }

    #[test]
    fn private_walks_share_nothing() {
        let s = trace_stats(&micro::sequential_walk(4, 32, 1));
        assert_eq!(s.reads, 4 * 32);
        assert_eq!(s.footprint_blocks, 4 * 32);
        assert_eq!(s.shared_blocks, 0);
        assert_eq!(s.communicated_blocks, 0);
        assert_eq!(s.sharing_fraction(), 0.0);
    }

    #[test]
    fn producer_consumer_is_fully_communicated() {
        let s = trace_stats(&micro::producer_consumer(4, 16));
        assert_eq!(s.footprint_blocks, 16);
        assert_eq!(s.shared_blocks, 16);
        assert_eq!(s.communicated_blocks, 16);
        assert_eq!(s.barrier_arrivals, 4);
    }

    #[test]
    fn lock_ping_pong_counts_sync_ops() {
        let s = trace_stats(&micro::lock_ping_pong(4, 10));
        assert_eq!(s.acquires, 20);
        assert!(s.shared_blocks >= 1);
    }

    /// Sharing must be detected between cpus past index 31: the old
    /// bitmask encoding aliased every cpu ≥ 31 onto one bit, so a block
    /// shared only between (say) cpus 40 and 41 looked private.
    #[test]
    fn sharing_between_high_cpus_is_detected() {
        let mut b = crate::TraceBuilder::new("hi-cpus", 64);
        let arr = b.alloc("arr", 2, 32);
        let pc = b.pc_site();
        b.write(40, arr, pc);
        b.read(41, arr, pc);
        // Second block stays private to cpu 63.
        let lone = b.element(arr, 32, 1);
        b.read(63, lone, pc);
        let s = trace_stats(&b.finish());
        assert_eq!(s.footprint_blocks, 2);
        assert_eq!(s.shared_blocks, 1);
        assert_eq!(s.communicated_blocks, 1);
    }

    #[test]
    fn apps_have_meaningful_sharing() {
        for app in crate::App::ALL {
            let s = trace_stats(&app.build_default());
            assert!(s.reads > 0 && s.writes > 0, "{app}");
            assert!(
                s.communicated_blocks > 0,
                "{app} has no communication: {s:?}"
            );
            assert!(s.pc_sites >= 4, "{app}");
        }
    }
}
