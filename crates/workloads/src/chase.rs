//! CHASE: pointer-chasing over randomized linked structures, the access
//! pattern the paper's stride and sequential prefetchers are blind to.
//!
//! Each processor owns a randomized singly-linked ring over its slice of
//! a node pool and repeatedly walks it: every load's address comes from
//! the previous load, so consecutive misses land on unrelated blocks and
//! no fixed stride ever forms (the motivating case of pointer-chase
//! prefetching work, see `PAPERS.md`). A shared randomized binary tree is
//! probed by every processor between walks; occasional leaf-counter
//! updates move ownership around and generate coherence traffic. The
//! topology is drawn from the in-tree [`SplitMix64`], so the same
//! parameters always produce byte-identical traces.

use pfsim_mem::SplitMix64;

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Size of one linked node record in bytes (one cache block).
pub const NODE_BYTES: u64 = 32;

/// Problem-size parameters for CHASE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseParams {
    /// Linked-list nodes per processor (each processor rings its own
    /// slice of the pool).
    pub list_nodes_per_cpu: u64,
    /// Nodes in the shared probe tree (heap-shaped, 1-indexed).
    pub tree_nodes: u64,
    /// Walk rounds, separated by barriers.
    pub walks: u64,
    /// Pointer dereferences per walk per processor.
    pub steps_per_walk: u64,
    /// Root-to-leaf tree probes per walk per processor.
    pub probes_per_walk: u64,
    /// Number of processors.
    pub cpus: usize,
    /// Seed for the randomized list permutation and probe paths.
    pub seed: u64,
}

impl Default for ChaseParams {
    /// A scaled-down size for tests and quick runs.
    fn default() -> Self {
        ChaseParams {
            list_nodes_per_cpu: 256,
            tree_nodes: 511,
            walks: 6,
            steps_per_walk: 400,
            probes_per_walk: 24,
            cpus: 16,
            seed: 0xc4a5e,
        }
    }
}

impl ChaseParams {
    /// A full-size configuration comparable to the paper's inputs.
    pub fn paper() -> Self {
        ChaseParams {
            list_nodes_per_cpu: 1024,
            tree_nodes: 2047,
            walks: 12,
            steps_per_walk: 1200,
            probes_per_walk: 64,
            cpus: 16,
            seed: 0xc4a5e,
        }
    }

    /// The enlarged data set for trend studies.
    pub fn large() -> Self {
        ChaseParams {
            list_nodes_per_cpu: 4096,
            tree_nodes: 8191,
            walks: 12,
            steps_per_walk: 2400,
            probes_per_walk: 96,
            cpus: 16,
            seed: 0xc4a5e,
        }
    }
}

/// Builds the CHASE workload.
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn build(params: ChaseParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: ChaseParams) -> PackedTrace {
    emit(params).finish_packed()
}

/// A random permutation of `0..n` (Fisher–Yates over the seeded stream):
/// interpreting `perm[i]` as the successor of `i` yields disjoint cycles,
/// i.e. a pointer-chase order with no address-arithmetic structure.
fn permutation(rng: &mut SplitMix64, n: u64) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.random_range(0..=i as u64) as usize;
        perm.swap(i, j);
    }
    perm
}

fn emit(params: ChaseParams) -> TraceBuilder {
    let ChaseParams {
        list_nodes_per_cpu,
        tree_nodes,
        walks,
        steps_per_walk,
        probes_per_walk,
        cpus,
        seed,
    } = params;
    assert!(
        list_nodes_per_cpu > 0 && tree_nodes > 0 && walks > 0 && steps_per_walk > 0 && cpus > 0,
        "CHASE needs nodes, walks and processors"
    );

    let mut b = TraceBuilder::new(format!("CHASE-{list_nodes_per_cpu}n"), cpus);
    let pool = b.alloc("ListPool", list_nodes_per_cpu * cpus as u64, NODE_BYTES);
    let tree = b.alloc("ProbeTree", tree_nodes, NODE_BYTES);

    let pc_next = b.pc_site(); // load of node.next (the chase)
    let pc_payload = b.pc_site(); // load of node.payload
    let pc_mark_w = b.pc_site(); // store of node.visited
    let pc_tree = b.pc_site(); // load of a tree node during descent
    let pc_leaf_w = b.pc_site(); // store of a leaf counter

    let mut rng = SplitMix64::seed_from_u64(seed);
    // Each cpu's slice of the pool is ordered by its own random
    // permutation; following it is the pointer chase.
    let orders: Vec<Vec<u64>> = (0..cpus)
        .map(|_| permutation(&mut rng, list_nodes_per_cpu))
        .collect();

    let mut cursors = vec![0u64; cpus];
    for _walk in 0..walks {
        for p in 0..cpus {
            let slice_base = p as u64 * list_nodes_per_cpu;
            for step in 0..steps_per_walk {
                let at = cursors[p] as usize;
                let node = slice_base + orders[p][at];
                // Load the next pointer — the address of the following
                // load depends on this one, the defining property of
                // linked-data-structure traversal.
                b.read(p, b.element(pool, NODE_BYTES, node), pc_next);
                b.compute(p, 3);
                // Touch the payload (same block: records are one block).
                b.read(p, b.field(pool, NODE_BYTES, node, 8), pc_payload);
                // Mark every 16th node visited (private write).
                if step % 16 == 0 {
                    b.write(p, b.field(pool, NODE_BYTES, node, 16), pc_mark_w);
                }
                cursors[p] = (cursors[p] + 1) % list_nodes_per_cpu;
            }

            // Probe the shared tree: root-to-leaf descents with random
            // comparison outcomes; a ninth of the probes update the leaf
            // counter, moving the block between processors.
            for _probe in 0..probes_per_walk {
                let mut at = 1u64; // heap-shaped: children of i are 2i, 2i+1
                while at <= tree_nodes {
                    b.read(p, b.element(tree, NODE_BYTES, at - 1), pc_tree);
                    b.compute(p, 2);
                    at = 2 * at + u64::from(rng.random_bool());
                }
                let leaf = at / 2;
                if rng.random_range(0..9u32) == 0 {
                    b.write(p, b.field(tree, NODE_BYTES, leaf - 1, 24), pc_leaf_w);
                }
            }
        }
        b.barrier_all();
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    fn tiny() -> ChaseParams {
        ChaseParams {
            list_nodes_per_cpu: 64,
            tree_nodes: 31,
            walks: 2,
            steps_per_walk: 64,
            probes_per_walk: 8,
            cpus: 4,
            seed: 1,
        }
    }

    #[test]
    fn chase_loads_have_no_dominant_stride() {
        let wl = build(tiny());
        let chases: Vec<u64> = wl
            .trace(0)
            .iter()
            .filter_map(|op| match op {
                Op::Read { addr, pc } if pc.as_u32() == 0x0010_0000 => Some(addr.as_u64()),
                _ => None,
            })
            .collect();
        let deltas: std::collections::BTreeSet<i64> = chases
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        assert!(
            deltas.len() > chases.len() / 4,
            "{} distinct deltas over {} loads",
            deltas.len(),
            chases.len()
        );
    }

    #[test]
    fn tree_probes_share_the_root() {
        let wl = build(tiny());
        let tree_root: Vec<usize> = (0..4)
            .filter(|&cpu| {
                wl.trace(cpu)
                    .iter()
                    .any(|op| matches!(op, Op::Read { pc, .. } if pc.as_u32() == 0x0010_000c))
            })
            .collect();
        assert_eq!(tree_root.len(), 4, "every cpu probes the tree");
    }

    #[test]
    fn distinct_seeds_change_the_topology() {
        let a = build(tiny());
        let b = build(ChaseParams { seed: 2, ..tiny() });
        assert_ne!(a.trace(0), b.trace(0));
    }

    #[test]
    fn deterministic() {
        let a = build_packed(tiny());
        let b = build_packed(tiny());
        assert_eq!(a, b);
    }
}
