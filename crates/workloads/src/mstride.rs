//! MSTRIDE: multi-strided nested-loop kernels with a configurable stride
//! tuple, the pattern that separates per-PC stride detection from
//! sequential prefetching.
//!
//! Each inner iteration advances three static load/store sites by three
//! *different* strides simultaneously — a row-major operand, a
//! column-walking operand and a strided output — the shape studied by the
//! multi-strided-access prefetching literature (see `PAPERS.md`). A
//! per-PC stride detector locks onto each site's own stride; a purely
//! sequential prefetcher only covers the unit-stride site. Rows are
//! interleaved across processors and every iteration re-reads the
//! neighbouring processor's output row, so the kernel also carries
//! coherence traffic, not just private strides.

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Element size in bytes (double precision).
pub const ELEMENT_BYTES: u64 = 8;

/// Problem-size parameters for MSTRIDE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MstrideParams {
    /// Rows of the iteration space (interleaved across processors).
    pub rows: u64,
    /// Inner-loop trip count per row.
    pub cols: u64,
    /// The stride tuple, in elements: applied to the A, B and C sites
    /// respectively. `(1, cols, 2)`-style tuples give three concurrent
    /// stride streams per processor.
    pub strides: (u64, u64, u64),
    /// Outer repetitions (each ends in a barrier).
    pub iters: u64,
    /// Number of processors.
    pub cpus: usize,
}

impl Default for MstrideParams {
    /// A scaled-down size for tests and quick runs.
    fn default() -> Self {
        MstrideParams {
            rows: 64,
            cols: 96,
            strides: (1, 96, 3),
            iters: 3,
            cpus: 16,
        }
    }
}

impl MstrideParams {
    /// A full-size configuration comparable to the paper's inputs.
    pub fn paper() -> Self {
        MstrideParams {
            rows: 128,
            cols: 256,
            strides: (1, 256, 3),
            iters: 5,
            cpus: 16,
        }
    }

    /// The enlarged data set for trend studies.
    pub fn large() -> Self {
        MstrideParams {
            rows: 192,
            cols: 384,
            strides: (1, 384, 3),
            iters: 6,
            cpus: 16,
        }
    }
}

/// Builds the MSTRIDE workload.
///
/// # Panics
///
/// Panics if any dimension, stride or the processor count is zero.
pub fn build(params: MstrideParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: MstrideParams) -> PackedTrace {
    emit(params).finish_packed()
}

fn emit(params: MstrideParams) -> TraceBuilder {
    let MstrideParams {
        rows,
        cols,
        strides: (sa, sb, sc),
        iters,
        cpus,
    } = params;
    assert!(
        rows > 0 && cols > 0 && iters > 0 && cpus > 0 && sa > 0 && sb > 0 && sc > 0,
        "MSTRIDE needs a nonempty iteration space and nonzero strides"
    );

    let mut b = TraceBuilder::new(format!("MSTRIDE-{rows}x{cols}"), cpus);
    // Operand extents cover the largest strided index each site reaches.
    let a = b.alloc("A", rows * cols * sa, ELEMENT_BYTES);
    let bb = b.alloc("B", rows + cols * sb, ELEMENT_BYTES);
    let c = b.alloc("C", rows * cols * sc, ELEMENT_BYTES);

    let pc_a = b.pc_site(); // stride-sa stream
    let pc_b = b.pc_site(); // stride-sb stream (column walk)
    let pc_halo = b.pc_site(); // neighbour row of C (communication)
    let pc_c_w = b.pc_site(); // stride-sc output stream

    for _it in 0..iters {
        for r in 0..rows {
            let p = (r as usize) % cpus;
            for j in 0..cols {
                // Three concurrent strides from three static sites.
                b.read(p, b.element(a, ELEMENT_BYTES, (r * cols + j) * sa), pc_a);
                b.read(p, b.element(bb, ELEMENT_BYTES, r + j * sb), pc_b);
                // Re-read the next row's output — written by the
                // neighbouring processor last iteration.
                if j % 8 == 0 {
                    let nr = (r + 1) % rows;
                    b.read(
                        p,
                        b.element(c, ELEMENT_BYTES, (nr * cols + j) * sc),
                        pc_halo,
                    );
                }
                b.compute(p, 8);
                b.write(p, b.element(c, ELEMENT_BYTES, (r * cols + j) * sc), pc_c_w);
            }
        }
        b.barrier_all();
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    fn tiny() -> MstrideParams {
        MstrideParams {
            rows: 8,
            cols: 32,
            strides: (1, 32, 3),
            iters: 2,
            cpus: 4,
        }
    }

    /// Each static site advances by exactly its configured stride.
    #[test]
    fn sites_advance_by_their_tuple_strides() {
        let p = tiny();
        let wl = build(p);
        let site = |pc: u32| -> Vec<u64> {
            wl.trace(0)
                .iter()
                .filter_map(|op| match op {
                    Op::Read { addr, pc: got } if got.as_u32() == pc => Some(addr.as_u64()),
                    Op::Write { addr, pc: got } if got.as_u32() == pc => Some(addr.as_u64()),
                    _ => None,
                })
                .take(16)
                .collect()
        };
        let stride_of = |addrs: &[u64]| addrs[1] - addrs[0];
        assert_eq!(stride_of(&site(0x0010_0000)), p.strides.0 * ELEMENT_BYTES);
        assert_eq!(stride_of(&site(0x0010_0004)), p.strides.1 * ELEMENT_BYTES);
        assert_eq!(stride_of(&site(0x0010_000c)), p.strides.2 * ELEMENT_BYTES);
    }

    #[test]
    fn rows_are_interleaved_across_cpus() {
        let wl = build(tiny());
        for cpu in 0..4 {
            assert!(
                wl.trace(cpu)
                    .iter()
                    .any(|op| matches!(op, Op::Write { .. })),
                "cpu {cpu} owns no rows"
            );
        }
    }

    #[test]
    fn halo_reads_touch_neighbour_output() {
        let wl = build(tiny());
        assert!(wl
            .trace(0)
            .iter()
            .any(|op| matches!(op, Op::Read { pc, .. } if pc.as_u32() == 0x0010_0008)));
    }

    #[test]
    fn deterministic() {
        assert_eq!(build_packed(tiny()), build_packed(tiny()));
    }
}
