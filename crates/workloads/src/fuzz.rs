//! Random contended-trace generation for stress testing and fuzzing.
//!
//! The generator maps a compact *op matrix* — per CPU, a vector of
//! `(kind, value)` byte/short pairs — onto a well-formed [`TraceWorkload`]:
//! locks are balanced (a held lock is released before another acquire and
//! at end of trace) and every lane ends with a common barrier so the run
//! terminates synchronized. Keeping the randomness in the matrix rather
//! than the trace makes shrinking trivial: delta-debugging removes matrix
//! entries and regenerates, and the result is well-formed by construction.
//!
//! Shared by the `coherence_stress` tier-1 tests and the `pfsim-fuzz`
//! binary in `pfsim-check`.

use crate::{Op, TraceWorkload};
use pfsim_mem::{Addr, Pc, SplitMix64};

/// Number of CPU lanes every generated workload has (the paper's machine
/// size; barriers in the simulator expect all nodes to participate).
pub const FUZZ_CPUS: usize = 16;

/// Barrier id appended to every lane so traces end synchronized.
pub const FINAL_BARRIER: u32 = 999;

/// Builds a random 16-CPU workload over a small shared region: reads,
/// writes, computes, locks and barriers, so transactions collide hard.
///
/// `ops_per_cpu` must have at most [`FUZZ_CPUS`] lanes; missing lanes are
/// padded with empty traces (they still join the final barrier), which
/// keeps shrunk matrices valid after whole-CPU removal.
pub fn random_workload(ops_per_cpu: &[Vec<(u8, u16)>], blocks: u64, locks: u64) -> TraceWorkload {
    assert!(ops_per_cpu.len() <= FUZZ_CPUS, "too many CPU lanes");
    assert!(blocks > 0 && locks > 0);
    let region_base = 16 * 4096u64; // page 16: home node 0
    let lock_base = 64 * 4096u64;
    let mut traces: Vec<Vec<Op>> = Vec::with_capacity(FUZZ_CPUS);
    for lane in 0..FUZZ_CPUS {
        let ops: &[(u8, u16)] = ops_per_cpu.get(lane).map_or(&[], Vec::as_slice);
        let mut trace = Vec::new();
        let mut held: Option<Addr> = None;
        for &(kind, value) in ops {
            let addr = Addr::new(region_base + u64::from(value) % blocks * 32);
            let pc = Pc::new(0x400 + u32::from(kind % 7) * 4);
            match kind % 6 {
                0 | 1 => trace.push(Op::Read { addr, pc }),
                2 => trace.push(Op::Write { addr, pc }),
                3 => trace.push(Op::Compute {
                    cycles: u32::from(value % 19) + 1,
                }),
                4 => {
                    // Locks must nest properly: release any held lock
                    // before acquiring another.
                    if let Some(lock) = held.take() {
                        trace.push(Op::Release { lock });
                    }
                    let lock = Addr::new(lock_base + u64::from(value) % locks * 64);
                    trace.push(Op::Acquire { lock });
                    held = Some(lock);
                }
                _ => {
                    if let Some(lock) = held.take() {
                        trace.push(Op::Release { lock });
                    }
                }
            }
        }
        if let Some(lock) = held.take() {
            trace.push(Op::Release { lock });
        }
        // A final barrier so every processor's trace ends synchronized.
        trace.push(Op::Barrier { id: FINAL_BARRIER });
        traces.push(trace);
    }
    TraceWorkload::new("stress", traces)
}

/// Draws a full-size op matrix: [`FUZZ_CPUS`] lanes of 20..120 entries.
pub fn random_ops(rng: &mut SplitMix64) -> Vec<Vec<(u8, u16)>> {
    random_ops_sized(rng, 20, 120)
}

/// Draws an op matrix with per-lane lengths in `min_len..max_len`.
pub fn random_ops_sized(
    rng: &mut SplitMix64,
    min_len: usize,
    max_len: usize,
) -> Vec<Vec<(u8, u16)>> {
    (0..FUZZ_CPUS)
        .map(|_| {
            let len = rng.random_range(min_len..max_len);
            (0..len)
                .map(|_| (rng.random_range(0u8..6), rng.random_range(0u16..512)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_lane_ends_with_the_final_barrier() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let ops = random_ops(&mut rng);
        let wl = random_workload(&ops, 48, 4);
        for cpu in 0..FUZZ_CPUS {
            assert_eq!(
                wl.trace(cpu).last(),
                Some(&Op::Barrier { id: FINAL_BARRIER })
            );
        }
    }

    #[test]
    fn locks_balance_within_each_lane() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let ops = random_ops(&mut rng);
        let wl = random_workload(&ops, 48, 4);
        for cpu in 0..FUZZ_CPUS {
            let mut held: Option<Addr> = None;
            for op in wl.trace(cpu) {
                match *op {
                    Op::Acquire { lock } => {
                        assert!(held.is_none(), "nested acquire on cpu {cpu}");
                        held = Some(lock);
                    }
                    Op::Release { lock } => {
                        assert_eq!(held.take(), Some(lock), "unbalanced release on cpu {cpu}");
                    }
                    _ => {}
                }
            }
            assert!(held.is_none(), "lock still held at end of cpu {cpu}");
        }
    }

    #[test]
    fn short_matrices_are_padded_to_all_lanes() {
        let wl = random_workload(&[vec![(2, 3)]], 8, 2);
        assert_eq!(wl.trace(0).len(), 2); // write + barrier
        for cpu in 1..FUZZ_CPUS {
            assert_eq!(wl.trace(cpu).len(), 1, "cpu {cpu} should only barrier");
        }
    }
}
