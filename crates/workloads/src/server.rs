//! SERVER: irregular, large-footprint, TLB-hostile mixed traffic in the
//! style of a modern request-serving workload.
//!
//! Each request touches a handful of uniformly random blocks in a heap
//! that spans thousands of pages (no two consecutive misses share a page,
//! the TLB-hostile part), scans a short sequential buffer (the only
//! pattern sequential prefetching can cover), consults a small hot
//! metadata set, and updates a lock-protected shared session entry (the
//! coherence traffic). Unlike the scientific codes there are no barriers:
//! processors run free until their request budget is spent. All
//! randomness comes from the in-tree [`SplitMix64`], so the same
//! parameters always produce byte-identical traces.

use pfsim_mem::SplitMix64;

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Size of one heap record in bytes (one cache block).
pub const RECORD_BYTES: u64 = 32;

/// Problem-size parameters for SERVER.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerParams {
    /// Heap records (one block each; the large, cold footprint).
    pub heap_blocks: u64,
    /// Requests served per processor.
    pub requests_per_cpu: u64,
    /// Entries in the shared, lock-protected session table.
    pub sessions: u64,
    /// Records in the hot metadata set.
    pub hot_blocks: u64,
    /// Consecutive blocks scanned per request (the sequential part).
    pub scan_blocks: u64,
    /// Number of processors.
    pub cpus: usize,
    /// Seed for request targets.
    pub seed: u64,
}

impl Default for ServerParams {
    /// A scaled-down size for tests and quick runs.
    fn default() -> Self {
        ServerParams {
            heap_blocks: 1 << 14, // 512 KB over 128 pages
            requests_per_cpu: 500,
            sessions: 64,
            hot_blocks: 16,
            scan_blocks: 4,
            cpus: 16,
            seed: 0x5e17e5,
        }
    }
}

impl ServerParams {
    /// A full-size configuration comparable to the paper's inputs.
    pub fn paper() -> Self {
        ServerParams {
            heap_blocks: 1 << 16, // 2 MB over 512 pages
            requests_per_cpu: 1500,
            sessions: 256,
            hot_blocks: 32,
            scan_blocks: 4,
            cpus: 16,
            seed: 0x5e17e5,
        }
    }

    /// The enlarged data set for trend studies.
    pub fn large() -> Self {
        ServerParams {
            heap_blocks: 1 << 17, // 4 MB over 1024 pages
            requests_per_cpu: 3000,
            sessions: 256,
            hot_blocks: 32,
            scan_blocks: 6,
            cpus: 16,
            seed: 0x5e17e5,
        }
    }
}

/// Builds the SERVER workload.
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn build(params: ServerParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: ServerParams) -> PackedTrace {
    emit(params).finish_packed()
}

fn emit(params: ServerParams) -> TraceBuilder {
    let ServerParams {
        heap_blocks,
        requests_per_cpu,
        sessions,
        hot_blocks,
        scan_blocks,
        cpus,
        seed,
    } = params;
    assert!(
        heap_blocks > 0
            && requests_per_cpu > 0
            && sessions > 0
            && hot_blocks > 0
            && scan_blocks > 0
            && cpus > 0,
        "SERVER needs a heap, requests and processors"
    );

    let mut b = TraceBuilder::new(format!("SERVER-{heap_blocks}b"), cpus);
    let heap = b.alloc("Heap", heap_blocks, RECORD_BYTES);
    let hot = b.alloc("HotMeta", hot_blocks, RECORD_BYTES);
    let table = b.alloc("Sessions", sessions, RECORD_BYTES);
    let locks = b.alloc("SessionLocks", sessions, RECORD_BYTES);

    let pc_heap = b.pc_site(); // random heap lookups
    let pc_hot = b.pc_site(); // hot metadata
    let pc_scan = b.pc_site(); // the sequential scan
    let pc_sess_r = b.pc_site(); // session read
    let pc_sess_w = b.pc_site(); // session update

    let mut rng = SplitMix64::seed_from_u64(seed);
    // Request order round-robins over processors so interleaved draws
    // from one RNG stay deterministic.
    for _req in 0..requests_per_cpu {
        for p in 0..cpus {
            // Pointer-free random lookups across the whole heap: each
            // draw lands on a different page with high probability.
            for _ in 0..3 {
                let r = rng.random_range(0..heap_blocks);
                b.read(p, b.element(heap, RECORD_BYTES, r), pc_heap);
                b.compute(p, 4);
            }

            // The hot set: near-certain cache hits, keeps the miss
            // stream from being purely random.
            let h = rng.random_range(0..hot_blocks);
            b.read(p, b.element(hot, RECORD_BYTES, h), pc_hot);

            // A short sequential scan from a random record: the only
            // part a sequential prefetcher can cover.
            let start = rng.random_range(0..heap_blocks - scan_blocks);
            for s in 0..scan_blocks {
                b.read(p, b.element(heap, RECORD_BYTES, start + s), pc_scan);
                b.compute(p, 2);
            }

            // Update the session entry under its lock; sessions are
            // shared, so the entry block migrates between processors.
            let sess = rng.random_range(0..sessions);
            b.acquire(p, b.element(locks, RECORD_BYTES, sess));
            b.read(p, b.element(table, RECORD_BYTES, sess), pc_sess_r);
            b.compute(p, 6);
            b.write(p, b.element(table, RECORD_BYTES, sess), pc_sess_w);
            b.release(p, b.element(locks, RECORD_BYTES, sess));

            b.compute(p, 12); // request epilogue
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    fn tiny() -> ServerParams {
        ServerParams {
            heap_blocks: 1024,
            requests_per_cpu: 40,
            sessions: 8,
            hot_blocks: 4,
            scan_blocks: 4,
            cpus: 4,
            seed: 9,
        }
    }

    /// Random heap lookups must spread over many pages (the TLB-hostile
    /// property): far more distinct pages than a page-local workload.
    #[test]
    fn heap_lookups_span_many_pages() {
        let wl = build(tiny());
        let pages: std::collections::BTreeSet<u64> = wl
            .trace(0)
            .iter()
            .filter_map(|op| match op {
                Op::Read { addr, pc } if pc.as_u32() == 0x0010_0000 => Some(addr.as_u64() / 4096),
                _ => None,
            })
            .collect();
        assert!(pages.len() > 6, "only {} distinct pages", pages.len());
    }

    #[test]
    fn scans_are_sequential() {
        let wl = build(tiny());
        let scans: Vec<u64> = wl
            .trace(0)
            .iter()
            .filter_map(|op| match op {
                Op::Read { addr, pc } if pc.as_u32() == 0x0010_0008 => Some(addr.as_u64()),
                _ => None,
            })
            .take(4)
            .collect();
        for w in scans.windows(2) {
            assert_eq!(w[1] - w[0], RECORD_BYTES);
        }
    }

    #[test]
    fn session_updates_are_lock_protected() {
        let wl = build(tiny());
        let t = wl.trace(0);
        let acq = t
            .iter()
            .position(|op| matches!(op, Op::Acquire { .. }))
            .unwrap();
        assert!(matches!(t[acq + 1], Op::Read { .. }));
        assert!(matches!(t[acq + 4], Op::Release { .. }));
    }

    #[test]
    fn no_barriers() {
        let wl = build(tiny());
        for cpu in 0..4 {
            assert!(!wl
                .trace(cpu)
                .iter()
                .any(|op| matches!(op, Op::Barrier { .. })));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(build_packed(tiny()), build_packed(tiny()));
    }
}
