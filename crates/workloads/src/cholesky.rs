//! Cholesky: sparse Cholesky factorization (SPLASH).
//!
//! The paper runs Cholesky on the *bcsstk14* structural-engineering matrix,
//! which we do not redistribute; the model substitutes a synthetic
//! symmetric **skyline** matrix with supernodal column structure of
//! comparable shape (see DESIGN.md). What matters for the prefetching
//! study is preserved: factorization proceeds by columns packed
//! contiguously in memory, and each right-looking update streams through a
//! source column that another processor has just written — medium-length
//! stride-1 block sequences (Table 2: 80% of misses in sequences, 95%
//! stride 1, average length ~7).

use pfsim_mem::SplitMix64;

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Problem-size parameters for Cholesky.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CholeskyParams {
    /// Number of matrix columns.
    pub columns: u64,
    /// Minimum column height (nonzeros below the diagonal), in doubles.
    pub min_height: u64,
    /// Maximum column height, in doubles.
    pub max_height: u64,
    /// Supernode width (columns factored and assigned together).
    pub supernode: u64,
    /// How many later columns each column updates (the fill fanout).
    pub fanout: u64,
    /// Number of processors.
    pub cpus: usize,
}

impl Default for CholeskyParams {
    /// A scaled-down matrix for tests and quick runs.
    fn default() -> Self {
        CholeskyParams {
            columns: 600,
            min_height: 12,
            max_height: 44,
            supernode: 4,
            fanout: 6,
            cpus: 16,
        }
    }
}

impl CholeskyParams {
    /// A bcsstk14-scale skyline matrix: 1806 columns and enough nonzeros
    /// (~100 K) that each processor's share of the factor (~50 KB)
    /// overflows a 16 KB SLC, as the real matrix does in §5.3.
    pub fn paper() -> Self {
        CholeskyParams {
            columns: 1806,
            min_height: 24,
            max_height: 80,
            supernode: 4,
            fanout: 6,
            cpus: 16,
        }
    }

    /// The enlarged data set for the §5.4 trend study: more columns *and*
    /// taller columns (longer update sequences).
    pub fn large() -> Self {
        CholeskyParams {
            columns: 3600,
            min_height: 24,
            max_height: 88,
            supernode: 4,
            fanout: 8,
            cpus: 16,
        }
    }
}

/// Builds the Cholesky workload.
///
/// # Panics
///
/// Panics if any dimension parameter is zero or `min_height > max_height`.
pub fn build(params: CholeskyParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: CholeskyParams) -> PackedTrace {
    emit(params).finish_packed()
}

fn emit(params: CholeskyParams) -> TraceBuilder {
    let CholeskyParams {
        columns,
        min_height,
        max_height,
        supernode,
        fanout,
        cpus,
    } = params;
    assert!(columns > 0 && supernode > 0 && cpus > 0);
    assert!(min_height > 0 && min_height <= max_height);

    let mut rng = SplitMix64::seed_from_u64(0x0C0D_EC01);
    // Column heights: skyline profile, deterministic.
    let heights: Vec<u64> = (0..columns)
        .map(|_| rng.random_range(min_height..=max_height))
        .collect();
    let offsets: Vec<u64> = heights
        .iter()
        .scan(0u64, |acc, &h| {
            let off = *acc;
            *acc += h;
            Some(off)
        })
        .collect();
    let total_nnz: u64 = heights.iter().sum();

    let mut b = TraceBuilder::new(format!("Cholesky-{columns}c"), cpus);
    let l = b.alloc("L", total_nnz, 8);
    let elem = |b: &TraceBuilder, col: usize, i: u64| b.element(l, 8, offsets[col] + i);

    let pc_diag = b.pc_site();
    let pc_scale_r = b.pc_site();
    let pc_scale_w = b.pc_site();
    let pc_src = b.pc_site(); // streaming read of the source column
    let pc_dst_r = b.pc_site();
    let pc_dst_w = b.pc_site();

    // Supernodes are assigned to processors round-robin.
    let owner = |col: u64| ((col / supernode) as usize) % cpus;

    for k in 0..columns {
        let ku = k as usize;
        let p = owner(k);
        // cdiv: scale column k by its diagonal.
        b.read(p, elem(&b, ku, 0), pc_diag);
        b.compute(p, 8);
        for i in 1..heights[ku] {
            b.read(p, elem(&b, ku, i), pc_scale_r);
            b.compute(p, 2);
            b.write(p, elem(&b, ku, i), pc_scale_w);
        }

        // cmod: update later columns with column k. The near targets model
        // the dense band; the far targets model sparse fill (a column's
        // nonzero rows reach far down the matrix), which is what makes a
        // destination column be revisited long after its last touch — the
        // source of Cholesky's replacement misses under a finite SLC.
        let far = [
            k + fanout + 1 + (k * 7 + 13) % 97,
            k + fanout + 1 + (k * 13 + 61) % 251,
            k + fanout + 1 + (k * 31 + 7) % 997,
        ];
        let targets = (1..=fanout)
            .map(|step| (k + step, step))
            .chain(far.into_iter().map(|j| (j, fanout)));
        for (j, lag) in targets {
            if j >= columns {
                continue;
            }
            let ju = j as usize;
            let q = owner(j);
            let overlap = heights[ku].saturating_sub(lag).min(heights[ju]);
            for i in 0..overlap {
                b.read(q, elem(&b, ku, i + lag), pc_src);
                b.read(q, elem(&b, ju, i), pc_dst_r);
                b.compute(q, 2);
                b.write(q, elem(&b, ju, i), pc_dst_w);
            }
        }

        // Supernode boundary: synchronize before the next group of columns
        // (the real code uses a task queue; a supernode-granular barrier
        // preserves the producer-consumer ordering at far lower trace
        // cost).
        if (k + 1) % supernode == 0 {
            b.barrier_all();
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn columns_are_packed_contiguously() {
        let wl = build(CholeskyParams {
            columns: 8,
            min_height: 4,
            max_height: 4,
            supernode: 2,
            fanout: 2,
            cpus: 2,
        });
        // With fixed heights of 4, the scale loop of column 0 reads
        // elements 8 bytes apart.
        let reads: Vec<u64> = wl
            .trace(0)
            .iter()
            .filter_map(|op| match op {
                Op::Read { addr, .. } => Some(addr.as_u64()),
                _ => None,
            })
            .take(4)
            .collect();
        for w in reads.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn every_cpu_participates() {
        let wl = build(CholeskyParams::default());
        for cpu in 0..16 {
            assert!(wl.trace(cpu).len() > 100, "cpu {cpu} underused");
        }
    }

    #[test]
    fn updates_cross_processors() {
        // With supernode 1 and fanout 2, column k (owner k%2) updates
        // columns k+1, k+2 — owned by the *other* processor half the time,
        // which is what produces coherence misses on the source column.
        let wl = build(CholeskyParams {
            columns: 10,
            min_height: 8,
            max_height: 8,
            supernode: 1,
            fanout: 2,
            cpus: 2,
        });
        assert!(wl.trace(0).len() > 20);
        assert!(wl.trace(1).len() > 20);
    }

    #[test]
    fn deterministic() {
        let a = build(CholeskyParams::default());
        let b = build(CholeskyParams::default());
        for cpu in 0..16 {
            assert_eq!(a.trace(cpu), b.trace(cpu));
        }
    }

    #[test]
    fn larger_matrix_means_more_work() {
        let small = build(CholeskyParams::default()).total_ops();
        let large = build(CholeskyParams::large()).total_ops();
        assert!(large > 3 * small);
    }
}
