//! Ocean: eddy-current simulation on a 2D grid (Stanford), the paper's
//! large-stride workload.
//!
//! The grid rows are padded to 2080 bytes (260 doubles = 65 blocks, the
//! red/black pair layout of the original code), and the grid is
//! partitioned into square subgrids, one per processor. Under an infinite
//! SLC the steady-state misses are the boundary exchanges:
//!
//! * reading the neighbour's boundary *column* walks down rows — misses 65
//!   blocks apart (the paper's dominant stride, 42% of stride accesses);
//! * reading the neighbour's boundary *row* is contiguous — stride-1
//!   misses (31%);
//! * the first sweep's cold misses stream through each subgrid row —
//!   stride-1 runs bounded by the subgrid width.
//!
//! Column sequences are strip-mined (bands of rows handled by distinct
//! solver loops), which bounds the average sequence length the way the
//! multi-level solver structure does in the original program.

use crate::{PackedTrace, TraceBuilder, TraceWorkload};

/// Default row pitch in doubles (65 blocks of 32 bytes), matching the
/// paper's 128×128 layout.
pub const ROW_DOUBLES: u64 = 260;

/// Problem-size parameters for Ocean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OceanParams {
    /// Interior grid dimension (the paper uses 128×128).
    pub n: u64,
    /// Relaxation iterations to simulate.
    pub iterations: u32,
    /// Rows per strip-mined band of the column-boundary loops.
    pub band: u64,
    /// Row pitch in doubles (the dominant stride in blocks is a quarter of
    /// this). Larger grids use a wider pitch, which is how the paper's
    /// §5.4 expectation of a "longer" dominant stride arises.
    pub row_doubles: u64,
    /// Number of processors (must be a perfect square).
    pub cpus: usize,
}

impl Default for OceanParams {
    /// A scaled-down grid for tests and quick runs.
    fn default() -> Self {
        OceanParams {
            n: 64,
            iterations: 10,
            band: 8,
            row_doubles: ROW_DOUBLES,
            cpus: 16,
        }
    }
}

impl OceanParams {
    /// The paper's input: a 128×128 grid.
    pub fn paper() -> Self {
        OceanParams {
            n: 128,
            iterations: 14,
            band: 8,
            row_doubles: ROW_DOUBLES,
            cpus: 16,
        }
    }

    /// The enlarged data set for the §5.4 trend study: a bigger grid with
    /// a proportionally wider row pitch (130-block dominant stride).
    pub fn large() -> Self {
        OceanParams {
            n: 192,
            iterations: 20,
            band: 8,
            row_doubles: 520,
            cpus: 16,
        }
    }
}

/// Builds the Ocean workload.
///
/// # Panics
///
/// Panics if `cpus` is not a perfect square or the grid does not divide
/// evenly among processors.
pub fn build(params: OceanParams) -> TraceWorkload {
    emit(params).finish()
}

/// Builds the same workload in the packed shared-trace encoding,
/// ready to wrap in an `Arc` and replay across many runs (see
/// [`build`]).
pub fn build_packed(params: OceanParams) -> PackedTrace {
    emit(params).finish_packed()
}

fn emit(params: OceanParams) -> TraceBuilder {
    let OceanParams {
        n,
        iterations,
        band,
        row_doubles,
        cpus,
    } = params;
    assert_eq!(row_doubles % 4, 0, "row pitch must be whole blocks");
    let side = (cpus as f64).sqrt() as u64;
    assert_eq!(
        (side * side) as usize,
        cpus,
        "Ocean requires a square processor grid"
    );
    assert_eq!(n % side, 0, "grid must divide evenly among processors");
    let sub = n / side; // subgrid dimension
    assert!(band > 0 && sub >= band);
    assert!(
        n + 8 <= row_doubles,
        "grid row must fit in the padded pitch"
    );
    assert_eq!(sub % 4, 0, "subgrids must be whole blocks wide");

    let mut b = TraceBuilder::new(format!("Ocean-{n}x{n}"), cpus);
    // Two ping-pong grids plus the stream-function grid.
    let q = [
        b.alloc("q_even", (n + 2) * row_doubles, 8),
        b.alloc("q_odd", (n + 2) * row_doubles, 8),
    ];
    let psi = b.alloc("psi", (n + 2) * row_doubles, 8);
    let sum_lock = b.alloc("SumLock", 1, 32);
    let global_sum = b.alloc("GlobalSum", 1, 32);
    // Per-processor residual cells, deliberately scattered over their own
    // pages (the real code's reduction tree walks pointer-linked
    // per-processor records): reading them is the non-stride component of
    // Ocean's miss mix.
    let errs: Vec<pfsim_mem::Addr> = (0..cpus as u64).map(|_| b.alloc("err", 1, 32)).collect();

    // The interior starts at column 4 of each padded row so processor
    // partitions (multiples of 4 columns = one 32-byte block) fall on
    // block boundaries — the same false-sharing avoidance the SPLASH-2
    // rewrite of Ocean performs with its 4-D arrays. Without it, boundary
    // blocks are write-shared by two owners and the boundary-column miss
    // pattern collapses.
    let at = |b: &TraceBuilder, grid: pfsim_mem::Addr, i: u64, j: u64| {
        b.element(grid, 8, (i + 1) * row_doubles + (j + 4))
    };

    let pc_center = b.pc_site();
    let pc_up = b.pc_site();
    let pc_down = b.pc_site();
    let pc_left_a = b.pc_site(); // column-boundary band loop A
    let pc_left_b = b.pc_site(); // column-boundary band loop B
    let pc_right_a = b.pc_site();
    let pc_right_b = b.pc_site();
    let pc_row_up = b.pc_site(); // row-boundary exchange
    let pc_row_down = b.pc_site();
    let pc_psi = b.pc_site();
    let pc_write = b.pc_site();
    let pc_sum_r = b.pc_site();
    let pc_sum_w = b.pc_site();
    let pc_err_w = b.pc_site();
    let pc_err_r = b.pc_site();

    for iter in 0..iterations {
        let src = q[(iter % 2) as usize];
        let dst = q[((iter + 1) % 2) as usize];
        for p in 0..cpus {
            let px = (p as u64) % side;
            let py = (p as u64) / side;
            let (r0, c0) = (py * sub, px * sub);

            // Column-boundary exchange: read the neighbour's columns just
            // outside our left and right edges, one element per row. The
            // loops are strip-mined into bands with distinct code paths.
            for band_start in (0..sub).step_by(band as usize) {
                let (pc_l, pc_r) = if (band_start / band) % 2 == 0 {
                    (pc_left_a, pc_right_a)
                } else {
                    (pc_left_b, pc_right_b)
                };
                for i in band_start..(band_start + band).min(sub) {
                    if c0 > 0 {
                        b.read(p, at(&b, src, r0 + i, c0 - 1), pc_l);
                    }
                    if c0 + sub < n {
                        b.read(p, at(&b, src, r0 + i, c0 + sub), pc_r);
                    }
                    b.compute(p, 4);
                }
            }

            // Row-boundary exchange: read the neighbour rows just above
            // and below (contiguous doubles).
            for j in 0..sub {
                if r0 > 0 {
                    b.read(p, at(&b, src, r0 - 1, c0 + j), pc_row_up);
                }
                if r0 + sub < n {
                    b.read(p, at(&b, src, r0 + sub, c0 + j), pc_row_down);
                }
                b.compute(p, 2);
            }

            // Interior relaxation sweep over the owned subgrid.
            for i in 0..sub {
                for j in 0..sub {
                    let (r, c) = (r0 + i, c0 + j);
                    b.read(p, at(&b, src, r, c), pc_center);
                    if i > 0 {
                        b.read(p, at(&b, src, r - 1, c), pc_up);
                    }
                    if i + 1 < sub {
                        b.read(p, at(&b, src, r + 1, c), pc_down);
                    }
                    b.read(p, at(&b, psi, r, c), pc_psi);
                    b.compute(p, 4);
                    b.write(p, at(&b, dst, r, c), pc_write);
                }
            }

            // Convergence check: publish the local residual, then combine
            // everyone's (scattered reads — the writers invalidated them
            // last iteration), plus the lock-protected global sum.
            b.write(p, errs[p], pc_err_w);
            b.acquire(p, sum_lock);
            b.read(p, global_sum, pc_sum_r);
            for q in 0..cpus {
                // Pointer-chase order: spatially scattered, not
                // equidistant.
                b.read(p, errs[(p + q * q + iter as usize) % cpus], pc_err_r);
            }
            b.write(p, global_sum, pc_sum_w);
            b.release(p, sum_lock);
        }
        b.barrier_all();
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn row_pitch_is_65_blocks() {
        assert_eq!(ROW_DOUBLES * 8 / 32, 65);
    }

    #[test]
    fn column_boundary_reads_are_one_row_apart() {
        let wl = build(OceanParams {
            n: 16,
            iterations: 1,
            band: 4,
            row_doubles: ROW_DOUBLES,
            cpus: 4,
        });
        // CPU 1 owns columns 8..16 and reads its left-neighbour column:
        // consecutive reads from the band-A loop are ROW_DOUBLES*8 bytes
        // apart.
        let mut prev = None;
        let mut seen = 0;
        for op in wl.trace(1) {
            if let Op::Read { addr, pc } = op {
                if pc.as_u32() == 0x0010_000c {
                    // pc_left_a is the 4th site
                    if let Some(p) = prev {
                        assert_eq!(addr.as_u64() - p, ROW_DOUBLES * 8);
                        seen += 1;
                    }
                    prev = Some(addr.as_u64());
                }
            }
            if seen >= 2 {
                break;
            }
        }
        assert!(seen >= 2, "no column-boundary stride observed");
    }

    #[test]
    fn row_boundary_reads_are_contiguous() {
        let wl = build(OceanParams {
            n: 16,
            iterations: 1,
            band: 4,
            row_doubles: ROW_DOUBLES,
            cpus: 4,
        });
        // CPU 2 owns rows 8..16 and reads the row above (row 7).
        let mut prev = None;
        for op in wl.trace(2) {
            if let Op::Read { addr, pc } = op {
                if pc.as_u32() == 0x0010_001c {
                    // pc_row_up is the 8th site
                    if let Some(p) = prev {
                        assert_eq!(addr.as_u64() - p, 8);
                        return;
                    }
                    prev = Some(addr.as_u64());
                }
            }
        }
        panic!("no row-boundary reads observed");
    }

    #[test]
    fn interior_processors_have_all_four_exchanges() {
        let wl = build(OceanParams::default());
        // With a 4×4 processor grid, cpu 5 is interior: it must read in
        // all four directions and so has more reads than corner cpu 0.
        assert!(wl.trace(5).len() > wl.trace(0).len());
    }

    #[test]
    fn deterministic() {
        let a = build(OceanParams::default());
        let b = build(OceanParams::default());
        for cpu in 0..16 {
            assert_eq!(a.trace(cpu), b.trace(cpu));
        }
    }

    #[test]
    #[should_panic(expected = "square processor grid")]
    fn rejects_non_square_cpu_count() {
        build(OceanParams {
            n: 64,
            iterations: 1,
            band: 8,
            row_doubles: ROW_DOUBLES,
            cpus: 12,
        });
    }
}
