//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose DoS resistance
//! costs ~2× the lookup time of a multiply-based hash — pure waste inside a
//! single-process simulator hashing its own block addresses. This module
//! provides an in-tree `FxHasher` (the multiply-xor construction used by
//! rustc), so no external dependency is needed: the build must resolve
//! offline.
//!
//! Determinism matters as much as speed here: `FxHasher` has **no random
//! state**, so iteration order of an [`FxHashMap`] is stable for a given
//! insertion sequence, run to run and process to process. (The simulator
//! still never iterates hash maps on any result-affecting path; stability is
//! defense in depth.)
//!
//! # Examples
//!
//! ```
//! use pfsim_mem::{BlockAddr, FxHashMap};
//!
//! let mut m: FxHashMap<BlockAddr, u32> = FxHashMap::default();
//! m.insert(BlockAddr::new(7), 1);
//! assert_eq!(m[&BlockAddr::new(7)], 1);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
// pfsim-lint: allow(D001) -- the FxHashMap definition itself wraps std's HashMap
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
// pfsim-lint: allow(D001) -- the FxHashSet definition itself wraps std's HashSet
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Deterministic snapshot of an [`FxHashMap`]: its entries sorted by key.
///
/// Hash-map iteration order must never reach an observable output (lint
/// D003); when a map *must* be walked for output or order-sensitive
/// accumulation, walk this instead.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{sorted_entries, FxHashMap};
///
/// let mut m: FxHashMap<u64, &str> = FxHashMap::default();
/// m.insert(9, "b");
/// m.insert(3, "a");
/// let snap = sorted_entries(&m);
/// assert_eq!(snap, vec![(&3, &"a"), (&9, &"b")]);
/// ```
pub fn sorted_entries<K: Ord, V>(m: &FxHashMap<K, V>) -> Vec<(&K, &V)> {
    let mut v: Vec<(&K, &V)> = m.iter().collect();
    v.sort_by(|a, b| a.0.cmp(b.0));
    v
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-xor hasher: one rotate, one xor and one multiply per
/// word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockAddr;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&BlockAddr::new(42)), hash_of(&BlockAddr::new(42)));
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance claim, just a smoke test that the
        // multiply actually mixes.
        let a = hash_of(&BlockAddr::new(1));
        let b = hash_of(&BlockAddr::new(2));
        assert_ne!(a, b);
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
    }

    #[test]
    fn byte_writes_match_padding_rules() {
        // Different lengths of the same prefix must not collide via padding.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 0]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn set_roundtrip() {
        let mut s: FxHashSet<BlockAddr> = FxHashSet::default();
        s.insert(BlockAddr::new(3));
        assert!(s.contains(&BlockAddr::new(3)));
        assert!(!s.contains(&BlockAddr::new(4)));
    }
}
