//! Block/page geometry of the memory system.

use crate::{Addr, BlockAddr, PageAddr};

/// The granularities of the memory hierarchy: block size and page size.
///
/// Both must be powers of two. [`Geometry::paper`] reproduces Table 1 of the
/// paper: 32-byte blocks (both cache levels) and 4 KB pages.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{Addr, Geometry};
///
/// let g = Geometry::paper();
/// assert_eq!(g.block_bytes(), 32);
/// assert_eq!(g.page_bytes(), 4096);
/// assert_eq!(g.blocks_per_page(), 128);
///
/// let a = Addr::new(4096 + 33);
/// assert_eq!(g.block_of(a).as_u64(), 129);
/// assert_eq!(g.page_of(a).as_u64(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    block_shift: u32,
    page_shift: u32,
}

impl Geometry {
    /// Creates a geometry with the given block and page sizes in bytes.
    ///
    /// # Panics
    ///
    /// Panics if either size is not a power of two, or if a page is not at
    /// least one block.
    pub fn new(block_bytes: u64, page_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two, got {block_bytes}"
        );
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two, got {page_bytes}"
        );
        assert!(
            page_bytes >= block_bytes,
            "a page ({page_bytes} B) must hold at least one block ({block_bytes} B)"
        );
        Geometry {
            block_shift: block_bytes.trailing_zeros(),
            page_shift: page_bytes.trailing_zeros(),
        }
    }

    /// The paper's geometry: 32-byte blocks, 4 KB pages (Table 1).
    pub fn paper() -> Self {
        Geometry::new(32, 4096)
    }

    /// Block size in bytes.
    #[inline]
    pub const fn block_bytes(self) -> u64 {
        1 << self.block_shift
    }

    /// Page size in bytes.
    #[inline]
    pub const fn page_bytes(self) -> u64 {
        1 << self.page_shift
    }

    /// Number of blocks per page.
    #[inline]
    pub const fn blocks_per_page(self) -> u64 {
        1 << (self.page_shift - self.block_shift)
    }

    /// The block containing byte address `addr`.
    #[inline]
    pub const fn block_of(self, addr: Addr) -> BlockAddr {
        BlockAddr::new(addr.as_u64() >> self.block_shift)
    }

    /// The first byte address of `block`.
    #[inline]
    pub const fn block_base(self, block: BlockAddr) -> Addr {
        Addr::new(block.as_u64() << self.block_shift)
    }

    /// The page containing byte address `addr`.
    #[inline]
    pub const fn page_of(self, addr: Addr) -> PageAddr {
        PageAddr::new(addr.as_u64() >> self.page_shift)
    }

    /// The page containing `block`.
    #[inline]
    pub const fn page_of_block(self, block: BlockAddr) -> PageAddr {
        PageAddr::new(block.as_u64() >> (self.page_shift - self.block_shift))
    }

    /// Whether two blocks lie in the same page — the prefetch-legality test:
    /// the paper forbids prefetching across page boundaries.
    #[inline]
    pub fn same_page(self, a: BlockAddr, b: BlockAddr) -> bool {
        self.page_of_block(a) == self.page_of_block(b)
    }

    /// Converts a byte stride to a block stride, rounding toward zero.
    ///
    /// A stride shorter than the block size yields zero: such a sequence
    /// stays inside one block and is what makes sequential prefetching
    /// competitive with stride prefetching ("most strides are shorter than
    /// the block size").
    #[inline]
    pub const fn byte_stride_to_blocks(self, stride: i64) -> i64 {
        stride / (1 << self.block_shift)
    }
}

impl Default for Geometry {
    /// The paper's geometry.
    fn default() -> Self {
        Geometry::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_table1() {
        let g = Geometry::paper();
        assert_eq!(g.block_bytes(), 32);
        assert_eq!(g.page_bytes(), 4096);
        assert_eq!(g.blocks_per_page(), 128);
    }

    #[test]
    fn block_and_page_extraction() {
        let g = Geometry::paper();
        let a = Addr::new(0x2345);
        assert_eq!(g.block_of(a), BlockAddr::new(0x2345 / 32));
        assert_eq!(g.page_of(a), PageAddr::new(2));
        assert_eq!(g.page_of_block(g.block_of(a)), g.page_of(a));
    }

    #[test]
    fn block_base_is_aligned() {
        let g = Geometry::paper();
        for raw in [0u64, 31, 32, 33, 4095, 4096] {
            let base = g.block_base(g.block_of(Addr::new(raw)));
            assert_eq!(base.as_u64() % 32, 0);
            assert!(base.as_u64() <= raw && raw < base.as_u64() + 32);
        }
    }

    #[test]
    fn same_page_detects_boundaries() {
        let g = Geometry::paper();
        let last_in_page0 = BlockAddr::new(127);
        let first_in_page1 = BlockAddr::new(128);
        assert!(g.same_page(BlockAddr::new(0), last_in_page0));
        assert!(!g.same_page(last_in_page0, first_in_page1));
    }

    #[test]
    fn byte_stride_conversion_truncates() {
        let g = Geometry::paper();
        assert_eq!(g.byte_stride_to_blocks(8), 0);
        assert_eq!(g.byte_stride_to_blocks(32), 1);
        assert_eq!(g.byte_stride_to_blocks(672), 21); // Water's molecule stride
        assert_eq!(g.byte_stride_to_blocks(-64), -2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_block() {
        Geometry::new(24, 4096);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_page_smaller_than_block() {
        Geometry::new(64, 32);
    }
}
