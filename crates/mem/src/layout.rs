//! Data-structure layout in the simulated address space.
//!
//! Workload models allocate their shared data structures (matrices,
//! particle arrays, molecule arrays, grids) through [`ArrayLayout`], which
//! hands out page-aligned base addresses from a bump allocator so that
//! different structures never share a page and placement is deterministic —
//! the same property a real parallel allocator running once at program start
//! would give.

use crate::{Addr, Geometry};

/// A deterministic bump allocator for the simulated shared address space,
/// plus helpers for addressing array elements and struct fields.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{ArrayLayout, Geometry};
///
/// let mut layout = ArrayLayout::new(Geometry::paper());
/// // A 200x200 matrix of f64, stored column-major:
/// let a = layout.alloc("A", 200 * 200, 8);
/// let col_base = layout.element(a, 8, 3 * 200); // first element of column 3
/// assert_eq!(col_base.as_u64(), a.as_u64() + 3 * 200 * 8);
/// ```
#[derive(Debug, Clone)]
pub struct ArrayLayout {
    geometry: Geometry,
    next: u64,
    regions: Vec<Region>,
}

/// One named allocation in the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name of the structure (for traces and debugging).
    pub name: &'static str,
    /// First byte of the region.
    pub base: Addr,
    /// Size in bytes.
    pub bytes: u64,
}

impl ArrayLayout {
    /// Creates an allocator that starts at the first page of the address
    /// space.
    pub fn new(geometry: Geometry) -> Self {
        ArrayLayout {
            geometry,
            // Skip page 0 so that "null" addresses never alias real data.
            next: geometry.page_bytes(),
            regions: Vec::new(),
        }
    }

    /// The geometry used for alignment.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Allocates a page-aligned region of `count` elements of
    /// `element_bytes` each and returns its base address.
    ///
    /// # Panics
    ///
    /// Panics if `count * element_bytes` overflows.
    pub fn alloc(&mut self, name: &'static str, count: u64, element_bytes: u64) -> Addr {
        let bytes = count
            .checked_mul(element_bytes)
            .expect("allocation size overflow");
        let base = Addr::new(self.next);
        let page = self.geometry.page_bytes();
        // Round the *end* up to a page so the next region starts on a fresh
        // page, as the paper's page-grained placement assumes.
        self.next += bytes.div_ceil(page).max(1) * page;
        self.regions.push(Region { name, base, bytes });
        base
    }

    /// Address of element `index` in an array of `element_bytes`-sized
    /// elements starting at `base`.
    #[inline]
    pub fn element(&self, base: Addr, element_bytes: u64, index: u64) -> Addr {
        Addr::new(base.as_u64() + index * element_bytes)
    }

    /// Address of byte `field_offset` inside element `index` of a struct
    /// array — how workloads address individual fields of e.g. a particle
    /// or molecule record.
    #[inline]
    pub fn field(&self, base: Addr, element_bytes: u64, index: u64, field_offset: u64) -> Addr {
        debug_assert!(field_offset < element_bytes, "field outside element");
        Addr::new(base.as_u64() + index * element_bytes + field_offset)
    }

    /// All regions allocated so far, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes of address space consumed (including page padding).
    pub fn bytes_used(&self) -> u64 {
        self.next - self.geometry.page_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let g = Geometry::paper();
        let mut l = ArrayLayout::new(g);
        let a = l.alloc("a", 100, 8); // 800 B -> 1 page
        let b = l.alloc("b", 4096, 1); // exactly 1 page
        let c = l.alloc("c", 4097, 1); // 2 pages
        let d = l.alloc("d", 1, 1);
        for base in [a, b, c, d] {
            assert_eq!(base.as_u64() % g.page_bytes(), 0);
        }
        assert_eq!(b.as_u64() - a.as_u64(), 4096);
        assert_eq!(c.as_u64() - b.as_u64(), 4096);
        assert_eq!(d.as_u64() - c.as_u64(), 8192);
    }

    #[test]
    fn zero_sized_allocation_still_consumes_a_page() {
        let mut l = ArrayLayout::new(Geometry::paper());
        let a = l.alloc("a", 0, 8);
        let b = l.alloc("b", 1, 8);
        assert_eq!(b.as_u64() - a.as_u64(), 4096);
    }

    #[test]
    fn page_zero_is_never_allocated() {
        let mut l = ArrayLayout::new(Geometry::paper());
        let a = l.alloc("a", 8, 8);
        assert!(a.as_u64() >= 4096);
    }

    #[test]
    fn element_and_field_addressing() {
        let g = Geometry::paper();
        let mut l = ArrayLayout::new(g);
        let mols = l.alloc("molecules", 288, 672);
        let m7 = l.element(mols, 672, 7);
        assert_eq!(m7.as_u64(), mols.as_u64() + 7 * 672);
        let f = l.field(mols, 672, 7, 24);
        assert_eq!(f.as_u64(), m7.as_u64() + 24);
    }

    #[test]
    fn regions_are_recorded() {
        let mut l = ArrayLayout::new(Geometry::paper());
        l.alloc("x", 10, 4);
        l.alloc("y", 20, 4);
        let names: Vec<_> = l.regions().iter().map(|r| r.name).collect();
        assert_eq!(names, ["x", "y"]);
        assert_eq!(l.bytes_used(), 2 * 4096);
    }
}
