//! Newtypes for the simulator's address spaces.

use std::fmt;

/// A byte address in the simulated shared address space.
///
/// The payload is a full `u64`, but the type is packed to 4-byte
/// alignment: `Addr` rides inside every trace operation
/// (`pfsim_workloads::Op`) next to a 4-byte program counter, and the
/// relaxed alignment is what lets that enum fit in 16 bytes instead of
/// 24. All accessors work by value, so the alignment is invisible to
/// callers.
///
/// # Examples
///
/// ```
/// use pfsim_mem::Addr;
/// let a = Addr::new(0x100);
/// assert_eq!(a.offset(0x20), Addr::new(0x120));
/// assert_eq!(a.offset(-0x10), Addr::new(0xf0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(Rust, packed(4))]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Addr(addr)
    }

    /// The raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The address displaced by a signed byte `delta`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the displacement underflows or overflows
    /// the address space.
    #[inline]
    pub fn offset(self, delta: i64) -> Addr {
        debug_assert!(
            self.0.checked_add_signed(delta).is_some(),
            "address displacement out of range"
        );
        Addr(self.0.wrapping_add_signed(delta))
    }

    /// Signed byte distance from `other` to `self` — the *stride* between
    /// two data addresses as computed by the stride-detection hardware.
    #[inline]
    pub fn stride_from(self, other: Addr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let addr = self.0;
        write!(f, "Addr({addr:#x})")
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let addr = self.0;
        write!(f, "{addr:#x}")
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let addr = self.0;
        fmt::LowerHex::fmt(&addr, f)
    }
}

/// A cache-block number (byte address divided by the block size).
///
/// Coherence, prefetching and the caches all operate at this granularity.
/// Block-number arithmetic is what the prefetch engines use to step along a
/// stream: block *B+1* is the next sequential block.
///
/// # Examples
///
/// ```
/// use pfsim_mem::BlockAddr;
/// let b = BlockAddr::new(10);
/// assert_eq!(b.offset(2), Some(BlockAddr::new(12)));
/// assert_eq!(b.offset(-11), None); // underflow: no such block
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block number.
    #[inline]
    pub const fn new(block: u64) -> Self {
        BlockAddr(block)
    }

    /// The raw block number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The block displaced `delta` blocks away, or `None` on address-space
    /// under/overflow.
    #[inline]
    pub fn offset(self, delta: i64) -> Option<BlockAddr> {
        self.0.checked_add_signed(delta).map(BlockAddr)
    }

    /// Signed distance in blocks from `other` to `self`.
    #[inline]
    pub fn stride_from(self, other: BlockAddr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {:#x}", self.0)
    }
}

/// A virtual page number.
///
/// Pages are the unit of placement (round-robin across nodes) and the hard
/// boundary for prefetching: the paper forbids prefetching across a page
/// boundary so a useless prefetch can never fault.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page number.
    #[inline]
    pub const fn new(page: u64) -> Self {
        PageAddr(page)
    }

    /// The raw page number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({:#x})", self.0)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page {:#x}", self.0)
    }
}

/// Identifier of a processing node (0..15 in the paper's 16-node system).
///
/// # Examples
///
/// ```
/// use pfsim_mem::NodeId;
/// let n = NodeId::new(5);
/// assert_eq!(n.index(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier.
    #[inline]
    pub const fn new(id: u16) -> Self {
        NodeId(id)
    }

    /// The node number as a `usize`, for indexing per-node tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw node number.
    #[inline]
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Node({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}", self.0)
    }
}

/// The instruction address (program counter) of a load instruction.
///
/// I-detection stride prefetching keys its Reference Prediction Table on
/// this value: accesses from the same load site are assumed to belong to the
/// same stride sequence. Workload models assign one stable `Pc` per load
/// site in their inner loops, mirroring how a compiled binary would behave.
///
/// # Examples
///
/// ```
/// use pfsim_mem::Pc;
/// let pc = Pc::new(0x400120);
/// assert_eq!(pc.as_u32(), 0x400120);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u32);

impl Pc {
    /// Creates a program-counter value.
    #[inline]
    pub const fn new(pc: u32) -> Self {
        Pc(pc)
    }

    /// The raw program-counter value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pc({:#x})", self.0)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc {:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_offset_and_stride_are_inverse() {
        let a = Addr::new(0x1000);
        let b = a.offset(0x40);
        assert_eq!(b.stride_from(a), 0x40);
        assert_eq!(a.stride_from(b), -0x40);
    }

    #[test]
    fn negative_addr_offset() {
        assert_eq!(Addr::new(100).offset(-36), Addr::new(64));
    }

    #[test]
    fn block_offset_checks_bounds() {
        assert_eq!(BlockAddr::new(3).offset(-3), Some(BlockAddr::new(0)));
        assert_eq!(BlockAddr::new(3).offset(-4), None);
        assert_eq!(BlockAddr::new(u64::MAX).offset(1), None);
    }

    #[test]
    fn block_stride_is_signed() {
        let a = BlockAddr::new(100);
        let b = BlockAddr::new(79);
        assert_eq!(b.stride_from(a), -21);
        assert_eq!(a.stride_from(b), 21);
    }

    #[test]
    fn node_id_indexing() {
        assert_eq!(NodeId::new(15).index(), 15);
        assert_eq!(NodeId::new(15).as_u16(), 15);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", Addr::new(1)).is_empty());
        assert!(!format!("{:?}", BlockAddr::new(1)).is_empty());
        assert!(!format!("{:?}", PageAddr::new(1)).is_empty());
        assert!(!format!("{:?}", NodeId::new(1)).is_empty());
        assert!(!format!("{:?}", Pc::new(1)).is_empty());
    }
}
