//! Address arithmetic, page placement and reference vocabulary shared by
//! every component of the `pfsim` multiprocessor simulator.
//!
//! The paper's architecture operates on three granularities:
//!
//! * **bytes** — what load instructions address ([`Addr`]);
//! * **blocks** — the 32-byte cache/coherence unit ([`BlockAddr`]);
//! * **pages** — the 4 KB virtual-memory unit ([`PageAddr`]) that bounds
//!   prefetching and determines the home node of a block.
//!
//! [`Geometry`] converts between them and is configurable so experiments can
//! vary block and page sizes; [`Geometry::paper`] gives the configuration of
//! Table 1. [`PagePlacement`] implements the paper's round-robin allocation
//! of pages across nodes "based on the least significant bits of the virtual
//! page number".
//!
//! # Examples
//!
//! ```
//! use pfsim_mem::{Addr, Geometry, PagePlacement};
//!
//! let g = Geometry::paper();
//! let a = Addr::new(0x1234);
//! let block = g.block_of(a);
//! assert_eq!(g.block_base(block), Addr::new(0x1220));
//!
//! let placement = PagePlacement::round_robin(16);
//! let home = placement.home_of(g.page_of_block(block));
//! assert!(home.index() < 16);
//! ```

#![warn(missing_docs)]

mod addr;
mod geometry;
pub mod hash;
mod layout;
mod paged;
mod placement;
mod rng;

pub use addr::{Addr, BlockAddr, NodeId, PageAddr, Pc};
pub use geometry::Geometry;
pub use hash::{sorted_entries, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use layout::ArrayLayout;
pub use paged::PagedMap;
pub use placement::PagePlacement;
pub use rng::{RandValue, SplitMix64};
