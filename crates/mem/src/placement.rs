//! Placement of pages across the nodes of the NUMA machine.

use crate::{NodeId, PageAddr};

/// Assignment of virtual pages to home nodes.
///
/// The paper allocates pages "across nodes in a round-robin fashion based on
/// the least significant bits of the virtual page number"
/// ([`PagePlacement::round_robin`]). A [`PagePlacement::fixed`] variant pins
/// every page to one node, which is useful in unit tests and for modelling
/// centralized structures.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{NodeId, PageAddr, PagePlacement};
///
/// let p = PagePlacement::round_robin(16);
/// assert_eq!(p.home_of(PageAddr::new(0)), NodeId::new(0));
/// assert_eq!(p.home_of(PageAddr::new(17)), NodeId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePlacement {
    /// Page `p` lives on node `p mod nodes`.
    RoundRobin {
        /// Number of nodes in the system.
        nodes: u16,
    },
    /// Every page lives on the same node.
    Fixed {
        /// The home node for all pages.
        node: NodeId,
    },
}

impl PagePlacement {
    /// Round-robin placement over `nodes` nodes, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn round_robin(nodes: u16) -> Self {
        assert!(nodes > 0, "a system needs at least one node");
        PagePlacement::RoundRobin { nodes }
    }

    /// All pages homed on `node`.
    pub fn fixed(node: NodeId) -> Self {
        PagePlacement::Fixed { node }
    }

    /// The home node of `page`.
    #[inline]
    pub fn home_of(self, page: PageAddr) -> NodeId {
        match self {
            PagePlacement::RoundRobin { nodes } => {
                // This sits on the miss path (every coherence request routes
                // through it); node counts are powers of two in practice, so
                // take the mask instead of a 64-bit division when possible.
                let n = u64::from(nodes);
                let home = if n.is_power_of_two() {
                    page.as_u64() & (n - 1)
                } else {
                    page.as_u64() % n
                };
                NodeId::new(home as u16)
            }
            PagePlacement::Fixed { node } => node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_through_nodes() {
        let p = PagePlacement::round_robin(4);
        let homes: Vec<_> = (0..8)
            .map(|i| p.home_of(PageAddr::new(i)).index())
            .collect();
        assert_eq!(homes, [0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn fixed_pins_everything() {
        let p = PagePlacement::fixed(NodeId::new(3));
        for i in [0u64, 1, 99, 1 << 40] {
            assert_eq!(p.home_of(PageAddr::new(i)), NodeId::new(3));
        }
    }

    #[test]
    fn round_robin_distributes_evenly() {
        let p = PagePlacement::round_robin(16);
        let mut counts = [0u32; 16];
        for i in 0..1600 {
            counts[p.home_of(PageAddr::new(i)).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        PagePlacement::round_robin(0);
    }
}
