//! A dense two-level map for block-indexed simulator state.

/// Entries per chunk. 64 keeps a chunk of small values inside one or two
/// cache lines, so neighbouring blocks — which the workloads touch together
/// — share lines instead of scattering across hash buckets.
const CHUNK: usize = 64;
const CHUNK_SHIFT: u32 = CHUNK.trailing_zeros();
const CHUNK_MASK: u64 = CHUNK as u64 - 1;

/// A map from small dense `u64` keys to values, stored as a two-level
/// array: a vector of lazily allocated fixed-size chunks.
///
/// The simulator keys per-block state (cache lines, directory entries,
/// miss-classification records) by block index. Workload address spaces are
/// allocated densely from the bottom ([`crate::ArrayLayout`] starts at page
/// 1 and packs regions), so a paged array probes in two dependent loads
/// with no hashing, and consecutive blocks land in the same chunk — far
/// friendlier to the host cache than a hash map when the guest has spatial
/// locality. Memory is `O(max_key)` in pointer-table space (8 bytes per
/// [`CHUNK`] keys) plus one chunk per touched 64-key neighbourhood.
///
/// Not a general-purpose map: keys far apart (sparse, e.g. ≥ 2³²) grow the
/// pointer table proportionally. All simulator block indices are dense.
///
/// # Examples
///
/// ```
/// use pfsim_mem::PagedMap;
///
/// let mut m: PagedMap<u32> = PagedMap::new();
/// assert_eq!(m.insert(5, 10), None);
/// assert_eq!(m.insert(5, 11), Some(10));
/// assert_eq!(m.get(5), Some(&11));
/// assert_eq!(m.remove(5), Some(11));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PagedMap<V> {
    chunks: Vec<Option<Box<[Option<V>; CHUNK]>>>,
    len: usize,
}

impl<V> PagedMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PagedMap {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn split(key: u64) -> (usize, usize) {
        ((key >> CHUNK_SHIFT) as usize, (key & CHUNK_MASK) as usize)
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let (c, i) = Self::split(key);
        self.chunks.get(c)?.as_ref()?[i].as_ref()
    }

    /// Mutable access to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let (c, i) = Self::split(key);
        self.chunks.get_mut(c)?.as_mut()?[i].as_mut()
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// The slot for `key`, allocating its chunk if needed.
    fn slot_mut(&mut self, key: u64) -> &mut Option<V> {
        let (c, i) = Self::split(key);
        if c >= self.chunks.len() {
            self.chunks.resize_with(c + 1, || None);
        }
        let chunk = self.chunks[c].get_or_insert_with(|| Box::new([(); CHUNK].map(|()| None)));
        &mut chunk[i]
    }

    /// Inserts `value` for `key`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let slot = self.slot_mut(key);
        let old = slot.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value for `key`.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let (c, i) = Self::split(key);
        let old = self.chunks.get_mut(c)?.as_mut()?[i].take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Mutable access to the value for `key`, inserting `default()` first
    /// if absent.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        let (c, i) = Self::split(key);
        if c >= self.chunks.len() {
            self.chunks.resize_with(c + 1, || None);
        }
        let chunk = self.chunks[c].get_or_insert_with(|| Box::new([(); CHUNK].map(|()| None)));
        let slot = &mut chunk[i];
        if slot.is_none() {
            self.len += 1;
            *slot = Some(default());
        }
        slot.as_mut().expect("just filled")
    }

    /// Iterates `(key, &value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.chunks.iter().enumerate().flat_map(|(c, chunk)| {
            chunk.iter().flat_map(move |chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .filter_map(move |(i, v)| Some(((c << CHUNK_SHIFT | i) as u64, v.as_ref()?)))
            })
        })
    }
}

impl<V> Default for PagedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = PagedMap::new();
        assert_eq!(m.get(3), None);
        assert_eq!(m.insert(3, "a"), None);
        assert_eq!(m.insert(3, "b"), Some("a"));
        assert_eq!(m.get(3), Some(&"b"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(3), Some("b"));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn keys_crossing_chunk_boundaries() {
        let mut m = PagedMap::new();
        for k in [0u64, 63, 64, 65, 4095, 4096, 100_000] {
            m.insert(k, k * 2);
        }
        for k in [0u64, 63, 64, 65, 4095, 4096, 100_000] {
            assert_eq!(m.get(k), Some(&(k * 2)));
        }
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(99_999), None);
        assert_eq!(m.len(), 7);
    }

    #[test]
    fn get_or_insert_with_counts_len_once() {
        let mut m = PagedMap::new();
        *m.get_or_insert_with(9, || 1) += 5;
        *m.get_or_insert_with(9, || 1) += 5;
        assert_eq!(m.get(9), Some(&11));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iter_is_ascending_and_complete() {
        let mut m = PagedMap::new();
        for k in [500u64, 2, 65, 64, 1000] {
            m.insert(k, ());
        }
        let keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, [2, 64, 65, 500, 1000]);
    }

    /// Agrees with a reference hash map over a random workload.
    #[test]
    fn matches_hashmap_reference() {
        let mut rng = crate::SplitMix64::seed_from_u64(0xda7a);
        let mut paged: PagedMap<u64> = PagedMap::new();
        let mut reference = std::collections::HashMap::new();
        for _ in 0..10_000 {
            let key = rng.random_range(0u64..2000);
            match rng.random_range(0u64..3) {
                0 => {
                    assert_eq!(paged.insert(key, key), reference.insert(key, key));
                }
                1 => {
                    assert_eq!(paged.remove(key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(paged.get(key), reference.get(&key));
                }
            }
            assert_eq!(paged.len(), reference.len());
        }
        let mut all: Vec<_> = paged.iter().map(|(k, v)| (k, *v)).collect();
        let mut want: Vec<_> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        all.sort_unstable();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
