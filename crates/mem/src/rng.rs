//! A small deterministic PRNG (SplitMix64) for workload generation and
//! randomized tests.
//!
//! The simulator's methodology requires bit-for-bit reproducible runs, and
//! the build must resolve with no network access, so instead of an external
//! `rand` dependency the repository carries this 20-line generator. SplitMix64
//! (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number Generators*,
//! OOPSLA 2014) passes BigCrush, is seedable from a single `u64`, and has no
//! state beyond one counter — every sequence is a pure function of the seed,
//! which is exactly the reproducibility contract the workloads document.
//!
//! # Examples
//!
//! ```
//! use pfsim_mem::SplitMix64;
//!
//! let mut a = SplitMix64::seed_from_u64(42);
//! let mut b = SplitMix64::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let d = a.random_range(10u64..20);
//! assert!((10..20).contains(&d));
//! ```

/// A SplitMix64 pseudorandom number generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value below `n` (Lemire's multiply-shift
    /// reduction without the rejection step; the bias is < 2⁻⁶⁴·n, far below
    /// anything a workload generator can observe).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniformly distributed value in `range`, mirroring the call shape of
    /// `rand::Rng::random_range` so workload code reads the same.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: RandValue,
        R: std::ops::RangeBounds<T>,
    {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.successor(),
            Bound::Unbounded => T::MIN_VALUE,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.predecessor(),
            Bound::Unbounded => T::MAX_VALUE,
        };
        let span = hi
            .checked_span_from(lo)
            .expect("empty range")
            .checked_add(1);
        match span {
            Some(width) => lo.offset_by(self.below(width)),
            // Full domain: every bit pattern is a valid value.
            None => T::from_u64(self.next_u64()),
        }
    }

    /// A random boolean.
    #[inline]
    pub fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Integer types [`SplitMix64::random_range`] can sample.
pub trait RandValue: Copy {
    /// Smallest value of the type.
    const MIN_VALUE: Self;
    /// Largest value of the type.
    const MAX_VALUE: Self;
    /// `self + 1`; saturates at the type maximum (only reached from bounds
    /// that would make the range empty, which then panics in the caller).
    fn successor(self) -> Self;
    /// `self - 1`; saturates at the type minimum.
    fn predecessor(self) -> Self;
    /// `self - lo` as an unsigned width, or `None` if `self < lo`.
    fn checked_span_from(self, lo: Self) -> Option<u64>;
    /// `self + delta`, where `delta` is within the sampled span.
    fn offset_by(self, delta: u64) -> Self;
    /// Reinterprets 64 random bits as a value (full-domain ranges only).
    fn from_u64(bits: u64) -> Self;
}

macro_rules! impl_rand_unsigned {
    ($($t:ty),*) => {$(
        impl RandValue for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            #[inline]
            fn successor(self) -> Self { self.saturating_add(1) }
            #[inline]
            fn predecessor(self) -> Self { self.saturating_sub(1) }
            #[inline]
            fn checked_span_from(self, lo: Self) -> Option<u64> {
                if self < lo { None } else { Some((self - lo) as u64) }
            }
            #[inline]
            fn offset_by(self, delta: u64) -> Self { self + delta as $t }
            #[inline]
            fn from_u64(bits: u64) -> Self { bits as $t }
        }
    )*};
}

macro_rules! impl_rand_signed {
    ($($t:ty),*) => {$(
        impl RandValue for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            #[inline]
            fn successor(self) -> Self { self.saturating_add(1) }
            #[inline]
            fn predecessor(self) -> Self { self.saturating_sub(1) }
            #[inline]
            fn checked_span_from(self, lo: Self) -> Option<u64> {
                if self < lo { None } else { Some(self.wrapping_sub(lo) as u64) }
            }
            #[inline]
            fn offset_by(self, delta: u64) -> Self {
                self.wrapping_add(delta as $t)
            }
            #[inline]
            fn from_u64(bits: u64) -> Self { bits as $t }
        }
    )*};
}

impl_rand_unsigned!(u8, u16, u32, u64, usize);
impl_rand_signed!(i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference values from the SplitMix64 description (seed 1234567).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = r.random_range(0u32..1);
            assert_eq!(z, 0);
            let w = r.random_range(3usize..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn below_covers_small_domains() {
        let mut r = SplitMix64::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SplitMix64::seed_from_u64(0);
        #[allow(clippy::reversed_empty_ranges)]
        let _ = r.random_range(5u64..5);
    }

    #[test]
    fn signed_ranges_are_roughly_uniform() {
        let mut r = SplitMix64::seed_from_u64(31);
        let mut counts = [0u32; 11];
        for _ in 0..11_000 {
            let v = r.random_range(-5i64..=5);
            counts[(v + 5) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((600..1400).contains(&c), "bucket {i} count {c}");
        }
    }
}
