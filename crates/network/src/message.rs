//! Message sizing.

/// The kinds of messages the coherence protocol and synchronization put on
/// the network, with their sizes in 32-bit flits.
///
/// Sizing follows the paper's flit width (32 bits): a control message is a
/// 64-bit header (command, addresses, source) = 2 flits; a data message
/// adds the 32-byte block = 8 more flits.
///
/// # Examples
///
/// ```
/// use pfsim_network::MessageKind;
///
/// assert_eq!(MessageKind::Control.flits(), 2);
/// assert_eq!(MessageKind::Data.flits(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Requests, invalidations, acknowledgements, lock traffic: header only.
    Control,
    /// Replies and writebacks carrying one 32-byte block.
    Data,
}

impl MessageKind {
    /// Message length in 32-bit flits for the paper's 32-byte blocks.
    pub const fn flits(self) -> u64 {
        self.flits_for(32)
    }

    /// Message length in 32-bit flits for a given coherence block size
    /// (data messages scale with the payload; the block-size ablation
    /// depends on this).
    pub const fn flits_for(self, block_bytes: u64) -> u64 {
        match self {
            MessageKind::Control => 2,
            MessageKind::Data => 2 + block_bytes.div_ceil(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_message_carries_a_block() {
        // 8 flits of payload at 4 bytes per flit = one 32-byte block.
        assert_eq!(
            (MessageKind::Data.flits() - MessageKind::Control.flits()) * 4,
            32
        );
    }
}
