//! The wormhole-routed mesh.

use pfsim_engine::{Cycle, FifoServer};
use pfsim_mem::NodeId;

/// Mesh dimensions and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Nodes per row.
    pub width: u16,
    /// Nodes per column.
    pub height: u16,
    /// Router fall-through latency in network cycles (pclocks).
    pub fall_through: u64,
}

impl MeshConfig {
    /// The paper's network: a 4×4 mesh with a 3-cycle fall-through.
    pub fn paper() -> Self {
        MeshConfig::dims(4, 4)
    }

    /// A `width`×`height` mesh with the paper's router timing (scaling
    /// study; the paper itself stops at 4×4).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn dims(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        MeshConfig {
            width,
            height,
            fall_through: 3,
        }
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> u16 {
        self.width * self.height
    }

    /// The conservative cross-node lookahead in pclocks: the minimum
    /// latency any message needs to travel between two *distinct* nodes.
    /// A remote message crosses at least one link (one router
    /// fall-through) and then streams at least `min_flits` flits into the
    /// destination, so no send issued at time `t` can be delivered at
    /// another node before `t + lookahead`. This is the safe window width
    /// for conservative parallel simulation: events less than a lookahead
    /// apart on different nodes cannot influence each other through the
    /// network. Node-local transfers bypass the mesh and have zero
    /// latency, which is why shards must always contain whole nodes.
    pub fn lookahead(&self, min_flits: u64) -> u64 {
        self.fall_through + min_flits.max(1)
    }
}

/// Traffic statistics accumulated by the mesh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages injected (excluding node-local transfers, which bypass the
    /// network).
    pub messages: u64,
    /// Flits injected, summed over messages (each flit crosses every hop of
    /// its path).
    pub flits: u64,
    /// Total flit-hops: flits × hops, the bandwidth actually consumed.
    pub flit_hops: u64,
    /// Total queuing delay suffered at links, in pclocks (the contention
    /// signal).
    pub queuing_cycles: u64,
}

/// Direction of a unidirectional mesh link leaving a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

impl Dir {
    fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

/// The 4×4 wormhole mesh (see the [crate documentation](crate) for the
/// latency model).
///
/// # Examples
///
/// ```
/// use pfsim_engine::Cycle;
/// use pfsim_mem::NodeId;
/// use pfsim_network::{Mesh, MeshConfig};
///
/// let mut mesh = Mesh::new(MeshConfig::paper());
/// // Two same-time messages over the same first link: the second queues.
/// let a = mesh.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 10);
/// let b = mesh.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 10);
/// assert_eq!(a.as_u64(), 3 + 10);
/// assert_eq!(b.as_u64(), 10 + 3 + 10); // waited for 10 flits to drain
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    config: MeshConfig,
    /// One `FifoServer` per (router, direction).
    links: Vec<FifoServer>,
    /// Per-node loopback ordering point: node-internal transfers are free
    /// but must not overtake earlier node-internal transfers, or the
    /// in-order point-to-point delivery the coherence protocol relies on
    /// would break when a node is its own home.
    loopback: Vec<Cycle>,
    /// Flattened dimension-ordered routes: the link indices for the route
    /// from `a` to `b` are `route_links[route_offsets[a*nodes+b]..
    /// route_offsets[a*nodes+b+1]]`. Routes are static, so `send` walks a
    /// precomputed link list instead of re-deriving coordinates per hop.
    route_offsets: Vec<u32>,
    route_links: Vec<u32>,
    stats: NetStats,
}

impl Mesh {
    /// Creates an idle mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(config: MeshConfig) -> Self {
        assert!(
            config.width > 0 && config.height > 0,
            "mesh dimensions must be nonzero"
        );
        let nodes = config.nodes() as usize;
        let mut route_offsets = Vec::with_capacity(nodes * nodes + 1);
        let mut route_links = Vec::new();
        route_offsets.push(0u32);
        for from in 0..nodes as u16 {
            for to in 0..nodes as u16 {
                let (mut x, mut y) = (from % config.width, from / config.width);
                let (tx, ty) = (to % config.width, to / config.width);
                while (x, y) != (tx, ty) {
                    let (dir, nx, ny) = if x < tx {
                        (Dir::East, x + 1, y)
                    } else if x > tx {
                        (Dir::West, x - 1, y)
                    } else if y < ty {
                        (Dir::South, x, y + 1)
                    } else {
                        (Dir::North, x, y - 1)
                    };
                    let node = u32::from(y * config.width + x);
                    route_links.push(node * 4 + dir.index() as u32);
                    x = nx;
                    y = ny;
                }
                route_offsets.push(route_links.len() as u32);
            }
        }
        Mesh {
            config,
            links: vec![FifoServer::new(); nodes * 4],
            loopback: vec![Cycle::ZERO; nodes],
            route_offsets,
            route_links,
            stats: NetStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> MeshConfig {
        self.config
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Channel-utilization summary over every unidirectional link:
    /// `(links, busy_total, busy_max)` where `busy_total` sums each
    /// link's occupied pclocks and `busy_max` is the busiest single
    /// link (the hot-spot signal). Observability tap; links that cannot
    /// exist (mesh edges) are never busy and only dilute the mean, so
    /// all `4·nodes` slots are counted uniformly.
    pub fn link_utilization(&self) -> (usize, u64, u64) {
        let busy_total = self.links.iter().map(|l| l.busy_cycles()).sum();
        let busy_max = self
            .links
            .iter()
            .map(|l| l.busy_cycles())
            .max()
            .unwrap_or(0);
        (self.links.len(), busy_total, busy_max)
    }

    fn coords(&self, node: NodeId) -> (u16, u16) {
        let i = node.as_u16();
        (i % self.config.width, i / self.config.width)
    }

    /// Number of hops on the dimension-ordered route from `from` to `to`.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u64 {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        u64::from(fx.abs_diff(tx)) + u64::from(fy.abs_diff(ty))
    }

    /// Injects a message of `flits` flits at time `now` and returns its
    /// delivery time at `to`, reserving link bandwidth along the
    /// dimension-ordered route.
    ///
    /// A message to the local node is delivered immediately (node-internal
    /// transfers do not use the network).
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero or either node is outside the mesh.
    pub fn send(&mut self, now: Cycle, from: NodeId, to: NodeId, flits: u64) -> Cycle {
        assert!(flits > 0, "a message needs at least one flit");
        assert!(
            from.as_u16() < self.config.nodes() && to.as_u16() < self.config.nodes(),
            "node outside the mesh"
        );
        if from == to {
            // Node-internal transfer: no network latency, but deliveries
            // stay in send order (see the `loopback` field).
            let at = now.max(self.loopback[from.index()]);
            self.loopback[from.index()] = at;
            return at;
        }

        let fall_through = self.config.fall_through;
        let r = from.index() * self.config.nodes() as usize + to.index();
        let route =
            &self.route_links[self.route_offsets[r] as usize..self.route_offsets[r + 1] as usize];
        let mut head = now;

        for &link in route {
            let (start, _done) = self.links[link as usize].serve_timed(head, flits);
            self.stats.queuing_cycles += start - head;
            // The head flit reaches the next router after the fall-through;
            // the link stays busy while the body streams behind it.
            head = start + fall_through;
        }

        self.stats.messages += 1;
        self.stats.flits += flits;
        self.stats.flit_hops += flits * route.len() as u64;
        // The tail arrives `flits` cycles after the head starts draining
        // into the destination.
        head + flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::SplitMix64;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig::paper())
    }

    #[test]
    fn local_delivery_is_free() {
        let mut m = mesh();
        assert_eq!(
            m.send(Cycle::new(5), NodeId::new(3), NodeId::new(3), 10),
            Cycle::new(5)
        );
        assert_eq!(m.stats().messages, 0);
    }

    #[test]
    fn local_deliveries_never_reorder() {
        // A message "sent" for a future time (e.g. after a memory read)
        // must not be overtaken by a later-sent local message with an
        // earlier nominal time.
        let mut m = mesh();
        let first = m.send(Cycle::new(55), NodeId::new(0), NodeId::new(0), 10);
        let second = m.send(Cycle::new(47), NodeId::new(0), NodeId::new(0), 2);
        assert_eq!(first, Cycle::new(55));
        assert_eq!(second, Cycle::new(55), "local send order must be preserved");
        // Other nodes' loopbacks are independent.
        assert_eq!(
            m.send(Cycle::new(1), NodeId::new(2), NodeId::new(2), 2),
            Cycle::new(1)
        );
    }

    #[test]
    fn uncontended_latency_is_hops_times_fallthrough_plus_flits() {
        let mut m = mesh();
        // Node 0 (0,0) to node 5 (1,1): 2 hops.
        let t = m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(5), 10);
        assert_eq!(t.as_u64(), 2 * 3 + 10);
        // Corner to corner: 6 hops (fresh mesh so the first message's link
        // reservations do not interfere).
        let mut m = mesh();
        let t = m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(15), 2);
        assert_eq!(t.as_u64(), 6 * 3 + 2);
    }

    #[test]
    fn lookahead_lower_bounds_every_remote_delivery() {
        let cfg = MeshConfig::paper();
        let mut m = Mesh::new(cfg);
        let la = cfg.lookahead(1);
        assert_eq!(la, 4, "paper mesh: 3-cycle fall-through + 1 flit");
        for from in 0..16u16 {
            for to in 0..16u16 {
                if from == to {
                    continue;
                }
                let t = m.send(Cycle::new(100), NodeId::new(from), NodeId::new(to), 1);
                assert!(t.as_u64() >= 100 + la, "{from}->{to} beat the lookahead");
            }
        }
        // Degenerate flit count still yields a nonzero horizon.
        assert!(cfg.lookahead(0) > cfg.fall_through);
    }

    #[test]
    fn xy_routing_hop_counts() {
        let m = mesh();
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(3)), 3);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(12)), 3);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(15)), 6);
        assert_eq!(m.hops(NodeId::new(9), NodeId::new(6)), 2);
        assert_eq!(m.hops(NodeId::new(7), NodeId::new(7)), 0);
    }

    #[test]
    fn shared_link_serializes_messages() {
        let mut m = mesh();
        let a = m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 8);
        let b = m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 8);
        assert_eq!(a.as_u64(), 3 + 8);
        assert_eq!(b.as_u64(), 8 + 3 + 8);
        assert_eq!(m.stats().queuing_cycles, 8);
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut m = mesh();
        let a = m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 8);
        let b = m.send(Cycle::ZERO, NodeId::new(4), NodeId::new(5), 8);
        assert_eq!(a, b);
        assert_eq!(m.stats().queuing_cycles, 0);
    }

    #[test]
    fn opposite_directions_use_separate_links() {
        let mut m = mesh();
        let a = m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 8);
        let b = m.send(Cycle::ZERO, NodeId::new(1), NodeId::new(0), 8);
        assert_eq!(a, b, "east and west links are independent");
    }

    #[test]
    fn stats_accumulate_flit_hops() {
        let mut m = mesh();
        m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(15), 10); // 6 hops
        m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 2); // 1 hop
        let s = m.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.flits, 12);
        assert_eq!(s.flit_hops, 62);
    }

    #[test]
    fn wormhole_pipelining_beats_store_and_forward() {
        let mut m = mesh();
        // 6 hops with a 10-flit message: wormhole = 6*3 + 10 = 28, while
        // store-and-forward would be 6*(3+10) = 78.
        let t = m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(15), 10);
        assert_eq!(t.as_u64(), 28);
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn rejects_out_of_range_nodes() {
        let mut m = mesh();
        m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(16), 2);
    }

    /// Delivery time always ≥ the uncontended wormhole latency, and
    /// messages on the same route in time order deliver in order (seeded
    /// cases).
    #[test]
    fn latency_bounds_and_fifo() {
        let mut rng = SplitMix64::seed_from_u64(0x3e54);
        for _case in 0..64 {
            let len = rng.random_range(1usize..60);
            let pairs: Vec<(u16, u16, u64)> = (0..len)
                .map(|_| {
                    (
                        rng.random_range(0u16..16),
                        rng.random_range(0u16..16),
                        rng.random_range(1u64..12),
                    )
                })
                .collect();
            let mut m = mesh();
            let mut now = Cycle::ZERO;
            let mut last_delivery: std::collections::HashMap<(u16, u16), Cycle> =
                std::collections::HashMap::new();
            for (from, to, flits) in pairs {
                if from == to {
                    continue;
                }
                let t = m.send(now, NodeId::new(from), NodeId::new(to), flits);
                let min = m.hops(NodeId::new(from), NodeId::new(to)) * 3 + flits;
                assert!(t.as_u64() >= now.as_u64() + min);
                if let Some(&prev) = last_delivery.get(&(from, to)) {
                    assert!(t >= prev, "same-route messages reordered");
                }
                last_delivery.insert((from, to), t);
                now += 1; // sends occur in nondecreasing time order
            }
        }
    }
}
