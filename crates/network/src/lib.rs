//! The interconnection network of the baseline architecture: a single
//! 4-by-4 mesh, synchronously clocked at 100 MHz, with wormhole routing, a
//! flit size of 32 bits and a node fall-through latency of three network
//! cycles. Contention is modelled on every link.
//!
//! ## Modelling approach
//!
//! Messages are routed dimension-ordered (X first, then Y). Each
//! unidirectional link is a FIFO resource that a message of *F* flits
//! occupies for *F* network cycles; the head flit advances to the next
//! router after the 3-cycle fall-through. With the network clock equal to
//! the processor clock (both 100 MHz), the uncontended latency of a message
//! over *h* hops is `h·3 + F` pclocks — the classic wormhole pipelining
//! formula — and queuing delays appear whenever links are busy, because a
//! later message must wait for each link to drain.
//!
//! This reproduces what the paper's evaluation needs from the network —
//! latency that scales with distance and message size, and contention that
//! grows with traffic (the mechanism that makes useless prefetches costly)
//! — without simulating per-flit flow control. Because the simulator's
//! event loop issues sends in nondecreasing time order, link reservations
//! are FIFO and the model is deterministic.
//!
//! # Examples
//!
//! ```
//! use pfsim_engine::Cycle;
//! use pfsim_mem::NodeId;
//! use pfsim_network::{Mesh, MeshConfig};
//!
//! let mut mesh = Mesh::new(MeshConfig::paper());
//! // A 2-flit control message from corner to corner (6 hops):
//! let arrival = mesh.send(Cycle::ZERO, NodeId::new(0), NodeId::new(15), 2);
//! assert_eq!(arrival.as_u64(), 6 * 3 + 2);
//! ```

#![warn(missing_docs)]

mod mesh;
mod message;

pub use mesh::{Mesh, MeshConfig, NetStats};
pub use message::MessageKind;
