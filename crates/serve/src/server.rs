//! The experiment service: a bounded worker pool around the
//! [`Runner`](pfsim_bench::Runner), fronted by the HTTP API and backed
//! by the manifest-hash result cache.
//!
//! Concurrency model: one accept loop (non-blocking, polling the drain
//! flag), one short-lived handler thread per connection, and a fixed
//! pool of worker threads that pull job ids from a bounded queue under
//! a single mutex. The simulator itself stays single-threaded per cell
//! (or uses its own deterministic sharded kernel); nothing here can
//! perturb simulated time — the service only decides *whether* a cell
//! needs simulating at all.
//!
//! Caching happens at two levels. Each cell's result document is cached
//! under a key spelling out app, size, warmup, the fully-resolved
//! configuration (`Debug` form) and the producing build — everything
//! the simulation outcome depends on, and deliberately *not* the worker
//! thread count (the sharded kernel is bit-identical across thread
//! counts). A whole manifest is additionally cached by (spec, build),
//! and a full hit replays the stored bytes verbatim — so re-submitting
//! an identical spec returns a byte-identical manifest even though
//! manifests embed wall-clock fields.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pfsim_analysis::Json;
use pfsim_bench::manifest::{
    self, assemble_manifest, cell_json, git_describe, trace_json, variant_json,
};
use pfsim_bench::spec::wire::WireSpec;
use pfsim_bench::spec::Variant;
use pfsim_bench::{ExperimentSpec, Manifest, Runner};
use pfsim_engine::metrics::{CounterId, HistogramId, MetricsSnapshot, Registry};
use pfsim_workloads::App;

use crate::cache::Cache;
use crate::http::{self, Request};
use crate::job::{parse_job_id, Job, JobState};

/// How a server instance is configured (the binary fills this from
/// flags; tests construct it directly).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Worker pool size.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond this
    /// are rejected with 429.
    pub queue_depth: usize,
    /// Default per-job wall-clock budget when the spec names none.
    pub default_timeout_secs: Option<u64>,
    /// Where manifests land and the cache lives.
    pub results_dir: PathBuf,
    /// Cap on per-simulation kernel threads (specs asking for more are
    /// clamped; results are bit-identical either way).
    pub max_threads: usize,
    /// Artificial pause before each cell, for exercising cancellation
    /// and backpressure in tests (`PFSIM_SERVE_CELL_DELAY_MS`).
    pub cell_delay_ms: u64,
    /// External drain flag (the binary's SIGTERM handler); polled by
    /// the accept loop alongside `/shutdown`.
    pub external_drain: Option<&'static AtomicBool>,
    /// Suppress per-job log lines.
    pub quiet: bool,
}

impl ServeConfig {
    /// Defaults for serving out of `results_dir`.
    pub fn new(results_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            port: 0,
            workers: 2,
            queue_depth: 8,
            default_timeout_secs: None,
            results_dir: results_dir.into(),
            max_threads: 1,
            cell_delay_ms: 0,
            external_drain: None,
            quiet: false,
        }
    }
}

/// The service metric ids, registered once against the PR-3 registry so
/// `/status` can expose a snapshot in the same shape manifests use.
struct Metrics {
    reg: Registry,
    http_requests: CounterId,
    jobs_submitted: CounterId,
    jobs_rejected: CounterId,
    jobs_done: CounterId,
    jobs_failed: CounterId,
    jobs_cancelled: CounterId,
    jobs_timed_out: CounterId,
    cache_hits: CounterId,
    cache_misses: CounterId,
    manifest_cache_hits: CounterId,
    gen_ms: HistogramId,
    sim_ms: HistogramId,
    job_ms: HistogramId,
}

impl Metrics {
    fn new() -> Metrics {
        let mut reg = Registry::new(true);
        Metrics {
            http_requests: reg.counter("serve_http_requests"),
            jobs_submitted: reg.counter("serve_jobs_submitted"),
            jobs_rejected: reg.counter("serve_jobs_rejected"),
            jobs_done: reg.counter("serve_jobs_done"),
            jobs_failed: reg.counter("serve_jobs_failed"),
            jobs_cancelled: reg.counter("serve_jobs_cancelled"),
            jobs_timed_out: reg.counter("serve_jobs_timed_out"),
            cache_hits: reg.counter("serve_cache_hits"),
            cache_misses: reg.counter("serve_cache_misses"),
            manifest_cache_hits: reg.counter("serve_manifest_cache_hits"),
            gen_ms: reg.histogram("serve_gen_ms"),
            sim_ms: reg.histogram("serve_sim_ms"),
            job_ms: reg.histogram("serve_job_ms"),
            reg,
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        self.reg.snapshot()
    }
}

/// Mutable server state, under one mutex.
struct State {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: std::collections::BTreeMap<u64, Job>,
    running: usize,
    draining: bool,
}

struct Shared {
    cfg: ServeConfig,
    cache: Cache,
    git: String,
    state: Mutex<State>,
    wake: Condvar,
    metrics: Mutex<Metrics>,
}

impl Shared {
    fn count(&self, id: CounterId) {
        self.metrics.lock().unwrap().reg.inc(id, 1);
    }

    fn observe_ms(&self, id: HistogramId, seconds: f64) {
        let ms = (seconds * 1000.0).round().max(0.0) as u64;
        self.metrics.lock().unwrap().reg.observe(id, ms);
    }

    fn metric_ids(&self) -> (CounterId, CounterId, CounterId, CounterId) {
        let m = self.metrics.lock().unwrap();
        (
            m.cache_hits,
            m.cache_misses,
            m.manifest_cache_hits,
            m.http_requests,
        )
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    port: u16,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (127.0.0.1 only) and prepares shared state.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let cache = Cache::new(&cfg.results_dir);
        let shared = Arc::new(Shared {
            git: git_describe(),
            cache,
            cfg,
            state: Mutex::new(State {
                next_id: 1,
                queue: VecDeque::new(),
                jobs: std::collections::BTreeMap::new(),
                running: 0,
                draining: false,
            }),
            wake: Condvar::new(),
            metrics: Mutex::new(Metrics::new()),
        });
        Ok(Server {
            listener,
            port,
            shared,
        })
    }

    /// The bound port (useful with `port: 0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Serves until drained: accepts connections, runs jobs on the
    /// worker pool, and returns once a drain was requested (SIGTERM via
    /// the external flag, or `POST /shutdown`) *and* every accepted job
    /// has reached a terminal state.
    pub fn run(self) {
        let Server {
            listener, shared, ..
        } = self;
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pfsim-serve-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker"),
            );
        }
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if let Some(flag) = shared.cfg.external_drain {
                if flag.load(Ordering::SeqCst) {
                    request_drain(&shared);
                }
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let sh = Arc::clone(&shared);
                    handlers.push(
                        std::thread::Builder::new()
                            .name("pfsim-serve-conn".to_string())
                            .spawn(move || handle_connection(&sh, stream))
                            .expect("spawn handler"),
                    );
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let done = {
                        let st = shared.state.lock().unwrap();
                        st.draining && st.queue.is_empty() && st.running == 0
                    };
                    if done {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("pfsim-serve: accept: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        shared.wake.notify_all();
        for w in workers {
            let _ = w.join();
        }
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Marks the server draining and wakes everyone blocked on the queue.
fn request_drain(shared: &Shared) {
    let mut st = shared.state.lock().unwrap();
    if !st.draining {
        st.draining = true;
        if !shared.cfg.quiet {
            println!("pfsim-serve: draining ({} queued)", st.queue.len());
        }
    }
    drop(st);
    shared.wake.notify_all();
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let id = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(id) = st.queue.pop_front() {
                    st.running += 1;
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    break id;
                }
                if st.draining {
                    return;
                }
                // Timed wait so an externally-signalled drain is noticed
                // even if no notification races this worker.
                let (guard, _timeout) = shared
                    .wake
                    .wait_timeout(st, Duration::from_millis(200))
                    .unwrap();
                st = guard;
            }
        };
        run_job(shared, id);
        let mut st = shared.state.lock().unwrap();
        st.running -= 1;
        drop(st);
        shared.wake.notify_all();
    }
}

/// The cache key of one cell: everything its result depends on, and
/// nothing it does not (worker thread count is deliberately absent).
fn cell_key(git: &str, spec: &WireSpec, app: App, var_idx: usize) -> String {
    format!(
        "cell|git={git}|app={}|size={}|warmup={}|cfg={:?}",
        app.name(),
        spec.size,
        spec.warmup,
        spec.cell_config(var_idx)
    )
}

/// The cache key of a whole manifest: the exact spec plus the build.
fn manifest_key(git: &str, spec: &WireSpec) -> String {
    format!("manifest|git={git}|spec={}", spec.to_json().render())
}

/// Rewrites the `variant` index of a cached/fresh cell document to its
/// position in *this* job's grid (cells are cached position-free).
fn with_variant_index(cell: Json, var_idx: usize) -> Json {
    match cell {
        Json::Object(members) => Json::Object(
            members
                .into_iter()
                .map(|(k, v)| {
                    if k == "variant" {
                        (k, Json::uint(var_idx as u64))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        ),
        other => other,
    }
}

/// One NDJSON progress line for a finished cell.
fn cell_event(done: usize, total: usize, app: App, label: &str, source: &str, cycles: u64) -> Json {
    Json::obj(vec![
        ("cell", Json::uint(done as u64)),
        ("of", Json::uint(total as u64)),
        ("app", Json::str(app.name())),
        ("variant", Json::str(label)),
        ("source", Json::str(source)),
        ("exec_cycles", Json::uint(cycles)),
    ])
}

/// Appends a progress event and bumps per-cell counters under the lock.
fn record_cell(shared: &Shared, id: u64, event: Json, hit: bool) {
    let mut st = shared.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.cells_done += 1;
        if hit {
            job.cache_hits += 1;
        } else {
            job.cache_misses += 1;
        }
        job.events.push(event.render());
    }
    drop(st);
    shared.wake.notify_all();
}

/// Moves the job to a terminal state, emits the terminal event, and
/// updates the terminal-state metrics.
fn finish(shared: &Shared, id: u64, state: JobState, error: Option<String>) {
    let mut st = shared.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.state = state;
        job.error = error;
        let terminal = Json::obj(vec![
            ("job", Json::str(job.public_id())),
            ("state", Json::str(state.name())),
            ("cache_hits", Json::uint(job.cache_hits)),
            ("cache_misses", Json::uint(job.cache_misses)),
        ]);
        job.events.push(terminal.render());
        if !shared.cfg.quiet {
            println!(
                "pfsim-serve: {} {} ({}/{} cells, {} cached)",
                job.public_id(),
                state.name(),
                job.cells_done,
                job.cells_total,
                job.cache_hits
            );
        }
    }
    drop(st);
    shared.wake.notify_all();
    let m = shared.metrics.lock().unwrap();
    let counter = match state {
        JobState::Done => m.jobs_done,
        JobState::Failed => m.jobs_failed,
        JobState::Cancelled => m.jobs_cancelled,
        JobState::TimedOut => m.jobs_timed_out,
        JobState::Queued | JobState::Running => return,
    };
    drop(m);
    shared.count(counter);
}

fn cancel_requested(shared: &Shared, id: u64) -> bool {
    let st = shared.state.lock().unwrap();
    st.jobs.get(&id).is_some_and(|j| j.cancel_requested)
}

/// Lowers one grid cell to a runnable 1×1 spec.
fn one_cell_spec(spec: &WireSpec, app: App, var_idx: usize, threads: usize) -> ExperimentSpec {
    let v = &spec.variants[var_idx];
    let mut cell = ExperimentSpec::new(spec.name.clone())
        .size(spec.size)
        .apps([app])
        .variant(v.label.clone(), v.config())
        .instrument(spec.instrument)
        .warmup(spec.warmup)
        .serial()
        .quiet();
    if threads > 1 {
        cell = cell.threads(threads);
    }
    cell
}

/// Runs one job to a terminal state: replay the manifest cache, else
/// walk the grid cell by cell (cache first, simulate on miss), then
/// assemble, validate, persist and cache the manifest.
fn run_job(shared: &Shared, id: u64) {
    let started = Instant::now();
    let spec = {
        let st = shared.state.lock().unwrap();
        st.jobs.get(&id).expect("running job exists").spec.clone()
    };
    let (hits_id, misses_id, manifest_hits_id, _) = shared.metric_ids();
    let timeout = spec
        .timeout_secs
        .or(shared.cfg.default_timeout_secs)
        .map(Duration::from_secs);
    let total = spec.apps.len() * spec.variants.len();

    // Whole-spec replay: identical spec on the same build returns the
    // stored manifest bytes verbatim (wall-clock fields included).
    let mkey = manifest_key(&shared.git, &spec);
    if let Some(stored) = shared.cache.get("manifests", &mkey) {
        if let Some(text) = stored.as_str() {
            match Manifest::parse(text) {
                Ok(man) => {
                    shared.count(manifest_hits_id);
                    for (i, cell) in man.cells.iter().enumerate() {
                        let app = spec.apps[i / spec.variants.len()];
                        let label = &spec.variants[cell.variant].label;
                        let ev = cell_event(i + 1, total, app, label, "cache", cell.exec_cycles);
                        record_cell(shared, id, ev, true);
                        shared.count(hits_id);
                    }
                    let path = shared.cfg.results_dir.join(format!("{}.json", spec.name));
                    if let Err(e) = std::fs::create_dir_all(&shared.cfg.results_dir)
                        .and_then(|()| std::fs::write(&path, text))
                    {
                        finish(shared, id, JobState::Failed, Some(format!("write: {e}")));
                        return;
                    }
                    let text = text.to_string();
                    let mut st = shared.state.lock().unwrap();
                    if let Some(job) = st.jobs.get_mut(&id) {
                        job.manifest = Some(text);
                        job.manifest_path = Some(path.display().to_string());
                    }
                    drop(st);
                    let job_ms = shared.metrics.lock().unwrap().job_ms;
                    shared.observe_ms(job_ms, started.elapsed().as_secs_f64());
                    finish(shared, id, JobState::Done, None);
                    return;
                }
                Err(_) => {
                    // A stale/corrupt manifest entry: fall through and
                    // rebuild from the cell caches.
                }
            }
        }
    }

    let threads = spec.threads.min(shared.cfg.max_threads).max(1);
    let runner = Runner::with_out_dir(&shared.cfg.results_dir);
    let mut cells: Vec<Json> = Vec::with_capacity(total);
    let mut traces: Vec<Option<Json>> = vec![None; spec.apps.len()];
    let mut gen_seconds = 0.0;
    let mut sim_seconds = 0.0;
    let (gen_id, sim_id) = {
        let m = shared.metrics.lock().unwrap();
        (m.gen_ms, m.sim_ms)
    };
    for (app_idx, &app) in spec.apps.iter().enumerate() {
        for var_idx in 0..spec.variants.len() {
            if cancel_requested(shared, id) {
                finish(shared, id, JobState::Cancelled, None);
                return;
            }
            if let Some(limit) = timeout {
                if started.elapsed() > limit {
                    finish(
                        shared,
                        id,
                        JobState::TimedOut,
                        Some(format!("exceeded {}s", limit.as_secs())),
                    );
                    return;
                }
            }
            if shared.cfg.cell_delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(shared.cfg.cell_delay_ms));
            }
            let key = cell_key(&shared.git, &spec, app, var_idx);
            let label = spec.variants[var_idx].label.clone();
            let (cell, trace, hit) = match shared.cache.get("cells", &key) {
                Some(entry) => {
                    let cell = entry.get("cell").cloned();
                    let trace = entry.get("trace").cloned();
                    match (cell, trace) {
                        (Some(c), Some(t)) => (c, t, true),
                        _ => {
                            finish(
                                shared,
                                id,
                                JobState::Failed,
                                Some("malformed cache entry".to_string()),
                            );
                            return;
                        }
                    }
                }
                None => {
                    let run = runner.execute(one_cell_spec(&spec, app, var_idx, threads));
                    gen_seconds += run.gen_seconds;
                    sim_seconds += run.sim_seconds;
                    shared.observe_ms(gen_id, run.gen_seconds);
                    shared.observe_ms(sim_id, run.sim_seconds);
                    let cell = cell_json(&run.cells[0]);
                    let trace = trace_json(&run.traces[0]);
                    shared.cache.put(
                        "cells",
                        &key,
                        Json::obj(vec![("cell", cell.clone()), ("trace", trace.clone())]),
                    );
                    (cell, trace, false)
                }
            };
            shared.count(if hit { hits_id } else { misses_id });
            let cell = with_variant_index(cell, var_idx);
            let cycles = cell.get("exec_cycles").and_then(Json::as_u64).unwrap_or(0);
            if traces[app_idx].is_none() {
                traces[app_idx] = Some(trace);
            }
            let done = cells.len() + 1;
            cells.push(cell);
            let ev = cell_event(
                done,
                total,
                app,
                &label,
                if hit { "cache" } else { "sim" },
                cycles,
            );
            record_cell(shared, id, ev, hit);
        }
    }

    let total_pclocks: u64 = cells
        .iter()
        .map(|c| c.get("exec_cycles").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    let doc = assemble_manifest(
        &spec.name,
        &spec.size.to_string(),
        threads,
        (gen_seconds, sim_seconds, 0.0),
        total_pclocks,
        spec.apps.iter().map(|a| a.name().to_string()).collect(),
        spec.variants
            .iter()
            .map(|v| {
                variant_json(&Variant {
                    label: v.label.clone(),
                    cfg: v.config(),
                    size: None,
                })
            })
            .collect(),
        traces.into_iter().flatten().collect(),
        cells,
    );
    let text = doc.render();
    if let Err(e) = Manifest::from_json(&doc) {
        finish(
            shared,
            id,
            JobState::Failed,
            Some(format!("assembled manifest invalid: {e}")),
        );
        return;
    }
    let path = shared.cfg.results_dir.join(format!("{}.json", spec.name));
    if let Err(e) =
        std::fs::create_dir_all(&shared.cfg.results_dir).and_then(|()| std::fs::write(&path, &text))
    {
        finish(shared, id, JobState::Failed, Some(format!("write: {e}")));
        return;
    }
    shared.cache.put("manifests", &mkey, Json::str(&text));
    let mut st = shared.state.lock().unwrap();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.manifest = Some(text);
        job.manifest_path = Some(path.display().to_string());
    }
    drop(st);
    let job_ms = shared.metrics.lock().unwrap().job_ms;
    shared.observe_ms(job_ms, started.elapsed().as_secs_f64());
    finish(shared, id, JobState::Done, None);
}

// ---------------------------------------------------------------------
// HTTP handlers
// ---------------------------------------------------------------------

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = http::respond(&mut stream, 400, &error_json(&e));
            return;
        }
    };
    let (_, _, _, http_id) = shared.metric_ids();
    shared.count(http_id);
    let outcome = route(shared, &req, &mut stream);
    if let Err(e) = outcome {
        // The peer went away mid-response; nothing to do but log.
        if !shared.cfg.quiet {
            eprintln!("pfsim-serve: {} {}: {e}", req.method, req.path);
        }
    }
}

fn error_json(message: &str) -> Json {
    Json::obj(vec![("error", Json::str(message))])
}

fn route(shared: &Shared, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => submit(shared, &req.body, stream),
        ("GET", "/status") => http::respond(stream, 200, &server_status_json(shared)),
        ("POST", "/shutdown") => {
            request_drain(shared);
            http::respond(
                stream,
                200,
                &Json::obj(vec![("draining", Json::Bool(true))]),
            )
        }
        (method, path) => {
            let Some(rest) = path.strip_prefix("/jobs/") else {
                return http::respond(stream, 404, &error_json("no such endpoint"));
            };
            let (id_part, tail) = match rest.split_once('/') {
                Some((a, b)) => (a, b),
                None => (rest, ""),
            };
            let Some(id) = parse_job_id(id_part) else {
                return http::respond(stream, 404, &error_json("no such job"));
            };
            match (method, tail) {
                ("GET", "") => job_status(shared, id, stream),
                ("GET", "manifest") => job_manifest(shared, id, stream),
                ("GET", "events") => job_events(shared, id, stream),
                ("POST", "cancel") => job_cancel(shared, id, stream),
                _ => http::respond(stream, 405, &error_json("method not allowed")),
            }
        }
    }
}

fn submit(shared: &Shared, body: &str, stream: &mut TcpStream) -> std::io::Result<()> {
    let spec = match WireSpec::parse(body) {
        Ok(s) => s,
        Err(e) => return http::respond(stream, 400, &error_json(&format!("invalid spec: {e}"))),
    };
    let mut st = shared.state.lock().unwrap();
    if st.draining {
        return http::respond(stream, 503, &error_json("server is draining"));
    }
    if st.queue.len() >= shared.cfg.queue_depth {
        drop(st);
        let m = shared.metrics.lock().unwrap().jobs_rejected;
        shared.count(m);
        return http::respond(
            stream,
            429,
            &Json::obj(vec![
                ("error", Json::str("queue full")),
                ("queue_depth", Json::uint(shared.cfg.queue_depth as u64)),
            ]),
        );
    }
    let id = st.next_id;
    st.next_id += 1;
    let job = Job::new(id, spec);
    let accepted = Json::obj(vec![
        ("job", Json::str(job.public_id())),
        ("state", Json::str(job.state.name())),
        ("cells", Json::uint(job.cells_total as u64)),
    ]);
    if !shared.cfg.quiet {
        println!(
            "pfsim-serve: {} queued: {} ({} cells)",
            job.public_id(),
            job.spec.name,
            job.cells_total
        );
    }
    st.jobs.insert(id, job);
    st.queue.push_back(id);
    drop(st);
    shared.wake.notify_all();
    let m = shared.metrics.lock().unwrap().jobs_submitted;
    shared.count(m);
    http::respond(stream, 202, &accepted)
}

fn job_status(shared: &Shared, id: u64, stream: &mut TcpStream) -> std::io::Result<()> {
    let st = shared.state.lock().unwrap();
    match st.jobs.get(&id) {
        Some(job) => {
            let doc = job.status_json();
            drop(st);
            http::respond(stream, 200, &doc)
        }
        None => {
            drop(st);
            http::respond(stream, 404, &error_json("no such job"))
        }
    }
}

fn job_manifest(shared: &Shared, id: u64, stream: &mut TcpStream) -> std::io::Result<()> {
    let st = shared.state.lock().unwrap();
    let Some(job) = st.jobs.get(&id) else {
        drop(st);
        return http::respond(stream, 404, &error_json("no such job"));
    };
    match (&job.manifest, job.state) {
        (Some(text), _) => {
            let text = text.clone();
            drop(st);
            http::respond_raw(stream, 200, "application/json", &text)
        }
        (None, state) => {
            let msg = if state.terminal() {
                format!("job is {}", state.name())
            } else {
                "job not finished".to_string()
            };
            drop(st);
            http::respond(stream, 409, &error_json(&msg))
        }
    }
}

fn job_cancel(shared: &Shared, id: u64, stream: &mut TcpStream) -> std::io::Result<()> {
    let doc = {
        let mut st = shared.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            drop(st);
            return http::respond(stream, 404, &error_json("no such job"));
        };
        if !job.state.terminal() {
            job.cancel_requested = true;
        }
        let was_queued = job.state == JobState::Queued;
        let doc = job.status_json();
        if was_queued {
            st.queue.retain(|&q| q != id);
        }
        drop(st);
        if was_queued {
            // Never picked up by a worker: terminal immediately.
            finish(shared, id, JobState::Cancelled, None);
            let st = shared.state.lock().unwrap();
            let doc = st.jobs.get(&id).map(Job::status_json);
            doc.unwrap_or_else(|| error_json("no such job"))
        } else {
            doc
        }
    };
    shared.wake.notify_all();
    http::respond(stream, 200, &doc)
}

/// Streams a job's progress as NDJSON until it reaches a terminal state
/// (all events flushed) or the client hangs up.
fn job_events(shared: &Shared, id: u64, stream: &mut TcpStream) -> std::io::Result<()> {
    {
        let st = shared.state.lock().unwrap();
        if !st.jobs.contains_key(&id) {
            drop(st);
            return http::respond(stream, 404, &error_json("no such job"));
        }
    }
    http::start_ndjson(stream)?;
    let mut cursor = 0usize;
    loop {
        let (fresh, finished) = {
            let st = shared.state.lock().unwrap();
            let job = match st.jobs.get(&id) {
                Some(j) => j,
                None => return Ok(()),
            };
            let fresh: Vec<String> = job.events[cursor..].to_vec();
            let finished = job.state.terminal();
            drop(st);
            (fresh, finished)
        };
        cursor += fresh.len();
        for line in fresh {
            use std::io::Write;
            writeln!(stream, "{line}")?;
        }
        {
            use std::io::Write;
            stream.flush()?;
        }
        if finished {
            return Ok(());
        }
        let st = shared.state.lock().unwrap();
        let _ = shared.wake.wait_timeout(st, Duration::from_millis(100));
    }
}

fn server_status_json(shared: &Shared) -> Json {
    let (queue, draining, counts) = {
        let st = shared.state.lock().unwrap();
        let mut counts = [0u64; 6];
        for job in st.jobs.values() {
            let slot = match job.state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
                JobState::TimedOut => 5,
            };
            counts[slot] += 1;
        }
        (st.queue.len(), st.draining, counts)
    };
    let snap = shared.metrics.lock().unwrap().snapshot();
    Json::obj(vec![
        ("draining", Json::Bool(draining)),
        ("workers", Json::uint(shared.cfg.workers as u64)),
        ("queue", Json::uint(queue as u64)),
        ("queue_limit", Json::uint(shared.cfg.queue_depth as u64)),
        (
            "jobs",
            Json::obj(vec![
                ("queued", Json::uint(counts[0])),
                ("running", Json::uint(counts[1])),
                ("done", Json::uint(counts[2])),
                ("failed", Json::uint(counts[3])),
                ("cancelled", Json::uint(counts[4])),
                ("timed-out", Json::uint(counts[5])),
            ]),
        ),
        ("metrics", manifest::metrics_json(&snap)),
    ])
}
