//! `pfsim-serve`: the simulator as a long-running experiment service.
//!
//! The service accepts schema-v2 wire specs
//! ([`pfsim_bench::spec::wire`]) over a hand-rolled HTTP/1.1 API,
//! runs them on a bounded worker pool through the ordinary
//! [`Runner`](pfsim_bench::Runner), and answers repeat submissions from
//! a content-addressed result cache — an identical spec on the same
//! build is never re-simulated, and its manifest comes back
//! byte-identical.
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /jobs` | submit a wire spec (202 with a job id; 429 when the queue is full; 503 while draining) |
//! | `GET /jobs/<id>` | job status (state, cells done, cache hit/miss counts) |
//! | `GET /jobs/<id>/events` | streamed NDJSON per-cell progress |
//! | `GET /jobs/<id>/manifest` | the finished manifest (409 until done) |
//! | `POST /jobs/<id>/cancel` | cancel (queued: immediate; running: next cell boundary) |
//! | `GET /status` | queue depth, per-state job counts, metrics registry snapshot |
//! | `POST /shutdown` | graceful drain (same path a SIGTERM takes) |
//!
//! See `DESIGN.md` §14 for the cache key derivation and the job
//! lifecycle state machine.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod server;

pub use client::Client;
pub use server::{ServeConfig, Server};
