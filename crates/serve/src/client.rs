//! Client-side bindings for the service API (used by the `pfsim-client`
//! binary and the end-to-end tests).

use pfsim_analysis::Json;

use crate::http;

/// A handle on one `pfsim-serve` instance.
#[derive(Debug, Clone)]
pub struct Client {
    /// Server host.
    pub host: String,
    /// Server port.
    pub port: u16,
}

impl Client {
    /// A client for `host:port`.
    pub fn new(host: impl Into<String>, port: u16) -> Client {
        Client {
            host: host.into(),
            port,
        }
    }

    /// Raw GET, returning `(status, body)`.
    pub fn get(&self, path: &str) -> Result<(u16, String), String> {
        http::request(&self.host, self.port, "GET", path, None)
    }

    /// Raw POST, returning `(status, body)`.
    pub fn post(&self, path: &str, body: Option<&str>) -> Result<(u16, String), String> {
        http::request(&self.host, self.port, "POST", path, body)
    }

    /// Submits a wire spec; returns the job id (`job-<n>`) on 202.
    pub fn submit(&self, spec_text: &str) -> Result<String, String> {
        let (status, body) = self.post("/jobs", Some(spec_text))?;
        if status != 202 {
            return Err(format!(
                "submit rejected ({status}): {}",
                server_error(&body)
            ));
        }
        let doc = Json::parse(&body)?;
        doc.get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("malformed accept response: {body}"))
    }

    /// Streams a job's NDJSON progress events, invoking `on_event` per
    /// line, until the job reaches a terminal state.
    pub fn watch(&self, job: &str, on_event: impl FnMut(&str)) -> Result<(), String> {
        http::stream_lines(
            &self.host,
            self.port,
            &format!("/jobs/{job}/events"),
            on_event,
        )
    }

    /// The job's status document.
    pub fn job_status(&self, job: &str) -> Result<Json, String> {
        let (status, body) = self.get(&format!("/jobs/{job}"))?;
        if status != 200 {
            return Err(format!("status {status}: {}", server_error(&body)));
        }
        Json::parse(&body)
    }

    /// The finished job's manifest text.
    pub fn manifest(&self, job: &str) -> Result<String, String> {
        let (status, body) = self.get(&format!("/jobs/{job}/manifest"))?;
        if status != 200 {
            return Err(format!("manifest {status}: {}", server_error(&body)));
        }
        Ok(body)
    }

    /// The server's `/status` document (queue, job counts, metrics).
    pub fn server_status(&self) -> Result<Json, String> {
        let (status, body) = self.get("/status")?;
        if status != 200 {
            return Err(format!("status {status}: {}", server_error(&body)));
        }
        Json::parse(&body)
    }

    /// Requests cancellation; returns the job's status document.
    pub fn cancel(&self, job: &str) -> Result<Json, String> {
        let (status, body) = self.post(&format!("/jobs/{job}/cancel"), None)?;
        if status != 200 {
            return Err(format!("cancel {status}: {}", server_error(&body)));
        }
        Json::parse(&body)
    }

    /// Asks the server to drain and exit once all jobs finish.
    pub fn shutdown(&self) -> Result<(), String> {
        let (status, body) = self.post("/shutdown", None)?;
        if status != 200 {
            return Err(format!("shutdown {status}: {}", server_error(&body)));
        }
        Ok(())
    }
}

/// Pulls the `error` field out of an error body, falling back to the
/// raw text.
fn server_error(body: &str) -> String {
    Json::parse(body)
        .ok()
        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| body.to_string())
}
