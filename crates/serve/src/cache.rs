//! The manifest-hash result cache.
//!
//! Every simulated cell and every assembled manifest is stored under
//! `<results>/cache/<kind>/<hash>.json`, keyed by a *key material*
//! string that spells out everything the result depends on: the fully
//! resolved configuration (`Debug` form — the same fingerprint idiom the
//! warmup checkpoint store uses), the application, the problem size, the
//! warmup prefix, and the producing build's `git describe`. The file
//! stores the material alongside the value and a lookup verifies it, so
//! a hash collision degrades to a cache miss, never a wrong result.
//!
//! Worker threads each hold a reference; the cache itself takes no locks
//! — a lost race on `put` rewrites the same bytes, and `get` either sees
//! a complete file or misses (writes go through a rename).

use std::path::{Path, PathBuf};

use pfsim_analysis::Json;

/// An on-disk content-addressed store under a results directory.
#[derive(Debug, Clone)]
pub struct Cache {
    root: PathBuf,
}

impl Cache {
    /// A cache rooted at `<results_dir>/cache`.
    pub fn new(results_dir: &Path) -> Cache {
        Cache {
            root: results_dir.join("cache"),
        }
    }

    fn entry_path(&self, kind: &str, material: &str) -> PathBuf {
        self.root
            .join(kind)
            .join(format!("{:016x}.json", fnv1a(material)))
    }

    /// Looks `material` up in `kind`, returning the stored value only if
    /// the stored key material matches exactly.
    pub fn get(&self, kind: &str, material: &str) -> Option<Json> {
        let text = std::fs::read_to_string(self.entry_path(kind, material)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("key")?.as_str()? != material {
            return None; // hash collision: treat as a miss
        }
        doc.get("value").cloned()
    }

    /// Stores `value` under `material` in `kind` (best-effort: cache
    /// write failures cost re-simulation, not correctness).
    pub fn put(&self, kind: &str, material: &str, value: Json) {
        let path = self.entry_path(kind, material);
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        let doc = Json::obj(vec![("key", Json::str(material)), ("value", value)]);
        // Write-then-rename so concurrent readers never see a torn file.
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, doc.render()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, and stable across runs. Only
/// used to name cache files — collisions are caught by the stored key.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(name: &str) -> Cache {
        let dir = std::env::temp_dir().join(format!("pfsim-serve-cache-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::new(&dir)
    }

    #[test]
    fn round_trips_and_misses() {
        let c = temp_cache("roundtrip");
        assert!(c.get("cells", "k1").is_none());
        c.put("cells", "k1", Json::uint(7));
        assert_eq!(c.get("cells", "k1").unwrap().as_u64(), Some(7));
        assert!(c.get("cells", "k2").is_none());
        assert!(c.get("manifests", "k1").is_none(), "kinds are disjoint");
    }

    /// A file whose stored key disagrees with the looked-up material (a
    /// forced "hash collision") reads as a miss, never as a wrong value.
    #[test]
    fn mismatched_key_material_is_a_miss() {
        let c = temp_cache("collision");
        c.put("cells", "honest", Json::uint(1));
        let path = c.entry_path("cells", "honest");
        let forged = Json::obj(vec![
            ("key", Json::str("something else")),
            ("value", Json::uint(2)),
        ]);
        std::fs::write(&path, forged.render()).unwrap();
        assert!(c.get("cells", "honest").is_none());
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so cache files stay addressable across builds.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
