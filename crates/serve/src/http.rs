//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The service speaks exactly the subset it needs: one request per
//! connection (`Connection: close`), JSON bodies, and a streamed
//! NDJSON response for progress events. Hand-rolling this keeps the
//! server dependency-free; the request reader enforces hard limits on
//! header and body size so a misbehaving client cannot balloon memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use pfsim_analysis::Json;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (a wire spec is a few KiB; a megabyte
/// is already generous).
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The HTTP method, uppercased as sent (`GET`, `POST`).
    pub method: String,
    /// The request target (path only; no query parsing).
    pub path: String,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
}

/// Reads one request from `stream`, enforcing the size limits.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let before = head.len();
        let n = reader
            .read_line(&mut head)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err("request head too large".to_string());
        }
        if head[before..].trim_end().is_empty() {
            break; // blank line: end of headers
        }
    }
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("request body too large".to_string());
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request { method, path, body })
}

/// The reason phrase for the handful of statuses the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete response with the given body and content type.
pub fn respond_raw(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status,
        reason(status),
        content_type,
        body.len(),
        body
    )?;
    stream.flush()
}

/// Writes a complete JSON response.
pub fn respond(stream: &mut TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    respond_raw(stream, status, "application/json", &body.render())
}

/// Writes the response head for a streamed NDJSON body; the caller then
/// writes one JSON document per line and closes the connection.
pub fn start_ndjson(stream: &mut TcpStream) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Client side: performs one request against `host:port` and returns
/// `(status, body)`. The connection is closed after the exchange.
pub fn request(
    host: &str,
    port: u16,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect((host, port)).map_err(|e| format!("connect {host}:{port}: {e}"))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .map_err(|e| format!("send: {e}"))?;
    stream.flush().map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    split_response(&response)
}

/// Client side: streams an NDJSON response, invoking `on_line` for each
/// non-empty body line until the server closes the connection.
pub fn stream_lines(
    host: &str,
    port: u16,
    path: &str,
    mut on_line: impl FnMut(&str),
) -> Result<(), String> {
    let stream =
        TcpStream::connect((host, port)).map_err(|e| format!("connect {host}:{port}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    write!(
        writer,
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut in_body = false;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Ok(());
        }
        let trimmed = line.trim_end();
        if !in_body {
            if trimmed.is_empty() {
                in_body = true;
            }
            continue;
        }
        if !trimmed.is_empty() {
            on_line(trimmed);
        }
    }
}

/// Splits a raw HTTP response into `(status, body)`.
pub fn split_response(response: &str) -> Result<(u16, String), String> {
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed response (no header/body separator)")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .ok_or("malformed status line")?
        .parse::<u16>()
        .map_err(|_| "malformed status code".to_string())?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_splits_into_status_and_body() {
        let (status, body) =
            split_response("HTTP/1.1 202 Accepted\r\nX: y\r\n\r\n{\"job\": \"job-1\"}").unwrap();
        assert_eq!(status, 202);
        assert_eq!(body, "{\"job\": \"job-1\"}");
    }

    #[test]
    fn malformed_responses_are_errors() {
        assert!(split_response("junk").is_err());
        assert!(split_response("HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn reasons_cover_the_service_statuses() {
        for s in [200, 202, 400, 404, 405, 409, 429, 503] {
            assert!(!reason(s).is_empty());
        }
    }
}
