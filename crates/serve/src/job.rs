//! Job lifecycle: the state machine one submitted experiment moves
//! through, and its JSON status encoding.
//!
//! ```text
//!            submit            worker picks up
//!   (429/503 rejected)  ──►  Queued ──► Running ──► Done
//!                               │          │   ├──► Failed
//!                               │          │   └──► TimedOut
//!                               └──────────┴─────► Cancelled
//! ```
//!
//! Queued jobs cancel immediately; running jobs cancel at the next
//! cell boundary (the simulator itself is never interrupted mid-cell,
//! so every cached cell is complete). Terminal states never change.

use pfsim_analysis::Json;
use pfsim_bench::spec::wire::WireSpec;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is simulating (or replaying cached) cells.
    Running,
    /// All cells produced; the manifest is written and validated.
    Done,
    /// The run aborted (assembly or validation error).
    Failed,
    /// Cancelled by the client before completion.
    Cancelled,
    /// Exceeded its wall-clock budget at a cell boundary.
    TimedOut,
}

impl JobState {
    /// The wire name of the state (stable API surface).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed-out",
        }
    }

    /// Whether the state is final.
    pub fn terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One submitted experiment and everything observable about it.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id (rendered as `job-<n>`).
    pub id: u64,
    /// The validated spec as submitted.
    pub spec: WireSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Grid size (`apps × variants`).
    pub cells_total: usize,
    /// Cells produced so far (cached or simulated).
    pub cells_done: usize,
    /// Cells answered from the result cache.
    pub cache_hits: u64,
    /// Cells that had to be simulated.
    pub cache_misses: u64,
    /// Failure detail for `Failed`.
    pub error: Option<String>,
    /// The manifest text, once `Done`.
    pub manifest: Option<String>,
    /// Where the manifest was written, once `Done`.
    pub manifest_path: Option<String>,
    /// Set by the cancel endpoint; checked at cell boundaries.
    pub cancel_requested: bool,
    /// Progress events (NDJSON lines), appended as cells finish.
    pub events: Vec<String>,
}

impl Job {
    /// A freshly accepted job.
    pub fn new(id: u64, spec: WireSpec) -> Job {
        let cells_total = spec.apps.len() * spec.variants.len();
        Job {
            id,
            spec,
            state: JobState::Queued,
            cells_total,
            cells_done: 0,
            cache_hits: 0,
            cache_misses: 0,
            error: None,
            manifest: None,
            manifest_path: None,
            cancel_requested: false,
            events: Vec::new(),
        }
    }

    /// The job's public name (`job-<n>`).
    pub fn public_id(&self) -> String {
        format!("job-{}", self.id)
    }

    /// The status document served at `GET /jobs/<id>`.
    pub fn status_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::str(self.public_id())),
            ("name", Json::str(&self.spec.name)),
            ("state", Json::str(self.state.name())),
            ("cells_total", Json::uint(self.cells_total as u64)),
            ("cells_done", Json::uint(self.cells_done as u64)),
            ("cache_hits", Json::uint(self.cache_hits)),
            ("cache_misses", Json::uint(self.cache_misses)),
            ("error", self.error.as_deref().map_or(Json::Null, Json::str)),
            (
                "manifest_path",
                self.manifest_path.as_deref().map_or(Json::Null, Json::str),
            ),
        ])
    }
}

/// Parses a public job id (`job-<n>`) back to the numeric id.
pub fn parse_job_id(public: &str) -> Option<u64> {
    public.strip_prefix("job-")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_bench::Size;
    use pfsim_prefetch::Scheme;
    use pfsim_workloads::App;

    #[test]
    fn lifecycle_states_classify() {
        assert!(!JobState::Queued.terminal());
        assert!(!JobState::Running.terminal());
        for s in [
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
            JobState::TimedOut,
        ] {
            assert!(s.terminal(), "{} is terminal", s.name());
        }
    }

    #[test]
    fn job_status_reports_grid_shape() {
        let spec = WireSpec::baseline_grid(
            "t",
            Size::Default,
            &[App::Mp3d, App::Water],
            &[Scheme::Sequential { degree: 1 }],
        );
        let job = Job::new(3, spec);
        assert_eq!(job.cells_total, 4);
        assert_eq!(job.public_id(), "job-3");
        assert_eq!(parse_job_id("job-3"), Some(3));
        assert_eq!(parse_job_id("job-x"), None);
        let doc = job.status_json();
        assert_eq!(doc.get("state").unwrap().as_str(), Some("queued"));
        assert_eq!(doc.get("cells_total").unwrap().as_u64(), Some(4));
    }
}
