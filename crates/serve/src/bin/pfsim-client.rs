//! Command-line client for `pfsim-serve`.
//!
//! ```text
//! pfsim-client submit spec.json [--out manifest.json]   # run + stream progress
//! pfsim-client status                                   # server /status
//! pfsim-client cancel job-3
//! pfsim-client shutdown                                 # graceful drain
//! ```
//!
//! `submit` streams per-cell progress, waits for the terminal state,
//! fetches the manifest, validates it with the same typed reader
//! `perfsmoke --check` uses, and (optionally) writes it to `--out`.

use pfsim_analysis::Json;
use pfsim_bench::cli::{Args, CLIENT_FLAGS};
use pfsim_bench::Manifest;
use pfsim_serve::Client;

fn die(message: &str) -> ! {
    eprintln!("pfsim-client: {message}");
    std::process::exit(1);
}

fn main() {
    let args = Args::parse("pfsim-client", CLIENT_FLAGS);
    let client = Client::new(args.host.clone(), args.port.unwrap_or(7077));
    let mut pos = args.positional.iter().map(String::as_str);
    match pos.next() {
        Some("submit") => {
            let Some(path) = pos.next() else {
                die("submit needs a spec file (pfsim-client submit spec.json)");
            };
            submit(&client, path, args.out.as_deref());
        }
        Some("status") => match client.server_status() {
            Ok(doc) => println!("{}", doc.render()),
            Err(e) => die(&e),
        },
        Some("cancel") => {
            let Some(job) = pos.next() else {
                die("cancel needs a job id (pfsim-client cancel job-3)");
            };
            match client.cancel(job) {
                Ok(doc) => println!("{}", doc.render()),
                Err(e) => die(&e),
            }
        }
        Some("shutdown") => {
            if let Err(e) = client.shutdown() {
                die(&e);
            }
            println!("pfsim-client: server draining");
        }
        Some(other) => die(&format!(
            "unknown command '{other}' (expected submit, status, cancel or shutdown)"
        )),
        None => die("missing command (submit, status, cancel or shutdown)"),
    }
}

fn submit(client: &Client, spec_path: &str, out: Option<&str>) {
    let spec_text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => die(&format!("read {spec_path}: {e}")),
    };
    let job = match client.submit(&spec_text) {
        Ok(j) => j,
        Err(e) => die(&e),
    };
    println!("pfsim-client: submitted {job}");
    if let Err(e) = client.watch(&job, |line| println!("{line}")) {
        die(&format!("event stream: {e}"));
    }
    let status = match client.job_status(&job) {
        Ok(s) => s,
        Err(e) => die(&e),
    };
    let state = status
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    if state != "done" {
        let detail = status
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("no detail");
        die(&format!("{job} ended {state}: {detail}"));
    }
    let text = match client.manifest(&job) {
        Ok(t) => t,
        Err(e) => die(&e),
    };
    let manifest = match Manifest::parse(&text) {
        Ok(m) => m,
        Err(e) => die(&format!("{job} returned an invalid manifest: {e}")),
    };
    if let Some(out) = out {
        if let Err(e) = std::fs::write(out, &text) {
            die(&format!("write {out}: {e}"));
        }
    }
    let hits = status.get("cache_hits").and_then(Json::as_u64).unwrap_or(0);
    let misses = status
        .get("cache_misses")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    println!(
        "pfsim-client: {job} done: {} cells ({hits} cache hits, {misses} simulated), total_pclocks={}",
        manifest.cells.len(),
        manifest.total_pclocks
    );
}
