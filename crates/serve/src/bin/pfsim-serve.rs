//! The experiment service daemon.
//!
//! ```text
//! pfsim-serve --port 7077 --workers 2 --queue-depth 8 \
//!             --results-dir results --timeout-secs 3600
//! ```
//!
//! Binds 127.0.0.1 only. `--port 0` picks an ephemeral port;
//! `--port-file PATH` writes the bound port there so scripts can find
//! it. SIGTERM/SIGINT drain gracefully: no new submissions, every
//! accepted job runs to a terminal state, then the process exits.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use pfsim_bench::cli::{Args, SERVE_FLAGS};
use pfsim_serve::{ServeConfig, Server};

/// Set from the signal handler; polled by the accept loop.
static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_drain_signal(_sig: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_drain_signals() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_drain_signal as extern "C" fn(i32) as usize;
    // The handler only performs an atomic store (async-signal-safe) and,
    // being a static item, lives for the whole process.
    // SAFETY: `handler` is a valid `extern "C" fn(i32)` registered for SIGTERM(15)/SIGINT(2).
    unsafe {
        signal(15, handler);
        signal(2, handler);
    }
}

#[cfg(not(unix))]
fn install_drain_signals() {}

fn main() {
    let args = Args::parse("pfsim-serve", SERVE_FLAGS);
    install_drain_signals();
    let results_dir = args
        .results_dir
        .clone()
        .or_else(|| std::env::var("PFSIM_RESULTS_DIR").ok())
        .unwrap_or_else(|| "results".to_string());
    let cell_delay_ms = std::env::var("PFSIM_SERVE_CELL_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let cfg = ServeConfig {
        port: args.port.unwrap_or(7077),
        workers: args.workers,
        queue_depth: args.queue_depth,
        default_timeout_secs: args.timeout_secs,
        results_dir: PathBuf::from(results_dir),
        max_threads: args.threads,
        cell_delay_ms,
        external_drain: Some(&DRAIN),
        quiet: false,
    };
    let workers = cfg.workers;
    let queue_depth = cfg.queue_depth;
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pfsim-serve: bind: {e}");
            std::process::exit(1);
        }
    };
    let port = server.port();
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{port}\n")) {
            eprintln!("pfsim-serve: write {path}: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "pfsim-serve: listening on 127.0.0.1:{port} ({workers} workers, queue depth {queue_depth})"
    );
    server.run();
    println!("pfsim-serve: drained");
}
