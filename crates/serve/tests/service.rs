//! End-to-end tests of the experiment service: a real server on an
//! ephemeral port, a real client, real (tiny) simulations.
//!
//! The fast tests use one-app grids at the default size so a cell costs
//! milliseconds even in debug builds; the full determinism-anchor grids
//! are `#[ignore]`d (CI runs the small one in release through the
//! `ci.sh` serve stage).

use std::path::PathBuf;

use pfsim_analysis::Json;
use pfsim_bench::spec::wire::{WireSpec, WireVariant};
use pfsim_bench::{Manifest, Size};
use pfsim_prefetch::Scheme;
use pfsim_serve::{Client, ServeConfig, Server};
use pfsim_workloads::App;

/// A fresh results directory + a server on an ephemeral port.
struct TestServer {
    client: Client,
    results_dir: PathBuf,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(name: &str, tune: impl FnOnce(&mut ServeConfig)) -> TestServer {
        let results_dir =
            std::env::temp_dir().join(format!("pfsim-serve-e2e-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results_dir);
        std::fs::create_dir_all(&results_dir).unwrap();
        let mut cfg = ServeConfig::new(&results_dir);
        cfg.workers = 1;
        cfg.quiet = true;
        tune(&mut cfg);
        let server = Server::bind(cfg).expect("bind ephemeral port");
        let port = server.port();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            client: Client::new("127.0.0.1", port),
            results_dir,
            thread: Some(thread),
        }
    }

    /// Drains the server and waits for it to exit.
    fn stop(mut self) {
        self.client.shutdown().expect("shutdown accepted");
        self.thread.take().unwrap().join().expect("server exits");
        let _ = std::fs::remove_dir_all(&self.results_dir);
    }
}

/// A 2-cell grid (MP3D × {baseline, Seq(d=1)}): the smallest spec that
/// still exercises variants and the cache.
fn tiny_spec(name: &str) -> String {
    WireSpec::baseline_grid(
        name,
        Size::Default,
        &[App::Mp3d],
        &[Scheme::Sequential { degree: 1 }],
    )
    .to_json()
    .render()
}

/// A single-app grid with `n` variants (baseline + seq degrees), for
/// tests that need several cells without several trace generations.
fn multi_variant_spec(name: &str, n_variants: usize, timeout_secs: Option<u64>) -> String {
    let mut spec = WireSpec::baseline_grid(name, Size::Default, &[App::Mp3d], &[]);
    for d in 1..n_variants as u64 {
        spec.variants
            .push(WireVariant::of_scheme(Scheme::Sequential {
                degree: d as u32,
            }));
    }
    spec.timeout_secs = timeout_secs;
    spec.to_json().render()
}

fn state_of(status: &Json) -> String {
    status
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or("missing")
        .to_string()
}

fn counter(status: &Json, name: &str) -> u64 {
    status
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Submits and blocks until the job is terminal (the event stream only
/// closes on a terminal state), returning the job id.
fn submit_and_wait(client: &Client, spec: &str) -> String {
    let job = client.submit(spec).expect("submit accepted");
    client.watch(&job, |_line| {}).expect("event stream");
    job
}

/// The core acceptance criterion: submitting the same spec twice does
/// zero simulation work the second time — every cell is a cache hit,
/// the counters prove it, and the manifests are byte-identical.
#[test]
fn identical_spec_twice_replays_from_cache_byte_identically() {
    let srv = TestServer::start("replay", |_| {});
    let spec = tiny_spec("replay");

    let first = submit_and_wait(&srv.client, &spec);
    let status1 = srv.client.job_status(&first).unwrap();
    assert_eq!(state_of(&status1), "done");
    assert_eq!(status1.get("cache_hits").unwrap().as_u64(), Some(0));
    assert_eq!(status1.get("cache_misses").unwrap().as_u64(), Some(2));
    let manifest1 = srv.client.manifest(&first).unwrap();
    let parsed = Manifest::parse(&manifest1).expect("manifest validates");
    assert_eq!(parsed.cells.len(), 2);

    let second = submit_and_wait(&srv.client, &spec);
    assert_ne!(first, second, "a replay is still a new job");
    let status2 = srv.client.job_status(&second).unwrap();
    assert_eq!(state_of(&status2), "done");
    assert_eq!(
        status2.get("cache_hits").unwrap().as_u64(),
        Some(2),
        "every cell answered from the cache: {}",
        status2.render()
    );
    assert_eq!(status2.get("cache_misses").unwrap().as_u64(), Some(0));
    let manifest2 = srv.client.manifest(&second).unwrap();
    assert_eq!(manifest1, manifest2, "byte-identical replay");

    let server_status = srv.client.server_status().unwrap();
    assert_eq!(counter(&server_status, "serve_cache_hits"), 2);
    assert_eq!(counter(&server_status, "serve_cache_misses"), 2);
    assert_eq!(counter(&server_status, "serve_manifest_cache_hits"), 1);
    assert_eq!(counter(&server_status, "serve_jobs_done"), 2);
    srv.stop();
}

/// A changed spec (different scheme column) shares the baseline cell
/// but must re-simulate the new column — the cache key includes the
/// fully-resolved configuration.
#[test]
fn changed_variant_hits_only_shared_cells() {
    let srv = TestServer::start("partial", |_| {});
    let first = submit_and_wait(&srv.client, &tiny_spec("partial"));
    assert_eq!(state_of(&srv.client.job_status(&first).unwrap()), "done");

    let changed = WireSpec::baseline_grid(
        "partial",
        Size::Default,
        &[App::Mp3d],
        &[Scheme::Sequential { degree: 2 }],
    )
    .to_json()
    .render();
    let second = submit_and_wait(&srv.client, &changed);
    let status = srv.client.job_status(&second).unwrap();
    assert_eq!(state_of(&status), "done");
    assert_eq!(
        status.get("cache_hits").unwrap().as_u64(),
        Some(1),
        "baseline cell shared"
    );
    assert_eq!(
        status.get("cache_misses").unwrap().as_u64(),
        Some(1),
        "Seq(d=2) cell fresh"
    );
    srv.stop();
}

/// Cancelling a running job stops it at the next cell boundary.
#[test]
fn cancellation_lands_mid_job() {
    let srv = TestServer::start("cancel-mid", |cfg| {
        cfg.cell_delay_ms = 300;
    });
    let spec = multi_variant_spec("cancel-mid", 6, None);
    let job = srv.client.submit(&spec).expect("submit accepted");
    let client = srv.client.clone();
    let mut cancelled = false;
    client
        .watch(&job, |line| {
            // First per-cell event: the job is demonstrably mid-run.
            if !cancelled && line.contains("\"cell\"") {
                cancelled = true;
                srv.client.cancel(&job).expect("cancel accepted");
            }
        })
        .expect("event stream");
    let status = srv.client.job_status(&job).unwrap();
    assert_eq!(state_of(&status), "cancelled");
    let done = status.get("cells_done").unwrap().as_u64().unwrap();
    assert!(
        (1..6).contains(&done),
        "cancelled mid-job after {done} of 6 cells"
    );
    srv.stop();
}

/// Cancelling a queued job never runs it at all.
#[test]
fn queued_jobs_cancel_immediately() {
    let srv = TestServer::start("cancel-queued", |cfg| {
        cfg.cell_delay_ms = 300;
    });
    let running = srv
        .client
        .submit(&multi_variant_spec("front", 4, None))
        .unwrap();
    let queued = srv.client.submit(&tiny_spec("waiting")).unwrap();
    let doc = srv.client.cancel(&queued).expect("cancel accepted");
    assert_eq!(state_of(&doc), "cancelled");
    assert_eq!(doc.get("cells_done").unwrap().as_u64(), Some(0));
    srv.client
        .cancel(&running)
        .expect("cancel the front job too");
    srv.client.watch(&running, |_| {}).unwrap();
    srv.stop();
}

/// A full queue rejects submissions with 429 (backpressure), and the
/// rejection is counted.
#[test]
fn full_queue_rejects_with_429() {
    let srv = TestServer::start("backpressure", |cfg| {
        cfg.cell_delay_ms = 300;
        cfg.queue_depth = 1;
    });
    let running = srv
        .client
        .submit(&multi_variant_spec("hog", 6, None))
        .unwrap();
    // Wait until the worker has picked the first job up, so the next
    // submission occupies the queue's single slot deterministically.
    loop {
        let s = srv.client.job_status(&running).unwrap();
        if state_of(&s) == "running" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let queued = srv.client.submit(&tiny_spec("fills-queue")).unwrap();
    let (status, body) = srv
        .client
        .post("/jobs", Some(&tiny_spec("rejected")))
        .unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue full"), "{body}");
    let server_status = srv.client.server_status().unwrap();
    assert_eq!(counter(&server_status, "serve_jobs_rejected"), 1);
    srv.client.cancel(&queued).unwrap();
    srv.client.cancel(&running).unwrap();
    srv.client.watch(&running, |_| {}).unwrap();
    srv.stop();
}

/// A job past its wall-clock budget stops at the next cell boundary.
#[test]
fn timeout_stops_at_cell_boundary() {
    let srv = TestServer::start("timeout", |cfg| {
        cfg.cell_delay_ms = 400;
    });
    let spec = multi_variant_spec("budgeted", 8, Some(1));
    let job = submit_and_wait(&srv.client, &spec);
    let status = srv.client.job_status(&job).unwrap();
    assert_eq!(state_of(&status), "timed-out", "{}", status.render());
    let done = status.get("cells_done").unwrap().as_u64().unwrap();
    assert!(done < 8, "stopped early after {done} cells");
    srv.stop();
}

/// The hardened API front door: malformed and invalid specs are 400
/// with a diagnostic, unknown jobs are 404, early manifests are 409.
#[test]
fn api_rejects_bad_input() {
    let srv = TestServer::start("hardened", |cfg| {
        cfg.cell_delay_ms = 200;
    });
    let (status, body) = srv.client.post("/jobs", Some("not json")).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("invalid spec"), "{body}");

    let mut doc = Json::parse(&tiny_spec("sneaky")).unwrap();
    if let Json::Object(members) = &mut doc {
        members.push(("rm_rf".to_string(), Json::Bool(true)));
    }
    let (status, body) = srv.client.post("/jobs", Some(&doc.render())).unwrap();
    assert_eq!(status, 400, "unknown fields are rejected: {body}");

    let (status, _) = srv.client.get("/jobs/job-999").unwrap();
    assert_eq!(status, 404);
    let (status, _) = srv.client.post("/jobs/job-999/cancel", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = srv.client.get("/nope").unwrap();
    assert_eq!(status, 404);

    let job = srv.client.submit(&tiny_spec("early")).unwrap();
    let (status, body) = srv.client.get(&format!("/jobs/{job}/manifest")).unwrap();
    assert_eq!(status, 409, "manifest before completion: {body}");
    srv.client.cancel(&job).unwrap();
    srv.client.watch(&job, |_| {}).unwrap();
    srv.stop();
}

/// Draining finishes queued work, refuses new work with 503, and the
/// server exits once everything is terminal.
#[test]
fn drain_finishes_queued_work_and_refuses_new() {
    let srv = TestServer::start("drain", |cfg| {
        cfg.cell_delay_ms = 100;
        cfg.queue_depth = 4;
    });
    let a = srv.client.submit(&tiny_spec("drain-a")).unwrap();
    let b = srv.client.submit(&tiny_spec("drain-b")).unwrap();
    srv.client.shutdown().expect("drain accepted");
    let (status, body) = srv.client.post("/jobs", Some(&tiny_spec("late"))).unwrap();
    assert_eq!(status, 503, "{body}");
    // Both pre-drain jobs still run to completion; the server may exit
    // the moment they finish, so watching is best-effort — the written,
    // validating manifests are the proof of completion.
    let _ = srv.client.watch(&a, |_| {});
    let _ = srv.client.watch(&b, |_| {});
    let results_dir = srv.results_dir.clone();
    let mut srv = srv;
    srv.thread.take().unwrap().join().expect("server exits");
    for name in ["drain-a", "drain-b"] {
        let path = results_dir.join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path).expect("drained job wrote its manifest");
        Manifest::parse(&text).expect("drained manifest validates");
    }
    let _ = std::fs::remove_dir_all(&results_dir);
}

/// `/status` exposes the service registry in the manifest snapshot
/// shape: counters and log2-bucket histograms.
#[test]
fn status_exposes_metrics_registry() {
    let srv = TestServer::start("metrics", |_| {});
    submit_and_wait(&srv.client, &tiny_spec("observed"));
    let doc = srv.client.server_status().unwrap();
    assert_eq!(doc.get("draining").unwrap().as_bool(), Some(false));
    assert_eq!(doc.get("workers").unwrap().as_u64(), Some(1));
    assert!(doc.get("queue_limit").unwrap().as_u64().unwrap() >= 1);
    let jobs = doc.get("jobs").unwrap();
    assert_eq!(jobs.get("done").unwrap().as_u64(), Some(1));
    assert!(counter(&doc, "serve_jobs_submitted") >= 1);
    assert!(counter(&doc, "serve_http_requests") >= 1);
    let hist = doc
        .get("metrics")
        .unwrap()
        .get("histograms")
        .unwrap()
        .get("serve_job_ms")
        .expect("per-phase wall-clock histograms");
    assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
    assert!(
        !hist.get("buckets").unwrap().as_array().unwrap().is_empty(),
        "log2 buckets present"
    );
    srv.stop();
}

/// The small determinism-anchor grid through the service: the full
/// 24-cell default grid totals exactly 14059066 pclocks (the BENCH_PR1
/// seed), and a re-submission replays it entirely from cache.
/// Minutes in debug builds — run explicitly or via the ci.sh serve
/// stage in release.
#[test]
#[ignore = "full 24-cell grid: run in release (ci.sh serve stage)"]
fn small_grid_anchor_through_the_service() {
    let srv = TestServer::start("anchor-small", |_| {});
    let spec = WireSpec::baseline_grid(
        "anchor-small",
        Size::Default,
        &App::ALL,
        &[
            Scheme::IDetection { degree: 1 },
            Scheme::DDetection { degree: 1 },
            Scheme::Sequential { degree: 1 },
        ],
    )
    .to_json()
    .render();
    let first = submit_and_wait(&srv.client, &spec);
    let manifest = Manifest::parse(&srv.client.manifest(&first).unwrap()).unwrap();
    assert_eq!(manifest.total_pclocks, 14059066, "BENCH_PR1 seed anchor");
    let second = submit_and_wait(&srv.client, &spec);
    let status = srv.client.job_status(&second).unwrap();
    assert_eq!(status.get("cache_hits").unwrap().as_u64(), Some(24));
    srv.stop();
}

/// The large anchor (BENCH_PR6 seed) through the service.
#[test]
#[ignore = "large grid: ~minutes even in release"]
fn large_grid_anchor_through_the_service() {
    let srv = TestServer::start("anchor-large", |_| {});
    let spec = WireSpec::baseline_grid(
        "anchor-large",
        Size::Large,
        &App::ALL,
        &[
            Scheme::IDetection { degree: 1 },
            Scheme::DDetection { degree: 1 },
            Scheme::Sequential { degree: 1 },
        ],
    )
    .to_json()
    .render();
    let job = submit_and_wait(&srv.client, &spec);
    let manifest = Manifest::parse(&srv.client.manifest(&job).unwrap()).unwrap();
    assert_eq!(manifest.total_pclocks, 151368054, "BENCH_PR6 seed anchor");
    srv.stop();
}
