//! I-detection stride prefetching: the Reference Prediction Table (§3.2,
//! Figures 3 and 4).

use pfsim_mem::{Addr, BlockAddr, Geometry, Pc};

use crate::{Prefetcher, ReadAccess};

/// Control state of one RPT entry — the Baer–Chen state-transition graph of
/// Figure 4.
///
/// The text of the paper describes the transitions as: a newly computed
/// stride puts the entry in `Init` and starts prefetching; a third
/// consecutive correct prediction reaches `Steady`; a single incorrect
/// prediction from `Steady` falls back to `Init` *without* recomputing the
/// stride; a second consecutive incorrect prediction moves to `Transient`
/// and recomputes the stride from the two preceding addresses; a third
/// consecutive incorrect prediction reaches `NoPref`, which stops issuing
/// prefetches for that instruction (the feature that keeps the scheme's
/// useless-prefetch count low).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RptState {
    /// A stride has just been computed (or a misprediction interrupted a
    /// steady stream); prefetching is active.
    Init,
    /// The instruction has followed the same stride repeatedly; prefetching
    /// is active.
    Steady,
    /// Two consecutive mispredictions; a fresh stride has been computed and
    /// is on probation; prefetching is active.
    Transient,
    /// Three consecutive mispredictions; prefetching for this instruction
    /// is disabled until the stride proves itself again.
    NoPref,
}

impl RptState {
    /// Whether prefetches are issued in this state.
    pub fn prefetches(self) -> bool {
        !matches!(self, RptState::NoPref)
    }
}

#[derive(Debug, Clone, Copy)]
struct RptEntry {
    /// Full instruction address, used as the tag.
    tag: u32,
    /// Data address of the previous access by this instruction.
    prev: Addr,
    /// Detected stride in bytes; `None` until the second access.
    stride: Option<i64>,
    state: RptState,
}

/// Configuration of the I-detection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IDetectionConfig {
    /// Degree of prefetching *d*.
    pub degree: u32,
    /// Number of RPT entries (direct-mapped). The paper (and Chen & Baer)
    /// use 256.
    pub entries: usize,
}

impl Default for IDetectionConfig {
    fn default() -> Self {
        IDetectionConfig {
            degree: 1,
            entries: 256,
        }
    }
}

/// I-detection stride prefetching.
///
/// Read requests presented to the SLC carry the instruction address of the
/// load that issued them; the RPT — a 256-entry direct-mapped cache indexed
/// by instruction address — tracks, per load instruction, the last data
/// address, the detected stride, and a control state ([`RptState`]).
///
/// Detection: the first *miss* by an instruction allocates its entry; the
/// second access computes the stride and starts prefetching (*B+S …
/// B+d·S*). Prefetch phase: a demand reference to a prefetched-tagged block
/// that hits in the RPT prefetches the block *d·S* bytes ahead, keeping the
/// stream exactly *d* blocks in front of the processor.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{Addr, BlockAddr, Geometry, Pc};
/// use pfsim_prefetch::{IDetection, IDetectionConfig, Prefetcher, ReadAccess, ReadOutcome};
///
/// let mut idet = IDetection::new(Geometry::paper(), IDetectionConfig::default());
/// let pc = Pc::new(0x400);
/// let mut out = Vec::new();
/// // First miss allocates the entry; second (one 64-byte stride later)
/// // detects S=64 and prefetches the block at +64 bytes:
/// idet.on_read(&ReadAccess { pc, addr: Addr::new(0x1000), outcome: ReadOutcome::Miss }, &mut out);
/// assert!(out.is_empty());
/// idet.on_read(&ReadAccess { pc, addr: Addr::new(0x1040), outcome: ReadOutcome::Miss }, &mut out);
/// assert_eq!(out, [BlockAddr::new(0x1080 / 32)]);
/// ```
#[derive(Debug, Clone)]
pub struct IDetection {
    geometry: Geometry,
    config: IDetectionConfig,
    table: Vec<Option<RptEntry>>,
    /// RPT probes (one per read presented to the scheme).
    lookups: u64,
    /// Probes that found a resident entry with a matching tag.
    hits: u64,
    /// Entries (re)allocated on an RPT miss.
    allocs: u64,
}

impl IDetection {
    /// Creates an I-detection prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `config.entries` is not a nonzero power of two.
    pub fn new(geometry: Geometry, config: IDetectionConfig) -> Self {
        assert!(
            config.entries.is_power_of_two(),
            "RPT entry count must be a power of two, got {}",
            config.entries
        );
        IDetection {
            geometry,
            config,
            table: vec![None; config.entries],
            lookups: 0,
            hits: 0,
            allocs: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> IDetectionConfig {
        self.config
    }

    /// The control state currently recorded for `pc`, if its entry is
    /// resident (exposed for tests and for the ablation reports).
    pub fn state_of(&self, pc: Pc) -> Option<RptState> {
        let idx = self.index(pc);
        self.table[idx]
            .as_ref()
            .filter(|e| e.tag == pc.as_u32())
            .map(|e| e.state)
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        // Instruction addresses are word-aligned; drop the low bits so
        // consecutive load sites spread over consecutive sets.
        ((pc.as_u32() >> 2) as usize) & (self.table.len() - 1)
    }

    /// Emits the blocks of `addr + k·stride` for `k = 1..=d`, page-clipped
    /// and skipping candidates that stay in the trigger's own block.
    fn push_stream(&self, addr: Addr, stride: i64, out: &mut Vec<BlockAddr>) {
        crate::emit::push_strided_range(self.geometry, addr, stride, 1, self.config.degree, out);
    }

    /// The block `d·stride` bytes ahead of `addr`, if it leaves the current
    /// block but stays in the page ("B+d*S+S" in the paper, with
    /// addr = B+S).
    fn push_ahead(&self, addr: Addr, stride: i64, out: &mut Vec<BlockAddr>) {
        crate::emit::push_strided_ahead(self.geometry, addr, stride, self.config.degree, out);
    }
}

impl Prefetcher for IDetection {
    fn on_read(&mut self, access: &ReadAccess, out: &mut Vec<BlockAddr>) {
        let idx = self.index(access.pc);
        let tag = access.pc.as_u32();
        self.lookups += 1;

        let Some(entry) = self.table[idx].as_mut().filter(|e| e.tag == tag) else {
            // RPT miss: allocate only for SLC misses ("the first time a
            // certain load instruction misses in the SLC").
            if access.outcome == crate::ReadOutcome::Miss {
                self.allocs += 1;
                self.table[idx] = Some(RptEntry {
                    tag,
                    prev: access.addr,
                    stride: None,
                    state: RptState::Init,
                });
            }
            return;
        };
        self.hits += 1;

        match entry.stride {
            None => {
                // Second access by this instruction: compute the stride,
                // enter Init, and begin prefetching.
                let stride = access.addr.stride_from(entry.prev);
                entry.prev = access.addr;
                if stride == 0 {
                    return;
                }
                entry.stride = Some(stride);
                entry.state = RptState::Init;
                self.push_stream(access.addr, stride, out);
            }
            Some(stride) => {
                let new_stride = access.addr.stride_from(entry.prev);
                let correct = new_stride == stride;
                let (next_state, recompute) = match (entry.state, correct) {
                    (RptState::Init, true) => (RptState::Steady, false),
                    (RptState::Init, false) => (RptState::Transient, true),
                    (RptState::Steady, true) => (RptState::Steady, false),
                    (RptState::Steady, false) => (RptState::Init, false),
                    (RptState::Transient, true) => (RptState::Steady, false),
                    (RptState::Transient, false) => (RptState::NoPref, true),
                    (RptState::NoPref, true) => (RptState::Transient, false),
                    (RptState::NoPref, false) => (RptState::NoPref, true),
                };
                let stride = if recompute && new_stride != 0 {
                    entry.stride = Some(new_stride);
                    new_stride
                } else {
                    stride
                };
                entry.state = next_state;
                entry.prev = access.addr;
                let state = entry.state;

                if !state.prefetches() || stride == 0 {
                    return;
                }
                if access.outcome.continues_stream() && correct {
                    // Prefetch phase: keep the stream d blocks ahead.
                    self.push_ahead(access.addr, stride, out);
                } else if access.outcome == crate::ReadOutcome::Miss {
                    // (Re)start the stream: either detection just finished
                    // or a prefetch was dropped and the stream must catch
                    // up.
                    self.push_stream(access.addr, stride, out);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "I-det"
    }

    fn telemetry(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("rpt_lookups", self.lookups));
        out.push(("rpt_hits", self.hits));
        out.push(("rpt_allocs", self.allocs));
    }

    fn reset(&mut self) {
        self.table.iter_mut().for_each(|e| *e = None);
        self.lookups = 0;
        self.hits = 0;
        self.allocs = 0;
    }

    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReadOutcome;
    use pfsim_mem::SplitMix64;

    const PC: Pc = Pc::new(0x400);

    fn idet(degree: u32) -> IDetection {
        IDetection::new(
            Geometry::paper(),
            IDetectionConfig {
                degree,
                entries: 256,
            },
        )
    }

    fn read(i: &mut IDetection, addr: u64, outcome: ReadOutcome) -> Vec<u64> {
        let mut out = Vec::new();
        i.on_read(
            &ReadAccess {
                pc: PC,
                addr: Addr::new(addr),
                outcome,
            },
            &mut out,
        );
        out.into_iter().map(|b| b.as_u64()).collect()
    }

    #[test]
    fn detection_takes_two_misses() {
        let mut i = idet(1);
        // Stride of 2 blocks (64 bytes).
        assert!(read(&mut i, 0x1000, ReadOutcome::Miss).is_empty());
        assert_eq!(read(&mut i, 0x1040, ReadOutcome::Miss), [0x1080 / 32]);
        assert_eq!(i.state_of(PC), Some(RptState::Init));
    }

    #[test]
    fn three_in_a_row_reaches_steady() {
        let mut i = idet(1);
        read(&mut i, 0x1000, ReadOutcome::Miss);
        read(&mut i, 0x1040, ReadOutcome::Miss);
        read(&mut i, 0x1080, ReadOutcome::Miss);
        assert_eq!(i.state_of(PC), Some(RptState::Steady));
    }

    #[test]
    fn single_mispredict_from_steady_keeps_stride() {
        let mut i = idet(1);
        for addr in [0x1000, 0x1040, 0x1080, 0x10c0] {
            read(&mut i, addr, ReadOutcome::Miss);
        }
        assert_eq!(i.state_of(PC), Some(RptState::Steady));
        // Jump elsewhere once: Steady -> Init, stride still 0x40.
        read(&mut i, 0x5000, ReadOutcome::Miss);
        assert_eq!(i.state_of(PC), Some(RptState::Init));
        // A correct prediction from the new position (stride kept at 0x40):
        let out = read(&mut i, 0x5040, ReadOutcome::Miss);
        assert_eq!(i.state_of(PC), Some(RptState::Steady));
        assert_eq!(out, [0x5080 / 32]);
    }

    #[test]
    fn three_mispredictions_shut_prefetching_off() {
        let mut i = idet(1);
        read(&mut i, 0x1000, ReadOutcome::Miss);
        read(&mut i, 0x1040, ReadOutcome::Miss); // stride 0x40, Init
        read(&mut i, 0x3000, ReadOutcome::Miss); // incorrect #1: Transient
        assert_eq!(i.state_of(PC), Some(RptState::Transient));
        read(&mut i, 0x7000, ReadOutcome::Miss); // incorrect #2: NoPref
        assert_eq!(i.state_of(PC), Some(RptState::NoPref));
        // In NoPref, no prefetches are issued even though strides keep
        // being computed.
        assert!(read(&mut i, 0x9000, ReadOutcome::Miss).is_empty());
        assert_eq!(i.state_of(PC), Some(RptState::NoPref));
    }

    #[test]
    fn nopref_recovers_after_correct_predictions() {
        let mut i = idet(1);
        // Drive into NoPref with erratic addresses.
        for addr in [0x1000, 0x1040, 0x3000, 0x7000] {
            read(&mut i, addr, ReadOutcome::Miss);
        }
        assert_eq!(i.state_of(PC), Some(RptState::NoPref));
        // Two more erratic accesses recompute a small stride (0x40)...
        read(&mut i, 0x9000, ReadOutcome::Miss);
        read(&mut i, 0x9040, ReadOutcome::Miss);
        assert_eq!(i.state_of(PC), Some(RptState::NoPref));
        // ...and one correct prediction re-enables prefetching.
        let out = read(&mut i, 0x9080, ReadOutcome::Miss);
        assert_eq!(i.state_of(PC), Some(RptState::Transient));
        assert_eq!(out, [0x90c0 / 32]);
    }

    #[test]
    fn tagged_hit_prefetches_d_blocks_ahead() {
        let mut i = idet(2);
        // Detect stride = 1 block.
        read(&mut i, 0x1000, ReadOutcome::Miss);
        let first = read(&mut i, 0x1020, ReadOutcome::Miss);
        assert_eq!(first, [0x1040 / 32, 0x1060 / 32]);
        // Hit on the tagged block at 0x1040: the next stream block is
        // d·S = 0x40 bytes ahead, i.e. 0x1080 (0x1040/0x1060 are already
        // prefetched).
        let next = read(&mut i, 0x1040, ReadOutcome::HitPrefetched);
        assert_eq!(next, [0x1080 / 32]);
    }

    #[test]
    fn sub_block_strides_prefetch_nothing_new() {
        let mut i = idet(1);
        // Stride of 8 bytes: all candidates stay in the trigger block.
        read(&mut i, 0x1000, ReadOutcome::Miss);
        assert!(read(&mut i, 0x1008, ReadOutcome::Miss).is_empty());
        assert!(read(&mut i, 0x1010, ReadOutcome::Miss).is_empty());
    }

    #[test]
    fn zero_stride_never_trains() {
        let mut i = idet(1);
        read(&mut i, 0x1000, ReadOutcome::Miss);
        assert!(read(&mut i, 0x1000, ReadOutcome::Miss).is_empty());
        assert!(read(&mut i, 0x1000, ReadOutcome::Miss).is_empty());
    }

    #[test]
    fn negative_strides_work() {
        let mut i = idet(1);
        read(&mut i, 0x2000, ReadOutcome::Miss);
        let out = read(&mut i, 0x1fc0, ReadOutcome::Miss);
        assert_eq!(out, [0x1f80 / 32]);
    }

    #[test]
    fn page_boundary_clips_stream() {
        let mut i = idet(4);
        // Stride of 1 block reaching the last block of page 0 (0x0fe0):
        // every candidate would land in page 1 and must be dropped.
        read(&mut i, 0x0fc0, ReadOutcome::Miss);
        let out = read(&mut i, 0x0fe0, ReadOutcome::Miss);
        assert!(out.is_empty(), "0x1000.. is the next page: {out:?}");
    }

    #[test]
    fn conflicting_pcs_evict_each_other() {
        let mut i = idet(1);
        let pc_a = Pc::new(0x400);
        let pc_b = Pc::new(0x400 + 256 * 4); // same RPT set
        let mut out = Vec::new();
        i.on_read(
            &ReadAccess {
                pc: pc_a,
                addr: Addr::new(0x1000),
                outcome: ReadOutcome::Miss,
            },
            &mut out,
        );
        assert!(i.state_of(pc_a).is_some());
        i.on_read(
            &ReadAccess {
                pc: pc_b,
                addr: Addr::new(0x9000),
                outcome: ReadOutcome::Miss,
            },
            &mut out,
        );
        // pc_b displaced pc_a.
        assert!(i.state_of(pc_a).is_none());
        assert!(i.state_of(pc_b).is_some());
    }

    #[test]
    fn distinct_pcs_track_interleaved_streams() {
        let mut i = idet(1);
        let pc_a = Pc::new(0x400);
        let pc_b = Pc::new(0x500);
        let mut results = Vec::new();
        // Interleave two stride sequences, as a loop with two loads would.
        for k in 0..4u64 {
            for (pc, base, stride) in [(pc_a, 0x1000, 0x20), (pc_b, 0x80000, 0x40)] {
                let mut out = Vec::new();
                i.on_read(
                    &ReadAccess {
                        pc,
                        addr: Addr::new(base + k * stride),
                        outcome: ReadOutcome::Miss,
                    },
                    &mut out,
                );
                results.extend(out.into_iter().map(|b| b.as_u64()));
            }
        }
        // Both streams detected and prefetched without interference.
        assert!(results.contains(&(0x1040 / 32)));
        assert!(results.contains(&(0x80080 / 32)));
        assert_eq!(i.state_of(pc_a), Some(RptState::Steady));
        assert_eq!(i.state_of(pc_b), Some(RptState::Steady));
    }

    #[test]
    fn reset_clears_all_entries() {
        let mut i = idet(1);
        read(&mut i, 0x1000, ReadOutcome::Miss);
        i.reset();
        assert_eq!(i.state_of(PC), None);
    }

    /// Whatever the access pattern, candidates never leave the page of
    /// the trigger and never equal the trigger block (seeded cases).
    #[test]
    fn candidates_in_page_and_not_self() {
        let mut rng = SplitMix64::seed_from_u64(0x1de71);
        for _case in 0..64 {
            let len = rng.random_range(1usize..100);
            let addrs: Vec<u64> = (0..len)
                .map(|_| rng.random_range(0u64..(1 << 24)))
                .collect();
            let degree = rng.random_range(1u32..8);
            let g = Geometry::paper();
            let mut i = IDetection::new(
                g,
                IDetectionConfig {
                    degree,
                    entries: 64,
                },
            );
            for &a in &addrs {
                let mut out = Vec::new();
                let access = ReadAccess {
                    pc: PC,
                    addr: Addr::new(a),
                    outcome: ReadOutcome::Miss,
                };
                i.on_read(&access, &mut out);
                let trigger = g.block_of(Addr::new(a));
                for b in out {
                    assert!(g.same_page(trigger, b));
                    assert_ne!(b, trigger);
                }
            }
        }
    }

    /// A perfect stride sequence never leaves Init/Steady after
    /// detection, and from the third access onward every miss
    /// prefetches (seeded cases).
    #[test]
    fn perfect_sequences_stay_trained() {
        let mut rng = SplitMix64::seed_from_u64(0x1de72);
        for _case in 0..64 {
            let stride = rng.random_range(1i64..2048);
            let len = rng.random_range(3usize..40);
            let g = Geometry::paper();
            let mut i = IDetection::new(
                g,
                IDetectionConfig {
                    degree: 1,
                    entries: 256,
                },
            );
            let base: u64 = 1 << 20;
            for k in 0..len {
                let addr = Addr::new(base + (k as u64) * (stride as u64));
                let mut out = Vec::new();
                i.on_read(
                    &ReadAccess {
                        pc: PC,
                        addr,
                        outcome: ReadOutcome::Miss,
                    },
                    &mut out,
                );
                if k >= 2 {
                    let s = i.state_of(PC).unwrap();
                    assert!(matches!(s, RptState::Init | RptState::Steady));
                }
            }
        }
    }
}
