//! A small fully-associative LRU table.

/// A bounded key→value table with least-recently-used replacement.
///
/// The D-detection scheme keeps four of these (miss list, stride frequency
/// table, list of common strides, stream list), each 16 entries with LRU
/// replacement. At these sizes a vector scan beats any pointer structure,
/// and the scan order doubles as the recency order: index 0 is the most
/// recently used entry.
///
/// # Examples
///
/// ```
/// use pfsim_prefetch::LruTable;
///
/// let mut t: LruTable<i64, u32> = LruTable::new(2);
/// t.insert(10, 1);
/// t.insert(20, 2);
/// t.get_mut(&10);    // touch 10: now 20 is the LRU entry
/// t.insert(30, 3);   // evicts 20
/// assert!(t.contains(&10) && t.contains(&30) && !t.contains(&20));
/// ```
#[derive(Debug, Clone)]
pub struct LruTable<K, V> {
    /// Most recent first.
    entries: Vec<(K, V)>,
    capacity: usize,
}

impl<K: PartialEq, V> LruTable<K, V> {
    /// Creates a table of at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an LRU table needs at least one entry");
        LruTable {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Looks `key` up *without* promoting it.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks `key` up, promoting it to most-recently-used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        // Promote with a single rotate (one memmove) rather than
        // remove + insert (two).
        self.entries[..=pos].rotate_right(1);
        Some(&mut self.entries[0].1)
    }

    /// Whether `key` is present (no promotion).
    pub fn contains(&self, key: &K) -> bool {
        self.peek(key).is_some()
    }

    /// Inserts or replaces `key`, promoting it to most-recently-used, and
    /// returns the entry evicted to make room (if any).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries[pos] = (key, value);
            self.entries[..=pos].rotate_right(1);
            return None;
        }
        if self.entries.len() == self.capacity {
            // Rotate the LRU slot to the front and reuse it.
            self.entries.rotate_right(1);
            return Some(std::mem::replace(&mut self.entries[0], (key, value)));
        }
        self.entries.push((key, value));
        self.entries.rotate_right(1);
        None
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates entries from most to least recently used.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates entries mutably, most recently used first, without
    /// reordering.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> + '_ {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Clears the table.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::SplitMix64;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = LruTable::new(4);
        t.insert("a", 1);
        assert_eq!(t.peek(&"a"), Some(&1));
        *t.get_mut(&"a").unwrap() = 2;
        assert_eq!(t.peek(&"a"), Some(&2));
    }

    #[test]
    fn eviction_removes_least_recent() {
        let mut t = LruTable::new(3);
        t.insert(1, ());
        t.insert(2, ());
        t.insert(3, ());
        t.get_mut(&1); // order: 1,3,2
        let evicted = t.insert(4, ());
        assert_eq!(evicted, Some((2, ())));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn reinsert_promotes_without_eviction() {
        let mut t = LruTable::new(2);
        t.insert(1, 'a');
        t.insert(2, 'b');
        assert_eq!(t.insert(1, 'c'), None);
        assert_eq!(t.peek(&1), Some(&'c'));
        // 2 is now the LRU entry.
        assert_eq!(t.insert(3, 'd'), Some((2, 'b')));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut t = LruTable::new(2);
        t.insert(1, ());
        t.insert(2, ());
        t.peek(&1);
        // 1 is still the LRU entry despite the peek.
        assert_eq!(t.insert(3, ()), Some((1, ())));
    }

    #[test]
    fn remove_and_clear() {
        let mut t = LruTable::new(2);
        t.insert(1, 'x');
        assert_eq!(t.remove(&1), Some('x'));
        assert_eq!(t.remove(&1), None);
        t.insert(2, 'y');
        t.clear();
        assert!(t.is_empty());
    }

    /// The table never exceeds capacity and always retains the
    /// `capacity` most recently touched distinct keys (seeded cases).
    #[test]
    fn retains_most_recent_keys() {
        let mut rng = SplitMix64::seed_from_u64(0x112a);
        for _case in 0..64 {
            let len = rng.random_range(1usize..100);
            let keys: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..20)).collect();
            let cap = 4usize;
            let mut t = LruTable::new(cap);
            for &k in &keys {
                t.insert(k, ());
                assert!(t.len() <= cap);
            }
            // Compute the expected resident set: last `cap` distinct keys.
            let mut expected = Vec::new();
            for &k in keys.iter().rev() {
                if !expected.contains(&k) {
                    expected.push(k);
                }
                if expected.len() == cap {
                    break;
                }
            }
            for k in expected {
                assert!(t.contains(&k));
            }
        }
    }
}
