//! D-detection stride prefetching: Hagersten's data-address scheme (§3.2).

use pfsim_mem::{Addr, BlockAddr, Geometry};

use crate::{LruTable, Prefetcher, ReadAccess};

/// Configuration of the D-detection scheme.
///
/// The paper's implementation gives the miss list, the frequency table, the
/// list of common strides and the stream list 16 entries each, all with LRU
/// replacement, and uses a stride threshold of 3: four misses belonging to
/// the same stride sequence are required before the stride is recorded as
/// common, and two further misses initiate prefetching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DDetectionConfig {
    /// Degree of prefetching *d* (the initial per-stream lookahead).
    pub degree: u32,
    /// Entries in each of the four tables.
    pub table_entries: usize,
    /// Number of times a stride must recur before becoming "common".
    pub stride_threshold: u32,
    /// Hagersten's adaptive lookahead (§6): "if the prefetched block is
    /// accessed before it has arrived, the number of blocks that are
    /// prefetched is increased", per stream, up to `max_depth`.
    pub adaptive_depth: bool,
    /// Per-stream lookahead cap when `adaptive_depth` is on.
    pub max_depth: u32,
}

impl Default for DDetectionConfig {
    fn default() -> Self {
        DDetectionConfig {
            degree: 1,
            table_entries: 16,
            stride_threshold: 3,
            adaptive_depth: false,
            max_depth: 8,
        }
    }
}

/// An active stride stream being prefetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stream {
    /// Byte address the stream is expected to reference next.
    next: Addr,
    /// Stride in bytes.
    stride: i64,
    /// Current lookahead depth in blocks of stride (starts at the degree;
    /// grows under adaptive lookahead when prefetches arrive late).
    depth: u32,
}

/// D-detection stride prefetching, after Hagersten.
///
/// Unlike I-detection, this scheme never sees the program counter: it must
/// recover stride sequences from the *data addresses* of read misses alone,
/// which makes the detection machinery heavier:
///
/// 1. each read miss is matched against the 16 most recent misses (the
///    **miss list**) and all pairwise strides are computed;
/// 2. each computed stride bumps a counter in the **frequency table**;
///    a stride reaching the *stride threshold* moves to the **list of
///    common strides**;
/// 3. a computed stride that is already common indicates a probable stride
///    sequence: an entry is installed in the **stream list** and
///    prefetching starts;
/// 4. the prefetching phase is the same tagged-block mechanism as the other
///    schemes: a demand reference to a prefetched block advances the
///    matching stream by one block and prefetches *d·S* bytes ahead.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{Addr, Geometry, Pc};
/// use pfsim_prefetch::{DDetection, DDetectionConfig, Prefetcher, ReadAccess, ReadOutcome};
///
/// let mut ddet = DDetection::new(Geometry::paper(), DDetectionConfig::default());
/// let mut out = Vec::new();
/// // Six equidistant misses: the first four train the frequency table
/// // (threshold 3), the next pair matches the now-common stride and
/// // triggers prefetching.
/// for k in 0..6u64 {
///     out.clear();
///     let access = ReadAccess {
///         pc: Pc::new(0),
///         addr: Addr::new(0x10000 + k * 64),
///         outcome: ReadOutcome::Miss,
///     };
///     ddet.on_read(&access, &mut out);
/// }
/// assert!(!out.is_empty(), "stream detected and prefetching started");
/// ```
#[derive(Debug, Clone)]
pub struct DDetection {
    geometry: Geometry,
    config: DDetectionConfig,
    /// Recent miss addresses, most recent first.
    miss_list: LruTable<Addr, ()>,
    /// Candidate strides and how often they have recurred.
    freq: LruTable<i64, u32>,
    /// Strides promoted past the threshold.
    common: LruTable<i64, ()>,
    /// Active streams keyed by the block they expect next.
    streams: LruTable<BlockAddr, Stream>,
    /// Scratch buffer reused across misses for the strides to bump
    /// (avoids a per-miss allocation in the hottest path).
    bump_scratch: Vec<i64>,
    /// Stream-list probes (one per miss or stream continuation).
    stream_lookups: u64,
    /// Probes that found a matching active stream.
    stream_hits: u64,
    /// Streams installed after stride detection.
    streams_installed: u64,
    /// Strides promoted from the frequency table to the common list.
    strides_promoted: u64,
}

impl DDetection {
    /// Creates a D-detection prefetcher.
    pub fn new(geometry: Geometry, config: DDetectionConfig) -> Self {
        DDetection {
            geometry,
            config,
            miss_list: LruTable::new(config.table_entries),
            freq: LruTable::new(config.table_entries),
            common: LruTable::new(config.table_entries),
            streams: LruTable::new(config.table_entries),
            bump_scratch: Vec::new(),
            stream_lookups: 0,
            stream_hits: 0,
            streams_installed: 0,
            strides_promoted: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DDetectionConfig {
        self.config
    }

    /// Number of strides currently recorded as common (for tests/reports).
    pub fn common_strides(&self) -> usize {
        self.common.len()
    }

    /// Number of active streams (for tests/reports).
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Pushes the blocks of `addr + k·stride` for `k = 1..=d`, page-clipped.
    fn push_stream(&self, addr: Addr, stride: i64, out: &mut Vec<BlockAddr>) {
        crate::emit::push_strided_range(self.geometry, addr, stride, 1, self.config.degree, out);
    }

    /// Advances the stream that expected `addr` (if any) and prefetches
    /// the next block(s) of it. `late` means the reference arrived before
    /// the prefetched block did (or missed outright): under adaptive
    /// lookahead the stream's depth grows. Returns whether a stream
    /// matched.
    fn advance_stream(&mut self, addr: Addr, late: bool, out: &mut Vec<BlockAddr>) -> bool {
        let block = self.geometry.block_of(addr);
        self.stream_lookups += 1;
        let Some(stream) = self.streams.remove(&block) else {
            return false;
        };
        self.stream_hits += 1;
        let stride = stream.stride;
        let old_depth = stream.depth;
        let depth = if self.config.adaptive_depth && late {
            (old_depth + 1).min(self.config.max_depth)
        } else {
            old_depth
        };
        // Re-arm the stream unless it walked off the address space.
        if let Some(raw) = stream.next.as_u64().checked_add_signed(stride) {
            let next = Addr::new(raw);
            self.streams.insert(
                self.geometry.block_of(next),
                Stream {
                    next,
                    stride,
                    depth,
                },
            );
        }
        // Prefetch phase: keep the stream `depth` strides ahead. When the
        // depth just grew, emit the extra catch-up block too.
        crate::emit::push_strided_range(self.geometry, addr, stride, old_depth, depth, out);
        true
    }

    fn on_miss(&mut self, addr: Addr, out: &mut Vec<BlockAddr>) {
        // A miss on a block a stream expected: the prefetch did not cover
        // it (dropped, page boundary, or too late) — advance the stream and
        // catch up.
        let advanced = self.advance_stream(addr, true, out);

        // Match against the miss list: compute every pairwise stride.
        let mut detected: Option<i64> = None;
        let mut to_bump = std::mem::take(&mut self.bump_scratch);
        to_bump.clear();
        for (prev, ()) in self.miss_list.iter() {
            let stride = addr.stride_from(*prev);
            if stride == 0 {
                continue;
            }
            if self.common.contains(&stride) {
                // Most recent matching miss wins (the list iterates most
                // recent first).
                if detected.is_none() {
                    detected = Some(stride);
                }
            } else {
                to_bump.push(stride);
            }
        }

        for &stride in &to_bump {
            let promoted = match self.freq.get_mut(&stride) {
                Some(count) => {
                    *count += 1;
                    *count >= self.config.stride_threshold
                }
                None => {
                    self.freq.insert(stride, 1);
                    self.config.stride_threshold <= 1
                }
            };
            if promoted {
                self.freq.remove(&stride);
                self.common.insert(stride, ());
                self.strides_promoted += 1;
            }
        }

        if let Some(stride) = detected {
            // Touch the common entry so useful strides stay resident.
            self.common.insert(stride, ());
            if !advanced {
                // Install a stream and start prefetching (unless the
                // stream would immediately leave the address space).
                if let Some(raw) = addr.as_u64().checked_add_signed(stride) {
                    let next = Addr::new(raw);
                    self.streams.insert(
                        self.geometry.block_of(next),
                        Stream {
                            next,
                            stride,
                            depth: self.config.degree,
                        },
                    );
                    self.streams_installed += 1;
                    self.push_stream(addr, stride, out);
                }
            }
        }

        self.miss_list.insert(addr, ());
        self.bump_scratch = to_bump;
    }
}

impl Prefetcher for DDetection {
    fn on_read(&mut self, access: &ReadAccess, out: &mut Vec<BlockAddr>) {
        if access.outcome == crate::ReadOutcome::Miss {
            self.on_miss(access.addr, out);
        } else if access.outcome.continues_stream() {
            // A merge into an in-flight prefetch means the prefetch was
            // issued too late: Hagersten's adaptive lookahead reacts here.
            let late = access.outcome == crate::ReadOutcome::InFlightPrefetch;
            self.advance_stream(access.addr, late, out);
        }
    }

    fn name(&self) -> &'static str {
        "D-det"
    }

    fn telemetry(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("stream_lookups", self.stream_lookups));
        out.push(("stream_hits", self.stream_hits));
        out.push(("streams_installed", self.streams_installed));
        out.push(("strides_promoted", self.strides_promoted));
    }

    fn reset(&mut self) {
        self.miss_list.clear();
        self.freq.clear();
        self.common.clear();
        self.streams.clear();
        self.stream_lookups = 0;
        self.stream_hits = 0;
        self.streams_installed = 0;
        self.strides_promoted = 0;
    }

    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReadOutcome;
    use pfsim_mem::{Pc, SplitMix64};

    fn ddet() -> DDetection {
        DDetection::new(Geometry::paper(), DDetectionConfig::default())
    }

    fn read(d: &mut DDetection, addr: u64, outcome: ReadOutcome) -> Vec<u64> {
        let mut out = Vec::new();
        d.on_read(
            &ReadAccess {
                pc: Pc::new(0),
                addr: Addr::new(addr),
                outcome,
            },
            &mut out,
        );
        out.into_iter().map(|b| b.as_u64()).collect()
    }

    /// Misses 0,S,2S,3S promote stride S to common (threshold 3); misses
    /// 4S,5S then detect the stream.
    #[test]
    fn stream_detected_after_threshold_plus_two() {
        let mut d = ddet();
        let stride = 64u64;
        let base = 0x100000u64;
        let mut first_prefetch = None;
        for k in 0..8 {
            let out = read(&mut d, base + k * stride, ReadOutcome::Miss);
            if !out.is_empty() && first_prefetch.is_none() {
                first_prefetch = Some(k);
            }
        }
        // Strides between non-adjacent misses (2S, 3S, ...) also count, so
        // S itself reaches the threshold at the 4th miss (k=3); detection
        // then needs one more miss whose stride from a recent miss is
        // common.
        let k = first_prefetch.expect("stream never detected");
        assert!((3..=5).contains(&k), "detected at miss {k}");
        assert_eq!(d.active_streams(), 1);
    }

    #[test]
    fn detected_stream_prefetches_ahead() {
        let mut d = ddet();
        let stride = 64u64; // 2 blocks
        let base = 0x100000u64;
        let mut out = Vec::new();
        for k in 0..6 {
            out = read(&mut d, base + k * stride, ReadOutcome::Miss);
        }
        // After detection at addr = base+5S, the next block (+S) is
        // prefetched.
        assert_eq!(out, [(0x100000 + 6 * 64) / 32]);
    }

    #[test]
    fn tagged_hit_advances_stream() {
        let mut d = ddet();
        let stride = 64u64;
        let base = 0x100000u64;
        for k in 0..6 {
            read(&mut d, base + k * stride, ReadOutcome::Miss);
        }
        // The stream expects base+6S; a tagged hit there prefetches +7S.
        let out = read(&mut d, base + 6 * stride, ReadOutcome::HitPrefetched);
        assert_eq!(out, [(base + 7 * stride) / 32]);
        // And the stream keeps walking.
        let out = read(&mut d, base + 7 * stride, ReadOutcome::InFlightPrefetch);
        assert_eq!(out, [(base + 8 * stride) / 32]);
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut d = ddet();
        // Pairwise-distinct strides: no stride ever recurs, nothing becomes
        // common.
        let addrs = [0x1000u64, 0x5078, 0x20110, 0x81238, 0x151000, 0x290ff8];
        for a in addrs {
            assert!(read(&mut d, a, ReadOutcome::Miss).is_empty());
        }
        assert_eq!(d.common_strides(), 0);
        assert_eq!(d.active_streams(), 0);
    }

    #[test]
    fn second_stream_with_known_stride_detects_quickly() {
        let mut d = ddet();
        let stride = 96u64; // 3 blocks
                            // First stream trains the stride into the common list.
        for k in 0..8 {
            read(&mut d, 0x100000 + k * stride, ReadOutcome::Miss);
        }
        assert!(d.common_strides() >= 1);
        // A brand-new stream with the same stride is detected at its
        // *second* miss ("two additional misses are required to initiate
        // prefetching").
        assert!(read(&mut d, 0x900000, ReadOutcome::Miss).is_empty());
        let out = read(&mut d, 0x900000 + stride, ReadOutcome::Miss);
        assert_eq!(out, [(0x900000 + 2 * stride) / 32]);
    }

    #[test]
    fn interleaved_streams_both_detected() {
        let mut d = ddet();
        let s = 64u64;
        let mut prefetched = Vec::new();
        for k in 0..10 {
            prefetched.extend(read(&mut d, 0x100000 + k * s, ReadOutcome::Miss));
            prefetched.extend(read(&mut d, 0x900000 + k * s, ReadOutcome::Miss));
        }
        assert!(prefetched.contains(&((0x100000 + 7 * 64) / 32)));
        assert!(prefetched.contains(&((0x900000 + 7 * 64) / 32)));
        assert_eq!(d.active_streams(), 2);
    }

    #[test]
    fn sub_block_strides_only_prefetch_adjacent_blocks() {
        let mut d = ddet();
        // Stride 8 bytes: a candidate lands in a new block only when the
        // stream approaches a block boundary, and then it is exactly the
        // next sequential block — a stride shorter than the block size
        // degenerates into sequential behaviour.
        for k in 0..16 {
            let addr = 0x100000 + k * 8;
            let trigger = addr / 32;
            for candidate in read(&mut d, addr, ReadOutcome::Miss) {
                assert_eq!(candidate, trigger + 1, "at access {k}");
            }
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = ddet();
        for k in 0..8 {
            read(&mut d, 0x100000 + k * 64, ReadOutcome::Miss);
        }
        d.reset();
        assert_eq!(d.common_strides(), 0);
        assert_eq!(d.active_streams(), 0);
        assert!(read(&mut d, 0x200000, ReadOutcome::Miss).is_empty());
    }

    /// Candidates never leave the page of the triggering access (seeded
    /// cases).
    #[test]
    fn candidates_stay_in_page() {
        let mut rng = SplitMix64::seed_from_u64(0xdde71);
        for _case in 0..64 {
            let len = rng.random_range(1usize..120);
            let addrs: Vec<u64> = (0..len)
                .map(|_| rng.random_range(0u64..(1 << 22)))
                .collect();
            let g = Geometry::paper();
            let mut d = ddet();
            for &a in &addrs {
                let mut out = Vec::new();
                d.on_read(
                    &ReadAccess {
                        pc: Pc::new(0),
                        addr: Addr::new(a),
                        outcome: ReadOutcome::Miss,
                    },
                    &mut out,
                );
                let trigger = g.block_of(Addr::new(a));
                for b in out {
                    assert!(g.same_page(trigger, b));
                    assert_ne!(b, trigger);
                }
            }
        }
    }

    /// A long perfect stride sequence is eventually covered: once
    /// detected, every subsequent miss or tagged hit prefetches the
    /// next block (seeded cases).
    #[test]
    fn perfect_sequence_is_covered() {
        let mut rng = SplitMix64::seed_from_u64(0xdde72);
        for _case in 0..64 {
            let stride_blocks = rng.random_range(1u64..8);
            let start_page = rng.random_range(0u64..64);
            let g = Geometry::paper();
            let mut d = ddet();
            let stride = stride_blocks * 32;
            let base = (start_page + 4096) * 4096;
            let mut detected = false;
            for k in 0..32u64 {
                let addr = base + k * stride;
                let outcome = if detected {
                    ReadOutcome::HitPrefetched
                } else {
                    ReadOutcome::Miss
                };
                let mut out = Vec::new();
                d.on_read(
                    &ReadAccess {
                        pc: Pc::new(0),
                        addr: Addr::new(addr),
                        outcome,
                    },
                    &mut out,
                );
                let next_in_page = g.same_page(
                    g.block_of(Addr::new(addr)),
                    g.block_of(Addr::new(addr + stride)),
                );
                if detected {
                    // Once a stream is running, it keeps prefetching while
                    // the next block stays in the page.
                    if next_in_page {
                        assert!(!out.is_empty(), "stream stalled at k={k}");
                    }
                } else if !out.is_empty() {
                    detected = true;
                }
            }
            assert!(detected, "stream never detected");
        }
    }
}

#[cfg(test)]
mod lru_tests {
    //! Eviction behavior of the four 16-entry LRU tables, pinned to the
    //! paper's configuration (16 entries each, stride threshold 3).

    use super::*;
    use crate::{ReadAccess, ReadOutcome};
    use pfsim_mem::{Pc, SplitMix64};

    fn ddet() -> DDetection {
        let d = DDetection::new(Geometry::paper(), DDetectionConfig::default());
        // These tests are only meaningful against the paper's tables.
        assert_eq!(d.config().table_entries, 16);
        assert_eq!(d.config().stride_threshold, 3);
        d
    }

    fn miss(d: &mut DDetection, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        d.on_read(
            &ReadAccess {
                pc: Pc::new(0),
                addr: Addr::new(addr),
                outcome: ReadOutcome::Miss,
            },
            &mut out,
        );
        out.into_iter().map(|b| b.as_u64()).collect()
    }

    /// The 17th miss pushes the oldest address out of the miss list; the
    /// 16 most recent stay resident.
    #[test]
    fn miss_list_evicts_the_oldest_past_16() {
        let mut d = ddet();
        // Geometric spacing: all pairwise strides distinct, so nothing
        // trains and the only state is the miss list itself.
        let addrs: Vec<u64> = (0..17u32)
            .map(|k| (0x10000u64 << (k / 2)) | (u64::from(k) * 32))
            .collect();
        for &a in &addrs {
            miss(&mut d, a);
        }
        assert_eq!(d.miss_list.len(), 16);
        assert!(
            !d.miss_list.contains(&Addr::new(addrs[0])),
            "oldest miss survived 16 newer ones"
        );
        for &a in &addrs[1..] {
            assert!(d.miss_list.contains(&Addr::new(a)), "{a:#x} evicted early");
        }
    }

    /// A trained common stride is evicted once 16 newer strides enter the
    /// list, after which a fresh sequence with that stride must retrain
    /// from scratch before prefetching resumes.
    #[test]
    fn common_stride_eviction_forces_retraining() {
        let mut d = ddet();
        let stride = 64u64;
        for k in 0..8 {
            miss(&mut d, 0x100000 + k * stride);
        }
        assert!(d.common.contains(&(stride as i64)), "stride never trained");

        // Quick re-detection while the stride is resident: a brand-new
        // sequence prefetches at its second miss.
        assert!(miss(&mut d, 0x900000).is_empty());
        assert!(!miss(&mut d, 0x900000 + stride).is_empty());

        // 16 newer common strides (none a multiple the training produced)
        // push the trained entry out — LRU, not random, replacement.
        for i in 0..16i64 {
            d.common.insert(1000 + 7 * i, ());
        }
        assert!(
            !d.common.contains(&(stride as i64)),
            "trained stride survived 16 newer common entries"
        );

        // Now the same stride at a fresh base is no longer recognized at
        // the second miss...
        let base = 0xa00000u64;
        assert!(miss(&mut d, base).is_empty());
        assert!(
            miss(&mut d, base + stride).is_empty(),
            "prefetched from an evicted common stride"
        );
        // ...but retrains: continuing the sequence re-promotes it and
        // prefetching resumes.
        let mut redetected = false;
        for k in 2..10 {
            if !miss(&mut d, base + k * stride).is_empty() {
                redetected = true;
                break;
            }
        }
        assert!(redetected, "stride never retrained after eviction");
        assert!(d.common.contains(&(stride as i64)));
    }

    /// 17 installed streams overflow the 16-entry stream list: the oldest
    /// stream dies, and a reference it expected no longer advances
    /// anything.
    #[test]
    fn stream_list_evicts_the_oldest_stream() {
        let mut d = ddet();
        let stride = 64u64;
        // Train the stride once...
        for k in 0..8 {
            miss(&mut d, 0x100000 + k * stride);
        }
        // ...then install 17 streams via two-miss detections at bases far
        // enough apart that no cross-sequence stride is ever common.
        let g = Geometry::paper();
        let bases: Vec<u64> = (0..17u64).map(|i| (0x900 + 5 * i) * 0x100000).collect();
        for &base in &bases {
            miss(&mut d, base);
            assert!(
                !miss(&mut d, base + stride).is_empty(),
                "stream at {base:#x} not installed"
            );
        }
        assert_eq!(d.streams.len(), 16, "stream list exceeded its capacity");
        // The first stream expected base+2S next; that entry is gone.
        let dead = g.block_of(Addr::new(bases[0] + 2 * stride));
        assert!(!d.streams.contains(&dead), "oldest stream survived");
        // And a tagged hit there no longer advances any stream.
        let mut out = Vec::new();
        d.on_read(
            &ReadAccess {
                pc: Pc::new(0),
                addr: Addr::new(bases[0] + 2 * stride),
                outcome: ReadOutcome::HitPrefetched,
            },
            &mut out,
        );
        assert!(out.is_empty(), "dead stream still prefetching: {out:?}");
        // The newest stream is alive.
        assert!(d
            .streams
            .contains(&g.block_of(Addr::new(bases[16] + 2 * stride))));
    }

    /// Under random miss hammering no table ever exceeds its configured
    /// 16 entries (seeded cases).
    #[test]
    fn tables_never_exceed_capacity() {
        let mut rng = SplitMix64::seed_from_u64(0xdde73);
        let mut d = ddet();
        for _ in 0..4000 {
            // A mix of short stride bursts and random addresses keeps all
            // four tables churning.
            let base = rng.random_range(0u64..(1 << 24)) & !31;
            let stride = u64::from(rng.random_range(1u32..5)) * 32;
            for k in 0..rng.random_range(1u64..5) {
                miss(&mut d, base + k * stride);
            }
            assert!(d.miss_list.len() <= 16);
            assert!(d.freq.len() <= 16);
            assert!(d.common.len() <= 16);
            assert!(d.streams.len() <= 16);
        }
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::{Prefetcher, ReadAccess, ReadOutcome};
    use pfsim_mem::Pc;

    fn adaptive() -> DDetection {
        DDetection::new(
            Geometry::paper(),
            DDetectionConfig {
                adaptive_depth: true,
                max_depth: 4,
                ..DDetectionConfig::default()
            },
        )
    }

    fn feed(d: &mut DDetection, addr: u64, outcome: ReadOutcome) -> Vec<u64> {
        let mut out = Vec::new();
        d.on_read(
            &ReadAccess {
                pc: Pc::new(0),
                addr: Addr::new(addr),
                outcome,
            },
            &mut out,
        );
        out.into_iter().map(|b| b.as_u64()).collect()
    }

    /// Consuming prefetched blocks *before they arrive* deepens the
    /// stream: the furthest prefetch target climbs (in strides ahead of
    /// the consumer) until it saturates at the cap. Detection-phase misses
    /// also count as "late", so the climb may begin during detection.
    #[test]
    fn late_consumption_grows_the_lookahead() {
        let mut d = adaptive();
        let stride = 64u64;
        let base = 0x100000u64;
        for k in 0..6 {
            feed(&mut d, base + k * stride, ReadOutcome::Miss);
        }
        let mut max_ahead = 0u64;
        for k in 6..14 {
            let addr = base + k * stride;
            let out = feed(&mut d, addr, ReadOutcome::InFlightPrefetch);
            assert!(!out.is_empty(), "stream stalled at k={k}");
            let furthest = out.iter().max().unwrap() * 32;
            let ahead = (furthest - addr) / stride;
            assert!(ahead >= max_ahead, "lookahead shrank at k={k}");
            max_ahead = ahead.max(max_ahead);
        }
        assert_eq!(max_ahead, 4, "lookahead should saturate at max_depth");
    }

    /// Timely consumption keeps the depth flat (one prefetch per hit).
    #[test]
    fn timely_consumption_keeps_depth_flat() {
        let mut d = adaptive();
        let stride = 64u64;
        let base = 0x100000u64;
        for k in 0..6 {
            feed(&mut d, base + k * stride, ReadOutcome::Miss);
        }
        for k in 6..12 {
            let out = feed(&mut d, base + k * stride, ReadOutcome::HitPrefetched);
            assert_eq!(out.len(), 1, "at k={k}: {out:?}");
        }
    }

    /// The depth saturates at `max_depth`.
    #[test]
    fn depth_saturates_at_the_cap() {
        let mut d = adaptive();
        let stride = 64u64;
        let base = 0x100000u64;
        for k in 0..6 {
            feed(&mut d, base + k * stride, ReadOutcome::Miss);
        }
        // Hammer with late consumptions far past the cap.
        let mut last = Vec::new();
        for k in 6..20 {
            last = feed(&mut d, base + k * stride, ReadOutcome::InFlightPrefetch);
        }
        // At saturation only the steady-state single block is emitted.
        assert_eq!(last.len(), 1, "{last:?}");
        let addr = base + 19 * stride;
        assert_eq!(last[0], (addr + 4 * stride) / 32);
    }

    /// The non-adaptive configuration is unaffected by late consumption.
    #[test]
    fn non_adaptive_ignores_lateness() {
        let mut d = DDetection::new(Geometry::paper(), DDetectionConfig::default());
        let stride = 64u64;
        let base = 0x100000u64;
        for k in 0..6 {
            feed(&mut d, base + k * stride, ReadOutcome::Miss);
        }
        for k in 6..12 {
            let out = feed(&mut d, base + k * stride, ReadOutcome::InFlightPrefetch);
            assert_eq!(out.len(), 1, "at k={k}");
        }
    }
}
