//! The interface between the SLC and a prefetching scheme.

use std::fmt;

use pfsim_mem::{Addr, BlockAddr, Geometry, Pc};

use crate::{
    AdaptiveSequential, DDetection, DDetectionConfig, IDetection, IDetectionConfig,
    SequentialPrefetcher,
};

/// How a read request presented to the SLC was resolved.
///
/// The prefetching mechanisms only observe block references that reach the
/// SLC (FLC hits are invisible to them), and their behaviour differs by
/// outcome: misses drive the detection phase, hits on *prefetched-tagged*
/// blocks drive the prefetching phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The block was present and not tagged as prefetched.
    Hit,
    /// The block was present and tagged: the tag is reset and the scheme is
    /// asked for the next block of the stream (the prefetch counts as
    /// useful).
    HitPrefetched,
    /// The block was absent: a demand miss that starts a memory transaction.
    Miss,
    /// The block was absent but a *demand* transaction for it was already
    /// outstanding; the request merges into it.
    InFlightDemand,
    /// The block was absent but a *prefetch* for it was already in flight;
    /// the demand merges into it (the prefetch counts as useful, and for
    /// stream continuation this behaves like [`ReadOutcome::HitPrefetched`]).
    InFlightPrefetch,
}

impl ReadOutcome {
    /// Whether the block was absent from the SLC (any kind of miss).
    pub fn is_absent(self) -> bool {
        matches!(
            self,
            ReadOutcome::Miss | ReadOutcome::InFlightDemand | ReadOutcome::InFlightPrefetch
        )
    }

    /// Whether this reference continues a prefetched stream (a demand
    /// reference to a block the prefetcher brought, or is bringing, in).
    pub fn continues_stream(self) -> bool {
        matches!(
            self,
            ReadOutcome::HitPrefetched | ReadOutcome::InFlightPrefetch
        )
    }
}

/// One read request presented to the SLC.
///
/// Carries the full byte address (stride detection operates on data
/// addresses, not block numbers) and, for I-detection, the program counter
/// of the load instruction that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadAccess {
    /// Instruction address of the load.
    pub pc: Pc,
    /// Data byte address.
    pub addr: Addr,
    /// How the SLC resolved the request.
    pub outcome: ReadOutcome,
}

/// A hardware prefetching scheme attached to the SLC.
///
/// Implementations are pure decision mechanisms: given the stream of read
/// requests presented to the SLC, they emit block-prefetch candidates. The
/// SLC is responsible for dropping candidates that are already present or
/// already in flight, and for tagging arriving blocks; schemes are
/// responsible for never proposing a block outside the page of the
/// triggering access.
pub trait Prefetcher: Send {
    /// Observes one read request and appends prefetch candidates to `out`.
    ///
    /// `out` is not cleared: the caller may batch candidates. Candidates
    /// are block numbers in proposal order; duplicates are allowed (the SLC
    /// filter drops them) but implementations avoid the obvious ones.
    fn on_read(&mut self, access: &ReadAccess, out: &mut Vec<BlockAddr>);

    /// Feedback from the cache: `issued` of the candidates proposed by the
    /// last [`on_read`](Self::on_read) call were actually sent to the
    /// memory system (the rest were already present, already in flight, or
    /// dropped for buffer space). Adaptive schemes use this as their
    /// cache-side issue counter; the default implementation ignores it.
    fn on_prefetches_issued(&mut self, issued: u32) {
        let _ = issued;
    }

    /// A short human-readable name ("Seq", "I-det", "D-det", …) used in
    /// reports.
    fn name(&self) -> &'static str;

    /// Appends `(counter, value)` telemetry pairs describing detection
    /// behaviour (table lookups, hits, installs, …). Names are stable
    /// metric identifiers; the observability layer sums pairs with the
    /// same name across nodes. The default implementation exports
    /// nothing.
    fn telemetry(&self, out: &mut Vec<(&'static str, u64)>) {
        let _ = out;
    }

    /// Forgets all detection state (used between measurement phases).
    fn reset(&mut self);

    /// Deep-copies the scheme, detection tables and all, behind a fresh
    /// box. Checkpointing uses this to capture prefetcher state: a
    /// restored machine must replay bit-identically, so the copy carries
    /// every stream table, stride entry, and adaptation counter.
    fn clone_box(&self) -> Box<dyn Prefetcher>;
}

impl Clone for Box<dyn Prefetcher> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The baseline: no prefetching at all.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{Addr, Pc};
/// use pfsim_prefetch::{NoPrefetch, Prefetcher, ReadAccess, ReadOutcome};
///
/// let mut none = NoPrefetch;
/// let mut out = Vec::new();
/// none.on_read(
///     &ReadAccess { pc: Pc::new(0), addr: Addr::new(0), outcome: ReadOutcome::Miss },
///     &mut out,
/// );
/// assert!(out.is_empty());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPrefetch;

impl Prefetcher for NoPrefetch {
    fn on_read(&mut self, _access: &ReadAccess, _out: &mut Vec<BlockAddr>) {}

    fn name(&self) -> &'static str {
        "baseline"
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }
}

/// Configuration enum selecting one of the studied schemes.
///
/// This is the type experiment drivers put in their configuration structs;
/// [`Scheme::build`] instantiates the scheme.
///
/// # Examples
///
/// ```
/// use pfsim_mem::Geometry;
/// use pfsim_prefetch::Scheme;
///
/// let p = Scheme::Sequential { degree: 1 }.build(Geometry::paper());
/// assert_eq!(p.name(), "Seq");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No prefetching (the baseline architecture).
    None,
    /// Sequential prefetching of `degree` consecutive blocks.
    Sequential {
        /// Degree of prefetching *d*.
        degree: u32,
    },
    /// I-detection stride prefetching (RPT + Baer–Chen FSM).
    IDetection {
        /// Degree of prefetching *d*.
        degree: u32,
    },
    /// The "simplest stride scheme" of §3.2: prefetch from the second
    /// occurrence, no confirmation, no shut-off.
    SimpleStride {
        /// Degree of prefetching *d*.
        degree: u32,
    },
    /// D-detection stride prefetching (Hagersten).
    DDetection {
        /// Degree of prefetching *d*.
        degree: u32,
    },
    /// D-detection with Hagersten's adaptive per-stream lookahead (§6:
    /// the prefetch depth grows when prefetched blocks are referenced
    /// before they arrive).
    DDetectionAdaptive {
        /// Initial per-stream lookahead.
        degree: u32,
        /// Lookahead cap.
        max_depth: u32,
    },
    /// Adaptive sequential prefetching (§6 extension).
    AdaptiveSequential {
        /// Initial degree.
        initial_degree: u32,
        /// Maximum degree the adaptation may reach.
        max_degree: u32,
    },
}

impl Scheme {
    /// Instantiates the scheme for the given geometry.
    pub fn build(self, geometry: Geometry) -> Box<dyn Prefetcher> {
        match self {
            Scheme::None => Box::new(NoPrefetch),
            Scheme::Sequential { degree } => Box::new(SequentialPrefetcher::new(geometry, degree)),
            Scheme::IDetection { degree } => Box::new(IDetection::new(
                geometry,
                IDetectionConfig {
                    degree,
                    ..IDetectionConfig::default()
                },
            )),
            Scheme::SimpleStride { degree } => {
                Box::new(crate::SimpleStride::new(geometry, degree, 256))
            }
            Scheme::DDetection { degree } => Box::new(DDetection::new(
                geometry,
                DDetectionConfig {
                    degree,
                    ..DDetectionConfig::default()
                },
            )),
            Scheme::DDetectionAdaptive { degree, max_depth } => Box::new(DDetection::new(
                geometry,
                DDetectionConfig {
                    degree,
                    adaptive_depth: true,
                    max_depth,
                    ..DDetectionConfig::default()
                },
            )),
            Scheme::AdaptiveSequential {
                initial_degree,
                max_degree,
            } => Box::new(AdaptiveSequential::new(
                geometry,
                initial_degree,
                max_degree,
            )),
        }
    }

    /// The label used in the paper's figures ("I-det", "D-det", "Seq").
    pub fn label(self) -> &'static str {
        match self {
            Scheme::None => "baseline",
            Scheme::Sequential { .. } => "Seq",
            Scheme::IDetection { .. } => "I-det",
            Scheme::SimpleStride { .. } => "Simple",
            Scheme::DDetection { .. } => "D-det",
            Scheme::DDetectionAdaptive { .. } => "D-det-adapt",
            Scheme::AdaptiveSequential { .. } => "Adapt-Seq",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::None => write!(f, "baseline"),
            Scheme::Sequential { degree } => write!(f, "Seq(d={degree})"),
            Scheme::IDetection { degree } => write!(f, "I-det(d={degree})"),
            Scheme::SimpleStride { degree } => write!(f, "Simple(d={degree})"),
            Scheme::DDetection { degree } => write!(f, "D-det(d={degree})"),
            Scheme::DDetectionAdaptive { degree, max_depth } => {
                write!(f, "D-det-adapt(d={degree},max={max_depth})")
            }
            Scheme::AdaptiveSequential { max_degree, .. } => {
                write!(f, "Adapt-Seq(max={max_degree})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(ReadOutcome::Miss.is_absent());
        assert!(ReadOutcome::InFlightDemand.is_absent());
        assert!(ReadOutcome::InFlightPrefetch.is_absent());
        assert!(!ReadOutcome::Hit.is_absent());
        assert!(!ReadOutcome::HitPrefetched.is_absent());

        assert!(ReadOutcome::HitPrefetched.continues_stream());
        assert!(ReadOutcome::InFlightPrefetch.continues_stream());
        assert!(!ReadOutcome::Miss.continues_stream());
    }

    #[test]
    fn scheme_builds_every_variant() {
        let g = Geometry::paper();
        for (scheme, name) in [
            (Scheme::None, "baseline"),
            (Scheme::Sequential { degree: 2 }, "Seq"),
            (Scheme::IDetection { degree: 1 }, "I-det"),
            (Scheme::SimpleStride { degree: 1 }, "Simple"),
            (Scheme::DDetection { degree: 1 }, "D-det"),
            (
                Scheme::AdaptiveSequential {
                    initial_degree: 1,
                    max_degree: 8,
                },
                "Adapt-Seq",
            ),
        ] {
            assert_eq!(scheme.build(g).name(), name);
            assert_eq!(scheme.label(), name);
        }
    }

    #[test]
    fn display_includes_degree() {
        assert_eq!(Scheme::Sequential { degree: 4 }.to_string(), "Seq(d=4)");
        assert_eq!(Scheme::IDetection { degree: 1 }.to_string(), "I-det(d=1)");
    }
}
