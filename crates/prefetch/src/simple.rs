//! The "simplest stride prefetching scheme" of §3.2.
//!
//! The paper introduces I-detection with a minimal scheme before the
//! Baer–Chen FSM: the first miss by a load instruction records its
//! address; the second access computes the stride and *immediately*
//! prefetches — with no confirmation states and, crucially, no `no-pref`
//! state to shut a misbehaving instruction off. The paper notes it
//! "succeeds in detecting most strides, but has the drawback of producing
//! useless prefetches in situations where the same load instruction is
//! executed twice and the addresses do not form a stride sequence."
//!
//! It is included so the `ablation_detection` experiment can measure that
//! drawback against the full FSM.

use pfsim_mem::{Addr, BlockAddr, Geometry, Pc};

use crate::{Prefetcher, ReadAccess};

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u32,
    prev: Addr,
    stride: Option<i64>,
}

/// The two-state RPT of §3.2's opening description: *no-prefetch* until a
/// stride is computed, *prefetch* forever after — recomputing the stride
/// on every access and never giving up.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{Addr, BlockAddr, Geometry, Pc};
/// use pfsim_prefetch::{Prefetcher, ReadAccess, ReadOutcome, SimpleStride};
///
/// let mut s = SimpleStride::new(Geometry::paper(), 1, 256);
/// let mut out = Vec::new();
/// let access = |a| ReadAccess { pc: Pc::new(8), addr: Addr::new(a), outcome: ReadOutcome::Miss };
/// s.on_read(&access(0x1000), &mut out);
/// assert!(out.is_empty()); // first occurrence: no stride yet
/// s.on_read(&access(0x1040), &mut out);
/// assert_eq!(out, [BlockAddr::new(0x1080 / 32)]); // prefetching begins
/// ```
#[derive(Debug, Clone)]
pub struct SimpleStride {
    geometry: Geometry,
    degree: u32,
    table: Vec<Option<Entry>>,
}

impl SimpleStride {
    /// Creates a simple-stride prefetcher with an `entries`-entry
    /// direct-mapped table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(geometry: Geometry, degree: u32, entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        SimpleStride {
            geometry,
            degree,
            table: vec![None; entries],
        }
    }

    fn index(&self, pc: Pc) -> usize {
        ((pc.as_u32() >> 2) as usize) & (self.table.len() - 1)
    }
}

impl Prefetcher for SimpleStride {
    fn on_read(&mut self, access: &ReadAccess, out: &mut Vec<BlockAddr>) {
        let idx = self.index(access.pc);
        let tag = access.pc.as_u32();
        let Some(entry) = self.table[idx].as_mut().filter(|e| e.tag == tag) else {
            if access.outcome == crate::ReadOutcome::Miss {
                self.table[idx] = Some(Entry {
                    tag,
                    prev: access.addr,
                    stride: None,
                });
            }
            return;
        };

        // Recompute the stride on every access — the scheme never
        // confirms and never stops.
        let stride = access.addr.stride_from(entry.prev);
        entry.prev = access.addr;
        if stride == 0 {
            return;
        }
        entry.stride = Some(stride);

        if access.outcome.continues_stream() {
            // Shared prefetch phase: one block d·S ahead.
            crate::emit::push_strided_ahead(self.geometry, access.addr, stride, self.degree, out);
        } else if access.outcome == crate::ReadOutcome::Miss {
            crate::emit::push_strided_range(
                self.geometry,
                access.addr,
                stride,
                1,
                self.degree,
                out,
            );
        }
    }

    fn name(&self) -> &'static str {
        "Simple"
    }

    fn reset(&mut self) {
        self.table.iter_mut().for_each(|e| *e = None);
    }

    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IDetection, IDetectionConfig, ReadOutcome};

    const PC: Pc = Pc::new(0x40);

    fn read(p: &mut dyn Prefetcher, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        p.on_read(
            &ReadAccess {
                pc: PC,
                addr: Addr::new(addr),
                outcome: ReadOutcome::Miss,
            },
            &mut out,
        );
        out.into_iter().map(|b| b.as_u64()).collect()
    }

    #[test]
    fn prefetches_from_the_second_access() {
        let mut s = SimpleStride::new(Geometry::paper(), 1, 64);
        assert!(read(&mut s, 0x1000).is_empty());
        assert_eq!(read(&mut s, 0x1040), [0x1080 / 32]);
        assert_eq!(read(&mut s, 0x1080), [0x10c0 / 32]);
    }

    #[test]
    fn never_stops_prefetching_on_erratic_streams() {
        // The drawback the paper describes: erratic addresses keep
        // producing (useless) prefetches, where the FSM scheme would have
        // entered NoPref.
        // Erratic but near: the strides vary, and the (useless) prefetch
        // candidates stay within the page, so they would actually issue.
        let erratic = [0x1000u64, 0x1100, 0x1060, 0x13c0, 0x1020, 0x1800];
        let mut simple = SimpleStride::new(Geometry::paper(), 1, 64);
        let mut fsm = IDetection::new(
            Geometry::paper(),
            IDetectionConfig {
                degree: 1,
                entries: 64,
            },
        );
        let mut simple_issued = 0;
        let mut fsm_issued = 0;
        for &a in &erratic {
            simple_issued += read(&mut simple, a).len();
            fsm_issued += read(&mut fsm, a).len();
        }
        assert!(
            simple_issued > fsm_issued,
            "simple {simple_issued} vs fsm {fsm_issued}"
        );
        // After the erratic run the FSM sits in NoPref and stays quiet on
        // the next small-stride pair, while the simple scheme fires
        // immediately.
        read(&mut simple, 0x200000);
        read(&mut fsm, 0x200000);
        assert!(!read(&mut simple, 0x200040).is_empty());
        assert!(read(&mut fsm, 0x200040).is_empty());
    }

    #[test]
    fn reset_forgets_entries() {
        let mut s = SimpleStride::new(Geometry::paper(), 1, 64);
        read(&mut s, 0x1000);
        s.reset();
        assert!(read(&mut s, 0x1040).is_empty()); // allocation, not stride
    }

    #[test]
    fn respects_page_boundaries() {
        let mut s = SimpleStride::new(Geometry::paper(), 1, 64);
        read(&mut s, 0x0f80);
        let out = read(&mut s, 0x0fe0); // stride 0x60: next would be 0x1040, page 1
        assert!(out.is_empty(), "{out:?}");
    }
}
