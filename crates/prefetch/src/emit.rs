//! Shared candidate-emission helpers for the prefetching phase.
//!
//! Every scheme obeys the same two rules when turning a detected pattern
//! into block candidates: never leave the page of the triggering access
//! (a useless prefetch must not page-fault, §2) and never propose the
//! trigger's own block. These helpers implement those rules once.

use pfsim_mem::{Addr, BlockAddr, Geometry};

/// Emits the blocks of `addr + k·stride` for `k = from..=to`, page-clipped
/// against the trigger's page, deduplicated against `out`, skipping the
/// trigger block itself. Used for the initial burst after stride detection
/// (`1..=d`) and for adaptive catch-up ranges.
pub(crate) fn push_strided_range(
    geometry: Geometry,
    addr: Addr,
    stride: i64,
    from: u32,
    to: u32,
    out: &mut Vec<BlockAddr>,
) {
    let trigger = geometry.block_of(addr);
    for k in from..=to {
        let Some(delta) = stride.checked_mul(i64::from(k)) else {
            break;
        };
        let Some(raw) = addr.as_u64().checked_add_signed(delta) else {
            break;
        };
        let candidate = geometry.block_of(Addr::new(raw));
        if candidate != trigger
            && geometry.same_page(trigger, candidate)
            && !out.contains(&candidate)
        {
            out.push(candidate);
        }
    }
}

/// Emits the single block `degree·stride` bytes ahead of `addr` (the
/// steady-state prefetch-phase target), page-clipped, skipping the
/// trigger's own block. Returns whether a candidate was emitted.
pub(crate) fn push_strided_ahead(
    geometry: Geometry,
    addr: Addr,
    stride: i64,
    degree: u32,
    out: &mut Vec<BlockAddr>,
) -> bool {
    let trigger = geometry.block_of(addr);
    let Some(delta) = stride.checked_mul(i64::from(degree)) else {
        return false;
    };
    let Some(raw) = addr.as_u64().checked_add_signed(delta) else {
        return false;
    };
    let candidate = geometry.block_of(Addr::new(raw));
    if candidate != trigger && geometry.same_page(trigger, candidate) {
        out.push(candidate);
        true
    } else {
        false
    }
}

/// Emits `block + offset` (in whole blocks) if it exists and stays in the
/// page; returns whether it was emitted. The sequential schemes' primitive.
pub(crate) fn push_block_offset(
    geometry: Geometry,
    block: BlockAddr,
    offset: i64,
    out: &mut Vec<BlockAddr>,
) -> bool {
    if offset == 0 {
        return false;
    }
    if let Some(candidate) = block.offset(offset) {
        if geometry.same_page(block, candidate) {
            out.push(candidate);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_clips_page_and_self() {
        let g = Geometry::paper();
        let mut out = Vec::new();
        // Stride of 1 block starting 2 blocks before the page end.
        push_strided_range(g, Addr::new(125 * 32), 32, 1, 8, &mut out);
        let got: Vec<u64> = out.iter().map(|b| b.as_u64()).collect();
        assert_eq!(got, [126, 127]);
    }

    #[test]
    fn range_dedups_sub_block_strides() {
        let g = Geometry::paper();
        let mut out = Vec::new();
        push_strided_range(g, Addr::new(0x1000), 8, 1, 8, &mut out);
        // 8-byte strides over 64 bytes: eight targets collapse onto the
        // two blocks after the trigger, each emitted once.
        let got: Vec<u64> = out.iter().map(|b| b.as_u64()).collect();
        assert_eq!(got, [0x81, 0x82]);
    }

    #[test]
    fn ahead_reports_emission() {
        let g = Geometry::paper();
        let mut out = Vec::new();
        assert!(push_strided_ahead(g, Addr::new(0x1000), 64, 2, &mut out));
        assert_eq!(out[0].as_u64(), (0x1000 + 128) / 32);
        // Same-block target: nothing emitted.
        assert!(!push_strided_ahead(g, Addr::new(0x1000), 4, 1, &mut out));
    }

    #[test]
    fn block_offset_handles_edges() {
        let g = Geometry::paper();
        let mut out = Vec::new();
        assert!(!push_block_offset(g, BlockAddr::new(5), 0, &mut out));
        assert!(!push_block_offset(g, BlockAddr::new(0), -1, &mut out));
        assert!(!push_block_offset(g, BlockAddr::new(127), 1, &mut out)); // next page
        assert!(push_block_offset(g, BlockAddr::new(5), 2, &mut out));
        assert_eq!(out, [BlockAddr::new(7)]);
    }
}
