//! Fixed-degree sequential prefetching (§3.4).

use pfsim_mem::{BlockAddr, Geometry};

use crate::{Prefetcher, ReadAccess};

/// Sequential prefetching: on a read miss to block *B*, prefetch
/// *B+1, B+2, …, B+d*; on a demand reference to a prefetched-tagged block,
/// prefetch the block *d* blocks ahead.
///
/// This is the simplest scheme in the study — it needs no detection
/// mechanism at all (in its original form just a counter per cache) — yet
/// the paper finds it does better than or as well as stride prefetching in
/// five of the six applications, because most strides are shorter than the
/// 32-byte block and because it also exploits the spatial locality of
/// non-stride misses.
///
/// Prefetches never cross the page of the triggering reference.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{Addr, BlockAddr, Geometry, Pc};
/// use pfsim_prefetch::{Prefetcher, ReadAccess, ReadOutcome, SequentialPrefetcher};
///
/// let mut seq = SequentialPrefetcher::new(Geometry::paper(), 2);
/// let mut out = Vec::new();
/// let miss = ReadAccess {
///     pc: Pc::new(0),
///     addr: Addr::new(64 * 32), // block 64
///     outcome: ReadOutcome::Miss,
/// };
/// seq.on_read(&miss, &mut out);
/// assert_eq!(out, [BlockAddr::new(65), BlockAddr::new(66)]);
///
/// // Later, a hit on tagged block 65 keeps the stream running:
/// out.clear();
/// let hit = ReadAccess { addr: Addr::new(65 * 32), outcome: ReadOutcome::HitPrefetched, ..miss };
/// seq.on_read(&hit, &mut out);
/// assert_eq!(out, [BlockAddr::new(67)]); // 65 + d
/// ```
#[derive(Debug, Clone)]
pub struct SequentialPrefetcher {
    geometry: Geometry,
    degree: u32,
    /// Stream continuations observed (tagged hits and in-flight merges).
    continuations: u64,
    /// Misses that restarted the stream.
    restarts: u64,
}

impl SequentialPrefetcher {
    /// Creates a sequential prefetcher of the given degree.
    ///
    /// A degree of zero produces no prefetches (equivalent to the baseline);
    /// the paper's main evaluation uses *d* = 1.
    pub fn new(geometry: Geometry, degree: u32) -> Self {
        SequentialPrefetcher {
            geometry,
            degree,
            continuations: 0,
            restarts: 0,
        }
    }

    /// The degree of prefetching *d*.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Emits `block + offset` if it exists and lies in the same page.
    fn push_if_same_page(&self, block: BlockAddr, offset: i64, out: &mut Vec<BlockAddr>) {
        crate::emit::push_block_offset(self.geometry, block, offset, out);
    }
}

impl Prefetcher for SequentialPrefetcher {
    fn on_read(&mut self, access: &ReadAccess, out: &mut Vec<BlockAddr>) {
        let block = self.geometry.block_of(access.addr);
        if access.outcome.continues_stream() {
            // Prefetch phase: the processor consumed a prefetched block;
            // fetch the block that appears d blocks ahead (none if d = 0).
            self.continuations += 1;
            if self.degree > 0 {
                self.push_if_same_page(block, i64::from(self.degree), out);
            }
        } else if access.outcome == crate::ReadOutcome::Miss {
            // Detection-free "detection" phase: prefetch the next d blocks.
            self.restarts += 1;
            for k in 1..=i64::from(self.degree) {
                self.push_if_same_page(block, k, out);
            }
        }
    }

    fn name(&self) -> &'static str {
        "Seq"
    }

    fn telemetry(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("seq_continuations", self.continuations));
        out.push(("seq_restarts", self.restarts));
    }

    fn reset(&mut self) {
        self.continuations = 0;
        self.restarts = 0;
    }

    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReadOutcome;
    use pfsim_mem::{Addr, Pc, SplitMix64};

    fn access(block: u64, outcome: ReadOutcome) -> ReadAccess {
        ReadAccess {
            pc: Pc::new(0x40),
            addr: Addr::new(block * 32),
            outcome,
        }
    }

    fn run(seq: &mut SequentialPrefetcher, a: ReadAccess) -> Vec<u64> {
        let mut out = Vec::new();
        seq.on_read(&a, &mut out);
        out.into_iter().map(|b| b.as_u64()).collect()
    }

    #[test]
    fn miss_prefetches_d_consecutive_blocks() {
        let mut seq = SequentialPrefetcher::new(Geometry::paper(), 4);
        assert_eq!(
            run(&mut seq, access(10, ReadOutcome::Miss)),
            [11, 12, 13, 14]
        );
    }

    #[test]
    fn plain_hits_produce_nothing() {
        let mut seq = SequentialPrefetcher::new(Geometry::paper(), 4);
        assert!(run(&mut seq, access(10, ReadOutcome::Hit)).is_empty());
        assert!(run(&mut seq, access(10, ReadOutcome::InFlightDemand)).is_empty());
    }

    #[test]
    fn tagged_hit_extends_stream_by_one() {
        let mut seq = SequentialPrefetcher::new(Geometry::paper(), 4);
        assert_eq!(run(&mut seq, access(11, ReadOutcome::HitPrefetched)), [15]);
        // A demand merging into an in-flight prefetch behaves the same.
        assert_eq!(
            run(&mut seq, access(12, ReadOutcome::InFlightPrefetch)),
            [16]
        );
    }

    #[test]
    fn never_crosses_page_boundary() {
        let mut seq = SequentialPrefetcher::new(Geometry::paper(), 4);
        // Blocks 126, 127 are the last of page 0 (128 blocks per page).
        assert_eq!(run(&mut seq, access(126, ReadOutcome::Miss)), [127]);
        assert!(run(&mut seq, access(127, ReadOutcome::Miss)).is_empty());
        assert!(run(&mut seq, access(127, ReadOutcome::HitPrefetched)).is_empty());
    }

    #[test]
    fn degree_zero_is_inert() {
        let mut seq = SequentialPrefetcher::new(Geometry::paper(), 0);
        assert!(run(&mut seq, access(10, ReadOutcome::Miss)).is_empty());
        assert!(run(&mut seq, access(10, ReadOutcome::HitPrefetched)).is_empty());
    }

    #[test]
    fn steady_state_stream_fetches_each_block_once() {
        // Walk blocks 0..32 sequentially with d=1: after the initial miss,
        // every reference is a tagged hit and prefetches exactly one new
        // block, one ahead.
        let mut seq = SequentialPrefetcher::new(Geometry::paper(), 1);
        let mut fetched = vec![];
        fetched.extend(run(&mut seq, access(0, ReadOutcome::Miss)));
        for b in 1..32 {
            fetched.extend(run(&mut seq, access(b, ReadOutcome::HitPrefetched)));
        }
        assert_eq!(fetched, (1..=32).collect::<Vec<u64>>());
    }

    /// All candidates stay within the page of the trigger, regardless of
    /// address, outcome or degree (seeded cases).
    #[test]
    fn candidates_always_in_trigger_page() {
        let mut rng = SplitMix64::seed_from_u64(0x5e91);
        for _case in 0..256 {
            let addr = rng.random_range(0u64..(1 << 30));
            let degree = rng.random_range(0u32..16);
            let tagged = rng.random_bool();
            let g = Geometry::paper();
            let mut seq = SequentialPrefetcher::new(g, degree);
            let outcome = if tagged {
                ReadOutcome::HitPrefetched
            } else {
                ReadOutcome::Miss
            };
            let mut out = Vec::new();
            seq.on_read(
                &ReadAccess {
                    pc: Pc::new(0),
                    addr: Addr::new(addr),
                    outcome,
                },
                &mut out,
            );
            let trigger = g.block_of(Addr::new(addr));
            for b in out {
                assert!(g.same_page(trigger, b));
                assert!(b.as_u64() > trigger.as_u64());
            }
        }
    }
}
