//! The hardware prefetching schemes studied by Dahlgren & Stenström
//! (HPCA 1995): sequential prefetching and two stride-prefetching schemes,
//! all attached to the second-level cache of a shared-memory multiprocessor
//! node.
//!
//! All schemes observe the same inputs — the read requests presented to the
//! SLC, each tagged with its outcome ([`ReadAccess`]) — and produce block
//! prefetch candidates through the common [`Prefetcher`] trait. They also
//! share one *prefetching-phase* mechanism (§3.3/§3.4 of the paper): blocks
//! brought in by prefetch carry a 1-bit tag in the SLC; a demand reference
//! to a tagged block resets the tag and asks the scheme for the next block
//! of the stream. That shared phase is what makes the comparison apples to
//! apples; only the *detection* phase differs:
//!
//! * [`SequentialPrefetcher`] — no detection at all: a miss on block *B*
//!   prefetches *B+1 … B+d* (§3.4).
//! * [`IDetection`] — a 256-entry direct-mapped Reference Prediction Table
//!   keyed by the load instruction's address, with the Baer–Chen four-state
//!   control FSM that shuts prefetching off after repeated mispredictions
//!   (§3.2, Figures 3 & 4).
//! * [`DDetection`] — Hagersten's data-address-only scheme: a miss list, a
//!   stride frequency table, a list of common strides and a stream list,
//!   each 16 entries with LRU replacement (§3.2).
//! * [`AdaptiveSequential`] — the §6 extension (from Dahlgren, Dubois &
//!   Stenström) that adjusts the sequential degree with a heuristic measure
//!   of prefetch usefulness; included as an ablation.
//!
//! Prefetching never crosses a 4 KB page boundary (so a useless prefetch can
//! never page-fault); the schemes enforce this themselves via [`Geometry`].
//!
//! [`Geometry`]: pfsim_mem::Geometry
//!
//! # Examples
//!
//! ```
//! use pfsim_mem::{Addr, BlockAddr, Geometry, Pc};
//! use pfsim_prefetch::{Prefetcher, ReadAccess, ReadOutcome, SequentialPrefetcher};
//!
//! let mut seq = SequentialPrefetcher::new(Geometry::paper(), 1);
//! let mut out = Vec::new();
//! seq.on_read(
//!     &ReadAccess {
//!         pc: Pc::new(0x100),
//!         addr: Addr::new(0x2000),
//!         outcome: ReadOutcome::Miss,
//!     },
//!     &mut out,
//! );
//! // Miss on block 0x100 prefetches the next sequential block:
//! assert_eq!(out, [BlockAddr::new(0x101)]);
//! ```

#![warn(missing_docs)]

mod adaptive;
mod api;
mod ddet;
mod emit;
mod idet;
mod lru;
mod sequential;
mod simple;

pub use adaptive::AdaptiveSequential;
pub use api::{NoPrefetch, Prefetcher, ReadAccess, ReadOutcome, Scheme};
pub use ddet::{DDetection, DDetectionConfig};
pub use idet::{IDetection, IDetectionConfig, RptState};
pub use lru::LruTable;
pub use sequential::SequentialPrefetcher;
pub use simple::SimpleStride;
