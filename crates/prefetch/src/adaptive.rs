//! Adaptive sequential prefetching — the §6 extension.

use pfsim_mem::{BlockAddr, Geometry};

use crate::{Prefetcher, ReadAccess, ReadOutcome};

/// Adaptive sequential prefetching, after Dahlgren, Dubois & Stenström
/// (ICPP 1993), discussed in §6 of the paper as the remedy for sequential
/// prefetching's weakness: useless prefetches in low-locality phases.
///
/// The mechanism counts, per adaptation window, how many issued prefetches
/// turned out useful (the demand reference to a tagged block). "Issued"
/// means requests that actually went to the memory system: the cache
/// reports real issues back through
/// [`Prefetcher::on_prefetches_issued`], so candidates the lookup filter
/// drops (already present or in flight) never bias the degree. When the
/// useful fraction is high the degree is doubled (up to `max_degree`); when
/// it is low the degree is halved, reaching zero — no prefetches at all —
/// for phases with no spatial locality. A zero degree is probed again
/// periodically so the scheme can recover when locality returns.
///
/// This scheme is not part of the paper's main comparison (the paper
/// deliberately fixes the prefetching phase across schemes); it is included
/// as the `ablation_adaptive` experiment.
///
/// # Examples
///
/// ```
/// use pfsim_mem::{Addr, Geometry, Pc};
/// use pfsim_prefetch::{AdaptiveSequential, Prefetcher, ReadAccess, ReadOutcome};
///
/// let mut ad = AdaptiveSequential::new(Geometry::paper(), 1, 8);
/// assert_eq!(ad.degree(), 1);
/// let mut out = Vec::new();
/// ad.on_read(
///     &ReadAccess { pc: Pc::new(0), addr: Addr::new(0x4000), outcome: ReadOutcome::Miss },
///     &mut out,
/// );
/// assert_eq!(out.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveSequential {
    geometry: Geometry,
    degree: u32,
    initial_degree: u32,
    max_degree: u32,
    /// Prefetches issued in the current window (as observed through
    /// outcomes; see below).
    issued: u32,
    /// Useful prefetches observed in the current window.
    useful: u32,
    /// Misses seen while the degree is zero, for periodic re-probing.
    dormant_misses: u32,
}

/// Adaptation window: re-evaluate the degree after this many issued
/// prefetches.
const WINDOW: u32 = 16;
/// Useful fraction above which the degree doubles (scaled to WINDOW).
const RAISE_AT: u32 = 12;
/// Useful fraction below which the degree halves (scaled to WINDOW).
const LOWER_AT: u32 = 6;
/// While dormant (degree 0), probe again after this many misses.
const PROBE_AFTER: u32 = 64;

impl AdaptiveSequential {
    /// Creates an adaptive sequential prefetcher.
    pub fn new(geometry: Geometry, initial_degree: u32, max_degree: u32) -> Self {
        AdaptiveSequential {
            geometry,
            degree: initial_degree.min(max_degree),
            initial_degree: initial_degree.min(max_degree),
            max_degree: max_degree.max(1),
            issued: 0,
            useful: 0,
            dormant_misses: 0,
        }
    }

    /// The current degree of prefetching.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    fn push_if_same_page(&self, block: BlockAddr, offset: i64, out: &mut Vec<BlockAddr>) -> bool {
        crate::emit::push_block_offset(self.geometry, block, offset, out)
    }

    fn record(&mut self, issued: u32, useful: u32) {
        self.issued += issued;
        self.useful += useful;
        if self.issued >= WINDOW {
            let scaled_useful = self.useful * WINDOW / self.issued;
            if scaled_useful >= RAISE_AT {
                self.degree = (self.degree * 2).clamp(1, self.max_degree);
            } else if scaled_useful < LOWER_AT {
                self.degree /= 2; // may reach zero: prefetching off
            }
            self.issued = 0;
            self.useful = 0;
        }
    }
}

impl Prefetcher for AdaptiveSequential {
    fn on_read(&mut self, access: &ReadAccess, out: &mut Vec<BlockAddr>) {
        let block = self.geometry.block_of(access.addr);
        match access.outcome {
            ReadOutcome::Miss => {
                if self.degree == 0 {
                    self.dormant_misses += 1;
                    if self.dormant_misses >= PROBE_AFTER {
                        self.dormant_misses = 0;
                        self.degree = 1; // probe: locality may have returned
                    } else {
                        return;
                    }
                }
                for k in 1..=i64::from(self.degree) {
                    self.push_if_same_page(block, k, out);
                }
            }
            ReadOutcome::HitPrefetched | ReadOutcome::InFlightPrefetch => {
                // A consumed prefetch: useful. Extend the stream if active.
                if self.degree > 0 {
                    self.push_if_same_page(block, i64::from(self.degree), out);
                }
                self.record(0, 1);
            }
            ReadOutcome::Hit | ReadOutcome::InFlightDemand => {}
        }
    }

    fn on_prefetches_issued(&mut self, issued: u32) {
        // The cache-side issue counter: only candidates that actually
        // became memory-system requests count toward the adaptation
        // window, so already-covered phases cannot bias the degree down.
        self.record(issued, 0);
    }

    fn name(&self) -> &'static str {
        "Adapt-Seq"
    }

    fn reset(&mut self) {
        self.degree = self.initial_degree;
        self.issued = 0;
        self.useful = 0;
        self.dormant_misses = 0;
    }

    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::{Addr, Pc};

    fn read(ad: &mut AdaptiveSequential, block: u64, outcome: ReadOutcome) -> Vec<u64> {
        let mut out = Vec::new();
        ad.on_read(
            &ReadAccess {
                pc: Pc::new(0),
                addr: Addr::new(block * 32),
                outcome,
            },
            &mut out,
        );
        // Emulate the cache issuing every candidate (nothing resident).
        if !out.is_empty() {
            ad.on_prefetches_issued(out.len() as u32);
        }
        out.into_iter().map(|b| b.as_u64()).collect()
    }

    #[test]
    fn degree_rises_under_perfect_locality() {
        let mut ad = AdaptiveSequential::new(Geometry::paper(), 1, 8);
        // A long sequential walk: one miss, then tagged hits forever.
        read(&mut ad, 0, ReadOutcome::Miss);
        for b in 1..200 {
            read(&mut ad, b % 128, ReadOutcome::HitPrefetched);
        }
        assert!(ad.degree() > 1, "degree stayed at {}", ad.degree());
        assert!(ad.degree() <= 8);
    }

    #[test]
    fn degree_falls_to_zero_under_no_locality() {
        let mut ad = AdaptiveSequential::new(Geometry::paper(), 4, 8);
        // Scattered misses whose prefetches are never consumed.
        for k in 0..64u64 {
            read(&mut ad, k * 1000, ReadOutcome::Miss);
        }
        assert_eq!(ad.degree(), 0);
    }

    #[test]
    fn dormant_prefetcher_probes_again() {
        let mut ad = AdaptiveSequential::new(Geometry::paper(), 4, 8);
        for k in 0..64u64 {
            read(&mut ad, k * 1000, ReadOutcome::Miss);
        }
        assert_eq!(ad.degree(), 0);
        // PROBE_AFTER misses later it tries degree 1 again.
        let mut probed = false;
        for k in 0..200u64 {
            if !read(&mut ad, 100_000 + k * 1000, ReadOutcome::Miss).is_empty() {
                probed = true;
                break;
            }
        }
        assert!(probed, "never probed after going dormant");
    }

    #[test]
    fn max_degree_is_respected() {
        let mut ad = AdaptiveSequential::new(Geometry::paper(), 1, 2);
        read(&mut ad, 0, ReadOutcome::Miss);
        for b in 1..500 {
            read(&mut ad, b % 128, ReadOutcome::HitPrefetched);
        }
        assert!(ad.degree() <= 2);
    }

    #[test]
    fn initial_degree_clamped_to_max() {
        let ad = AdaptiveSequential::new(Geometry::paper(), 16, 4);
        assert_eq!(ad.degree(), 4);
    }
}
