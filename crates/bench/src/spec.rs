//! The table-driven experiment API: an [`ExperimentSpec`] describes a
//! grid of application × configuration cells; a [`Runner`] executes it —
//! trace generation (cached, shared), simulation fan-out, progress
//! logging and the JSON run manifest all live here instead of being
//! re-implemented in every binary.
//!
//! A binary reduces to: declare the spec, run it, render its tables.
//!
//! ```no_run
//! use pfsim_bench::cli::{Args, SIZE_FLAGS};
//! use pfsim_bench::ExperimentSpec;
//! use pfsim_prefetch::Scheme;
//! use pfsim_workloads::App;
//!
//! let run = ExperimentSpec::new("figure6")
//!     .size(Args::parse("figure6", SIZE_FLAGS).size)
//!     .apps(App::ALL)
//!     .baseline_and(&[Scheme::Sequential { degree: 1 }])
//!     .run();
//! for row in run.by_app() {
//!     println!("{}: {} pclocks baseline", row[0].app, row[0].result.exec_cycles);
//! }
//! run.write_manifest().unwrap();
//! ```

pub mod wire;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use pfsim::{Checkpoint, Cycle, SimResult, System, SystemConfig};
use pfsim_check::ConsistencyOracle;
use pfsim_prefetch::Scheme;
use pfsim_workloads::{App, TraceCursor};

use crate::{cursor_for, par_map, shared_trace_for, Size};

/// One configuration column of an experiment grid.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Column label, used in progress logs and the manifest.
    pub label: String,
    /// The machine configuration this column simulates.
    pub cfg: SystemConfig,
    /// Per-variant problem-size override (`None` means the spec's size);
    /// Table 4 compares base against enlarged data sets this way.
    pub size: Option<Size>,
}

/// Declarative description of one experiment: a named grid of
/// applications × configuration variants at a problem size.
///
/// Built with the fluent methods below and executed by a [`Runner`]
/// (usually via [`ExperimentSpec::run`]). Cells run app-major, and by
/// default fan out across CPUs with the per-process trace cache ensuring
/// each `(app, size)` trace is generated once and shared zero-copy.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    pub(crate) name: String,
    pub(crate) size: Size,
    pub(crate) apps: Vec<App>,
    pub(crate) variants: Vec<Variant>,
    pub(crate) instrument: bool,
    pub(crate) parallel: bool,
    pub(crate) quiet: bool,
    pub(crate) threads: usize,
    pub(crate) warmup: u64,
    pub(crate) warmup_share: bool,
}

impl ExperimentSpec {
    /// A new spec named `name` (the manifest is written as
    /// `<name>.json`): default problem size, no apps, no variants,
    /// parallel execution, instrumentation from the `PFSIM_INSTRUMENT`
    /// environment variable.
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentSpec {
            name: name.into(),
            size: Size::Default,
            apps: Vec::new(),
            variants: Vec::new(),
            instrument: instrument_from_env(),
            parallel: true,
            quiet: false,
            threads: shards_from_env(),
            warmup: 0,
            warmup_share: true,
        }
    }

    /// Selects the problem size for every cell (per-variant overrides via
    /// [`variant_sized`](Self::variant_sized) win).
    pub fn size(mut self, size: Size) -> Self {
        self.size = size;
        self
    }

    /// Adds applications (grid rows).
    pub fn apps(mut self, apps: impl IntoIterator<Item = App>) -> Self {
        self.apps.extend(apps);
        self
    }

    /// Adds one configuration column.
    pub fn variant(mut self, label: impl Into<String>, cfg: SystemConfig) -> Self {
        self.variants.push(Variant {
            label: label.into(),
            cfg,
            size: None,
        });
        self
    }

    /// Adds one configuration column with its own problem size (the
    /// Table 4 base-vs-larger-data-set comparison).
    pub fn variant_sized(
        mut self,
        label: impl Into<String>,
        cfg: SystemConfig,
        size: Size,
    ) -> Self {
        self.variants.push(Variant {
            label: label.into(),
            cfg,
            size: Some(size),
        });
        self
    }

    /// Adds the paper-baseline column followed by one column per scheme
    /// (each the baseline machine with that prefetcher attached) — the
    /// standard Figure-6-style comparison.
    pub fn baseline_and(mut self, schemes: &[Scheme]) -> Self {
        self = self.variant("baseline", SystemConfig::paper_baseline());
        for &scheme in schemes {
            self = self.variant(
                scheme.to_string(),
                SystemConfig::paper_baseline().with_scheme(scheme),
            );
        }
        self
    }

    /// Forces the observability registry on (or off) for every cell,
    /// overriding `PFSIM_INSTRUMENT`.
    pub fn instrument(mut self, on: bool) -> Self {
        self.instrument = on;
        self
    }

    /// Runs cells one at a time on the calling thread (deterministic
    /// wall-clock attribution; the perfsmoke ledger needs this).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Runs every cell on the sharded event kernel with `n` worker
    /// threads (`<= 1` selects the serial kernel), overriding
    /// `PFSIM_SHARDS`. Results are bit-identical either way — this knob
    /// trades intra-run wall-clock against the grid-level fan-out.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Suppresses the per-cell progress lines on stderr.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Declares a warmup boundary at `pclocks` (0 disables, the default).
    ///
    /// A warmed cell runs its first `pclocks` with the prefetcher
    /// detached ([`Scheme::None`]), attaches the variant's scheme at the
    /// boundary with empty detection tables, and runs on — mirroring the
    /// paper's methodology of measuring every scheme over the same
    /// warmed-up machine. Because the warmup prefix is scheme-independent
    /// by construction, cells sharing an `(app, size, stripped-config)`
    /// prefix fork from one cached [`pfsim::Checkpoint`] instead of
    /// re-simulating it: an N-cell ablation costs 1 warmup + N deltas,
    /// bit-identical to simulating each warmed cell straight through
    /// (which [`warmup_straight`](Self::warmup_straight) forces, for
    /// validating exactly that).
    ///
    /// Warmed cells run cell-serially on the serial kernel (a checkpoint
    /// may carry a forked consistency oracle, which stays on one thread).
    pub fn warmup(mut self, pclocks: u64) -> Self {
        self.warmup = pclocks;
        self
    }

    /// Disables checkpoint sharing for a warmed spec: every cell
    /// re-simulates its warmup prefix from cold. Only useful for proving
    /// the checkpoint path bit-identical — it is strictly slower.
    pub fn warmup_straight(mut self) -> Self {
        self.warmup_share = false;
        self
    }

    /// Executes the spec with a default [`Runner`].
    pub fn run(self) -> ExperimentRun {
        Runner::new().execute(self)
    }
}

/// Whether `PFSIM_INSTRUMENT` asks for the observability registry.
fn instrument_from_env() -> bool {
    matches!(
        std::env::var("PFSIM_INSTRUMENT").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Worker-thread count per simulation from `PFSIM_SHARDS` (default 1:
/// the serial kernel).
fn shards_from_env() -> usize {
    std::env::var("PFSIM_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Whether `PFSIM_CHECK` asks for the online consistency oracle.
///
/// When on, every cell runs with a [`ConsistencyOracle`] installed and
/// the runner panics on the first violating cell. The oracle's hooks are
/// read-only with respect to simulator state, so enabling it never
/// changes a manifest's pclock totals — CI asserts exactly that.
fn check_from_env() -> bool {
    matches!(
        std::env::var("PFSIM_CHECK").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Executes [`ExperimentSpec`]s: generates (cached) traces, fans the
/// grid out over CPUs, logs progress, and owns the manifest output
/// directory (`PFSIM_RESULTS_DIR`, default `results/`).
#[derive(Debug, Clone)]
pub struct Runner {
    out_dir: PathBuf,
}

impl Runner {
    /// A runner writing manifests to `$PFSIM_RESULTS_DIR` (default
    /// `results/`).
    pub fn new() -> Self {
        let dir = std::env::var("PFSIM_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
        Runner {
            out_dir: dir.into(),
        }
    }

    /// A runner writing manifests to `dir`.
    pub fn with_out_dir(dir: impl Into<PathBuf>) -> Self {
        Runner {
            out_dir: dir.into(),
        }
    }

    /// Executes `spec`: the generation phase materializes every distinct
    /// `(app, size)` trace (in parallel unless the spec is
    /// [`serial`](ExperimentSpec::serial)), then the simulation phase
    /// runs the full grid app-major. Wall-clock is accounted per phase
    /// and per cell.
    pub fn execute(&self, spec: ExperimentSpec) -> ExperimentRun {
        let gen_start = Instant::now();
        let keys = trace_keys(&spec);
        let describe = |app: App, size: Size, cpus: u16| {
            let t = shared_trace_for(app, size, cpus);
            TraceInfo {
                app,
                size,
                cpus,
                ops: t.total_ops() as u64,
                packed_bytes: t.packed_bytes() as u64,
                bytes_per_op: t.bytes_per_op(),
            }
        };
        let traces = if spec.parallel && keys.len() > 1 {
            par_map(keys, |(app, size, cpus)| describe(app, size, cpus))
        } else {
            keys.into_iter()
                .map(|(a, s, c)| describe(a, s, c))
                .collect()
        };
        let gen_seconds = gen_start.elapsed().as_secs_f64();

        let sim_start = Instant::now();
        assert!(
            spec.warmup == 0 || spec.threads <= 1,
            "warmed specs run on the serial kernel (threads <= 1): the sharded kernel seeds \
             a cold machine and cannot resume a checkpoint"
        );
        let jobs: Vec<(usize, usize)> = (0..spec.apps.len())
            .flat_map(|a| (0..spec.variants.len()).map(move |v| (a, v)))
            .collect();
        let checked = check_from_env();
        let run_cell = |(app_idx, var_idx): (usize, usize),
                        ckpt: Option<&Checkpoint<TraceCursor>>| {
            let app = spec.apps[app_idx];
            let variant = &spec.variants[var_idx];
            let size = variant.size.unwrap_or(spec.size);
            let mut cfg = variant.cfg.clone();
            if spec.instrument {
                cfg = cfg.with_instrumentation(true);
            }
            let (geometry, nodes) = (cfg.geometry, cfg.nodes as usize);
            let start = Instant::now();
            let mut sys;
            let result;
            if spec.warmup > 0 {
                // Warmed cell: reach the boundary (by restoring the shared
                // checkpoint or by simulating the scheme-free prefix from
                // cold — bit-identical by construction), then attach the
                // variant's scheme and run on.
                let scheme = cfg.scheme;
                sys = match ckpt {
                    Some(c) => System::restore(c),
                    None => {
                        let cur = cursor_for(app, size, cfg.nodes);
                        let mut s = System::new(cfg.with_scheme(Scheme::None), cur);
                        if checked {
                            s.set_check_sink(Box::new(ConsistencyOracle::new(geometry, nodes)));
                        }
                        s.run_until(Cycle::new(spec.warmup));
                        s
                    }
                };
                sys.reconfigure_scheme(scheme);
                result = sys.run();
            } else {
                let cur = cursor_for(app, size, cfg.nodes);
                sys = System::new(cfg, cur);
                if checked {
                    sys.set_check_sink(Box::new(ConsistencyOracle::new(geometry, nodes)));
                }
                result = if spec.threads > 1 {
                    sys.run_threads(spec.threads)
                } else {
                    sys.run()
                };
            }
            let wall_seconds = start.elapsed().as_secs_f64();
            if checked {
                let oracle = sys
                    .take_check_sink()
                    .expect("sink installed above")
                    .into_any()
                    .downcast::<ConsistencyOracle>()
                    .expect("sink is the oracle");
                assert!(
                    oracle.ok(),
                    "[{}] {} × {}: consistency violations:\n{}",
                    spec.name,
                    app,
                    variant.label,
                    oracle.violations().join("\n")
                );
            }
            if !spec.quiet {
                eprintln!(
                    "[{}] {} × {}: {} pclocks in {:.1}s",
                    spec.name, app, variant.label, result.exec_cycles, wall_seconds
                );
            }
            CellResult {
                app,
                variant: var_idx,
                size,
                result,
                wall_seconds,
            }
        };
        let cells = if spec.warmup > 0 {
            // Warmed grids run cell-serial: checkpoints hold a forked
            // `CheckSink` (not `Send`), and the point is to build each
            // shared warm prefix exactly once anyway.
            let mut checkpoints: HashMap<String, Checkpoint<TraceCursor>> = HashMap::new();
            let mut out = Vec::with_capacity(jobs.len());
            for (app_idx, var_idx) in jobs {
                if !spec.warmup_share {
                    out.push(run_cell((app_idx, var_idx), None));
                    continue;
                }
                let app = spec.apps[app_idx];
                let variant = &spec.variants[var_idx];
                let size = variant.size.unwrap_or(spec.size);
                let mut cfg = variant.cfg.clone();
                if spec.instrument {
                    cfg = cfg.with_instrumentation(true);
                }
                let warm_cfg = cfg.with_scheme(Scheme::None);
                // `SystemConfig` has no `Hash`; its `Debug` form is a
                // faithful fingerprint of every field.
                let key = format!("{app_idx}|{size:?}|{warm_cfg:?}");
                if !checkpoints.contains_key(&key) {
                    let (geometry, nodes) = (warm_cfg.geometry, warm_cfg.nodes as usize);
                    let mut sys =
                        System::new(warm_cfg.clone(), cursor_for(app, size, warm_cfg.nodes));
                    if checked {
                        sys.set_check_sink(Box::new(ConsistencyOracle::new(geometry, nodes)));
                    }
                    sys.run_until(Cycle::new(spec.warmup));
                    let snap = sys
                        .snapshot()
                        .expect("warmup sinks (none or the oracle) all fork");
                    checkpoints.insert(key.clone(), snap);
                }
                out.push(run_cell((app_idx, var_idx), checkpoints.get(&key)));
            }
            out
        } else if spec.parallel && jobs.len() > 1 {
            par_map(jobs, |j| run_cell(j, None))
        } else {
            jobs.into_iter().map(|j| run_cell(j, None)).collect()
        };
        let sim_seconds = sim_start.elapsed().as_secs_f64();

        ExperimentRun {
            name: spec.name,
            size: spec.size,
            apps: spec.apps,
            variants: spec.variants,
            threads: spec.threads.max(1),
            cells,
            traces,
            gen_seconds,
            sim_seconds,
            sim_finished: Instant::now(),
            out_dir: self.out_dir.clone(),
        }
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

/// The distinct `(app, size, cpus)` traces `spec` needs, in first-use
/// order — each variant's processor count is its configured node count.
fn trace_keys(spec: &ExperimentSpec) -> Vec<(App, Size, u16)> {
    let mut keys: Vec<(App, Size, u16)> = Vec::new();
    let mut push = |key: (App, Size, u16)| {
        if !keys.contains(&key) {
            keys.push(key);
        }
    };
    for &app in &spec.apps {
        if spec.variants.is_empty() {
            // Trace-only experiment (the workload characterization
            // table): still generate and describe the traces, on the
            // paper's 16-processor machine.
            push((app, spec.size, 16));
        }
        for v in &spec.variants {
            push((app, v.size.unwrap_or(spec.size), v.cfg.nodes));
        }
    }
    keys
}

/// One simulated grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The application (grid row).
    pub app: App,
    /// Index into [`ExperimentRun::variants`] (grid column).
    pub variant: usize,
    /// The problem size this cell actually ran.
    pub size: Size,
    /// The simulation result.
    pub result: SimResult,
    /// Host wall-clock the cell took, in seconds.
    pub wall_seconds: f64,
}

/// Shape of one generated trace (for the manifest and the workload
/// table).
#[derive(Debug, Clone, Copy)]
pub struct TraceInfo {
    /// The application.
    pub app: App,
    /// The problem size.
    pub size: Size,
    /// Processors the trace was partitioned onto (the variant's node
    /// count).
    pub cpus: u16,
    /// Total operations across all processors.
    pub ops: u64,
    /// Resident bytes of the packed encoding.
    pub packed_bytes: u64,
    /// Amortized resident bytes per operation.
    pub bytes_per_op: f64,
}

/// The completed execution of an [`ExperimentSpec`]: every cell result
/// plus phase wall-clock, ready for rendering and for
/// [`write_manifest`](ExperimentRun::write_manifest).
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// The spec's name.
    pub name: String,
    /// The spec's default problem size.
    pub size: Size,
    /// Grid rows.
    pub apps: Vec<App>,
    /// Grid columns.
    pub variants: Vec<Variant>,
    /// Worker threads each cell's event kernel ran on (1 = serial
    /// kernel); recorded in the manifest as `threads`.
    pub threads: usize,
    /// Cell results, app-major (`apps.len() × variants.len()`).
    pub cells: Vec<CellResult>,
    /// The distinct traces the run generated.
    pub traces: Vec<TraceInfo>,
    /// Wall-clock of the trace-generation phase, in seconds.
    pub gen_seconds: f64,
    /// Wall-clock of the simulation phase, in seconds.
    pub sim_seconds: f64,
    pub(crate) sim_finished: Instant,
    pub(crate) out_dir: PathBuf,
}

impl ExperimentRun {
    /// Sum of simulated execution time over all cells, in pclocks (the
    /// perfsmoke ledger quantity).
    pub fn total_pclocks(&self) -> u64 {
        self.cells.iter().map(|c| c.result.exec_cycles).sum()
    }

    /// The cells of each application in spec order, one slice per app
    /// (each of `variants.len()` cells, variant-ordered).
    pub fn by_app(&self) -> impl Iterator<Item = &[CellResult]> {
        self.cells.chunks(self.variants.len().max(1))
    }

    /// The cell for `(app_idx, var_idx)`.
    pub fn cell(&self, app_idx: usize, var_idx: usize) -> &CellResult {
        &self.cells[app_idx * self.variants.len() + var_idx]
    }

    /// The trace description for `(app, size)`, if the run generated it.
    pub fn trace(&self, app: App, size: Size) -> Option<&TraceInfo> {
        self.traces.iter().find(|t| t.app == app && t.size == size)
    }

    /// The directory manifests are written to.
    pub fn out_dir(&self) -> &Path {
        &self.out_dir
    }

    /// Writes the JSON run manifest to `<out_dir>/<name>.json` and
    /// returns its path. The analyze-phase wall-clock is stamped as the
    /// time elapsed since simulation finished, so rendering/analysis
    /// done by the binary before this call is accounted.
    pub fn write_manifest(&self) -> std::io::Result<PathBuf> {
        let analyze_seconds = self.sim_finished.elapsed().as_secs_f64();
        let path = self.out_dir.join(format!("{}.json", self.name));
        std::fs::create_dir_all(&self.out_dir)?;
        let doc = crate::manifest::manifest_json(self, analyze_seconds);
        std::fs::write(&path, doc.render())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_prefetch::Scheme;

    #[test]
    fn spec_builder_accumulates() {
        let spec = ExperimentSpec::new("t")
            .size(Size::Paper)
            .apps([App::Mp3d, App::Water])
            .baseline_and(&[Scheme::Sequential { degree: 1 }])
            .variant_sized("large", SystemConfig::paper_baseline(), Size::Large)
            .serial()
            .threads(4)
            .quiet();
        assert_eq!(spec.threads, 4);
        assert_eq!(spec.apps, [App::Mp3d, App::Water]);
        assert_eq!(spec.variants.len(), 3);
        assert_eq!(spec.variants[0].label, "baseline");
        assert_eq!(spec.variants[1].label, "Seq(d=1)");
        assert_eq!(spec.variants[2].size, Some(Size::Large));
        assert!(!spec.parallel);
        assert!(spec.quiet);
    }

    #[test]
    fn trace_keys_dedup_and_honour_overrides() {
        let spec = ExperimentSpec::new("t")
            .apps([App::Mp3d, App::Water])
            .variant("a", SystemConfig::paper_baseline())
            .variant("b", SystemConfig::paper_baseline())
            .variant_sized("c", SystemConfig::paper_baseline(), Size::Paper);
        assert_eq!(
            trace_keys(&spec),
            vec![
                (App::Mp3d, Size::Default, 16),
                (App::Mp3d, Size::Paper, 16),
                (App::Water, Size::Default, 16),
                (App::Water, Size::Paper, 16),
            ]
        );
        // No variants: trace-only experiment still lists its apps.
        let spec = ExperimentSpec::new("t").apps([App::Lu]);
        assert_eq!(trace_keys(&spec), vec![(App::Lu, Size::Default, 16)]);
    }

    /// A big-mesh variant pulls a re-partitioned trace: the key carries
    /// its node count, distinct from the 16-processor column's.
    #[test]
    fn trace_keys_follow_variant_node_counts() {
        let spec = ExperimentSpec::new("t")
            .apps([App::Chase])
            .variant("4x4", SystemConfig::paper_baseline())
            .variant("8x8", SystemConfig::builder().mesh_dims(8, 8).build());
        assert_eq!(
            trace_keys(&spec),
            vec![
                (App::Chase, Size::Default, 16),
                (App::Chase, Size::Default, 64),
            ]
        );
    }
}
