//! The versioned wire format for [`ExperimentSpec`]s.
//!
//! PR 3's spec API is a Rust builder; anything that wants to *transport*
//! a spec — `pfsim-serve` accepting submissions, `pfsim-client` sending
//! them, `perfsmoke --spec` replaying one from disk — needs a typed,
//! validated JSON encoding instead of ad-hoc field plumbing. This module
//! is that encoding: schema v2 (v1 being the informal implied-by-code
//! form the run manifests grew out of), with an explicit
//! `wire_version` field, structured scheme objects instead of display
//! strings, strict validation (unknown fields are errors, so typos fail
//! loudly instead of silently running the wrong experiment), and exact
//! round-tripping through [`pfsim_analysis::Json`].
//!
//! # Examples
//!
//! ```
//! use pfsim_bench::spec::wire::WireSpec;
//! use pfsim_bench::Size;
//! use pfsim_prefetch::Scheme;
//! use pfsim_workloads::App;
//!
//! let spec = WireSpec::baseline_grid(
//!     "demo",
//!     Size::Default,
//!     &[App::Mp3d],
//!     &[Scheme::Sequential { degree: 1 }],
//! );
//! let text = spec.to_json().render();
//! assert_eq!(WireSpec::parse(&text).unwrap(), spec);
//! ```

use pfsim::{ConsistencyModel, SystemConfig};
use pfsim_analysis::Json;
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

use crate::{ExperimentSpec, Size};

/// The wire schema version this module reads and writes.
pub const WIRE_SCHEMA_VERSION: i64 = 2;

/// One configuration column of a wire spec: a scheme plus the studied
/// machine knobs, resolved against [`SystemConfig::paper_baseline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireVariant {
    /// Column label (used in progress events and the manifest).
    pub label: String,
    /// The prefetching scheme.
    pub scheme: Scheme,
    /// Finite SLC capacity in KB (`None` = the paper's infinite SLC).
    pub slc_kb: Option<u64>,
    /// Set-associative ways for a finite SLC (`None` = direct-mapped).
    pub slc_ways: Option<usize>,
    /// Coherence block size override in bytes.
    pub block_bytes: Option<u64>,
    /// Mesh dimensions override as `(width, height)` (`None` = the
    /// paper's 4×4 machine).
    pub mesh: Option<(u16, u16)>,
    /// Memory consistency model (release consistency by default).
    pub consistency: ConsistencyModel,
}

impl WireVariant {
    /// A variant running `scheme` on the otherwise-unmodified baseline.
    pub fn of_scheme(scheme: Scheme) -> Self {
        WireVariant {
            label: scheme.to_string(),
            scheme,
            slc_kb: None,
            slc_ways: None,
            block_bytes: None,
            mesh: None,
            consistency: ConsistencyModel::Release,
        }
    }

    /// The fully-resolved machine configuration of this variant.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::paper_baseline().with_scheme(self.scheme);
        if let Some(kb) = self.slc_kb {
            cfg = match self.slc_ways {
                Some(ways) => cfg.with_set_assoc_slc(kb * 1024, ways),
                None => cfg.with_finite_slc(kb * 1024),
            };
        }
        if let Some(bytes) = self.block_bytes {
            cfg = cfg.with_block_bytes(bytes);
        }
        if let Some((w, h)) = self.mesh {
            cfg = cfg.with_mesh_dims(w, h);
        }
        cfg.with_consistency(self.consistency)
    }
}

/// A transportable [`ExperimentSpec`]: everything a server (or a later
/// replay) needs to reproduce the grid bit-for-bit, and nothing
/// host-local (no output directories, no progress knobs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpec {
    /// Experiment name; becomes the manifest name, so it must be a safe
    /// file-name fragment (validated).
    pub name: String,
    /// Problem size of every cell.
    pub size: Size,
    /// Grid rows.
    pub apps: Vec<App>,
    /// Grid columns.
    pub variants: Vec<WireVariant>,
    /// Worker threads per simulation (1 = serial kernel). Not part of
    /// the result cache key: pclock totals are bit-identical either way.
    pub threads: usize,
    /// Warmup boundary in pclocks (0 = none).
    pub warmup: u64,
    /// Whether cells run with the observability registry on.
    pub instrument: bool,
    /// Per-job wall-clock timeout in seconds (`None` = the server's
    /// default policy).
    pub timeout_secs: Option<u64>,
}

impl WireSpec {
    /// The standard Figure-6-style grid: baseline plus one column per
    /// scheme, every knob at its default.
    pub fn baseline_grid(
        name: impl Into<String>,
        size: Size,
        apps: &[App],
        schemes: &[Scheme],
    ) -> Self {
        let mut variants = vec![WireVariant {
            label: "baseline".to_string(),
            ..WireVariant::of_scheme(Scheme::None)
        }];
        variants.extend(schemes.iter().map(|&s| WireVariant::of_scheme(s)));
        WireSpec {
            name: name.into(),
            size,
            apps: apps.to_vec(),
            variants,
            threads: 1,
            warmup: 0,
            instrument: false,
            timeout_secs: None,
        }
    }

    /// Serializes to the schema-v2 JSON document.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("wire_version", Json::Int(WIRE_SCHEMA_VERSION)),
            ("name", Json::str(&self.name)),
            ("size", Json::str(self.size.to_string())),
            (
                "apps",
                Json::Array(self.apps.iter().map(|a| Json::str(a.name())).collect()),
            ),
            (
                "variants",
                Json::Array(self.variants.iter().map(variant_json).collect()),
            ),
            ("threads", Json::uint(self.threads as u64)),
            ("warmup", Json::uint(self.warmup)),
            ("instrument", Json::Bool(self.instrument)),
        ];
        if let Some(t) = self.timeout_secs {
            members.push(("timeout_secs", Json::uint(t)));
        }
        Json::obj(members)
    }

    /// Parses and validates a schema-v2 wire document.
    pub fn parse(text: &str) -> Result<WireSpec, String> {
        let doc = Json::parse(text)?;
        WireSpec::from_json(&doc)
    }

    /// Validates and decodes an already-parsed wire document.
    pub fn from_json(doc: &Json) -> Result<WireSpec, String> {
        let obj = doc.as_object().ok_or("wire spec is not an object")?;
        reject_unknown_keys(
            obj,
            &[
                "wire_version",
                "name",
                "size",
                "apps",
                "variants",
                "threads",
                "warmup",
                "instrument",
                "timeout_secs",
            ],
            "spec",
        )?;
        let version = field(doc, "wire_version")?
            .as_i64()
            .ok_or("wire_version is not an integer")?;
        if version != WIRE_SCHEMA_VERSION {
            return Err(format!(
                "wire_version {version} (this build speaks {WIRE_SCHEMA_VERSION})"
            ));
        }
        let name = field(doc, "name")?
            .as_str()
            .ok_or("name is not a string")?
            .to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(format!(
                "name '{name}' is not a safe manifest name ([A-Za-z0-9._-]+)"
            ));
        }
        let size = Size::parse(field(doc, "size")?.as_str().ok_or("size is not a string")?)?;
        let apps = field(doc, "apps")?
            .as_array()
            .ok_or("apps is not an array")?
            .iter()
            .map(|a| {
                let name = a.as_str().ok_or("apps entry is not a string")?;
                app_by_name(name).ok_or(format!("unknown app '{name}'"))
            })
            .collect::<Result<Vec<App>, String>>()?;
        if apps.is_empty() {
            return Err("apps is empty".to_string());
        }
        let variants = field(doc, "variants")?
            .as_array()
            .ok_or("variants is not an array")?
            .iter()
            .enumerate()
            .map(|(i, v)| variant_from_json(v).map_err(|e| format!("variants[{i}]: {e}")))
            .collect::<Result<Vec<WireVariant>, String>>()?;
        if variants.is_empty() {
            return Err("variants is empty".to_string());
        }
        let threads = match doc.get("threads") {
            Some(v) => v.as_u64().ok_or("threads is not a u64")? as usize,
            None => 1,
        };
        let warmup = match doc.get("warmup") {
            Some(v) => v.as_u64().ok_or("warmup is not a u64")?,
            None => 0,
        };
        if warmup > 0 && threads > 1 {
            return Err("warmed specs run on the serial kernel (threads must be 1)".to_string());
        }
        let instrument = match doc.get("instrument") {
            Some(v) => v.as_bool().ok_or("instrument is not a bool")?,
            None => false,
        };
        let timeout_secs = match doc.get("timeout_secs") {
            Some(v) => {
                let t = v.as_u64().ok_or("timeout_secs is not a u64")?;
                if t == 0 {
                    return Err("timeout_secs 0 is meaningless (omit for no timeout)".to_string());
                }
                Some(t)
            }
            None => None,
        };
        Ok(WireSpec {
            name,
            size,
            apps,
            variants,
            threads,
            warmup,
            instrument,
            timeout_secs,
        })
    }

    /// The fully-resolved configuration of grid column `var_idx`
    /// (spec-level instrumentation applied) — the configuration half of
    /// a result-cache key.
    pub fn cell_config(&self, var_idx: usize) -> SystemConfig {
        self.variants[var_idx]
            .config()
            .with_instrumentation(self.instrument)
    }

    /// Lowers the wire form into a runnable [`ExperimentSpec`]
    /// (host-local knobs at their defaults; callers layer
    /// [`quiet`](ExperimentSpec::quiet)/[`serial`](ExperimentSpec::serial)
    /// on top).
    pub fn to_experiment_spec(&self) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(self.name.clone())
            .size(self.size)
            .apps(self.apps.iter().copied())
            .instrument(self.instrument)
            .threads(self.threads)
            .warmup(self.warmup);
        for v in &self.variants {
            spec = spec.variant(v.label.clone(), v.config());
        }
        spec
    }
}

/// Looks an application up by its table name (the paper's six plus the
/// modern families).
pub fn app_by_name(name: &str) -> Option<App> {
    App::EVERY.into_iter().find(|a| a.name() == name)
}

fn variant_json(v: &WireVariant) -> Json {
    let mut config = Vec::new();
    if let Some(kb) = v.slc_kb {
        config.push(("slc_kb".to_string(), Json::uint(kb)));
    }
    if let Some(ways) = v.slc_ways {
        config.push(("slc_ways".to_string(), Json::uint(ways as u64)));
    }
    if let Some(bytes) = v.block_bytes {
        config.push(("block_bytes".to_string(), Json::uint(bytes)));
    }
    if let Some((w, h)) = v.mesh {
        config.push(("mesh".to_string(), Json::str(format!("{w}x{h}"))));
    }
    if v.consistency == ConsistencyModel::Sequential {
        config.push(("consistency".to_string(), Json::str("sequential")));
    }
    Json::obj(vec![
        ("label", Json::str(&v.label)),
        ("scheme", scheme_to_json(v.scheme)),
        ("config", Json::Object(config)),
    ])
}

fn variant_from_json(v: &Json) -> Result<WireVariant, String> {
    let obj = v.as_object().ok_or("not an object")?;
    reject_unknown_keys(obj, &["label", "scheme", "config"], "variant")?;
    let label = field(v, "label")?
        .as_str()
        .ok_or("label is not a string")?
        .to_string();
    if label.is_empty() {
        return Err("label is empty".to_string());
    }
    let scheme = scheme_from_json(field(v, "scheme")?)?;
    let config = field(v, "config")?;
    let cfg_obj = config.as_object().ok_or("config is not an object")?;
    reject_unknown_keys(
        cfg_obj,
        &["slc_kb", "slc_ways", "block_bytes", "mesh", "consistency"],
        "config",
    )?;
    let slc_kb = match config.get("slc_kb") {
        Some(v) => Some(v.as_u64().ok_or("slc_kb is not a u64")?),
        None => None,
    };
    let slc_ways = match config.get("slc_ways") {
        Some(v) => {
            if slc_kb.is_none() {
                return Err("slc_ways without slc_kb".to_string());
            }
            Some(v.as_u64().ok_or("slc_ways is not a u64")? as usize)
        }
        None => None,
    };
    let block_bytes = match config.get("block_bytes") {
        Some(v) => {
            let b = v.as_u64().ok_or("block_bytes is not a u64")?;
            if !b.is_power_of_two() || !(32..=4096).contains(&b) {
                return Err(format!(
                    "block_bytes {b} is not a power of two in 32..=4096"
                ));
            }
            Some(b)
        }
        None => None,
    };
    let mesh = match config.get("mesh") {
        Some(v) => Some(parse_mesh(v.as_str().ok_or("mesh is not a string")?)?),
        None => None,
    };
    let consistency = match config.get("consistency") {
        None => ConsistencyModel::Release,
        Some(v) => match v.as_str() {
            Some("release") => ConsistencyModel::Release,
            Some("sequential") => ConsistencyModel::Sequential,
            _ => return Err("consistency is neither \"release\" nor \"sequential\"".to_string()),
        },
    };
    Ok(WireVariant {
        label,
        scheme,
        slc_kb,
        slc_ways,
        block_bytes,
        mesh,
        consistency,
    })
}

/// Parses a `"WxH"` mesh spelling, enforcing the directory's sharer
/// limit the same way [`SystemConfig::with_mesh_dims`] does — a bad mesh
/// fails validation instead of panicking mid-run.
fn parse_mesh(text: &str) -> Result<(u16, u16), String> {
    let (w, h) = text
        .split_once('x')
        .ok_or_else(|| format!("mesh '{text}' is not WxH"))?;
    let parse = |s: &str| {
        s.parse::<u16>()
            .ok()
            .filter(|&d| d > 0)
            .ok_or_else(|| format!("mesh '{text}' has a bad dimension '{s}'"))
    };
    let (w, h) = (parse(w)?, parse(h)?);
    let max = pfsim::MAX_SHARERS as u32;
    if u32::from(w) * u32::from(h) > max {
        return Err(format!("mesh '{text}' exceeds {max} nodes"));
    }
    Ok((w, h))
}

/// Encodes a scheme as a structured object (`{"kind": ..., ...}`), not
/// its display string — wire documents are parsed, never scraped.
pub fn scheme_to_json(scheme: Scheme) -> Json {
    match scheme {
        Scheme::None => Json::obj(vec![("kind", Json::str("none"))]),
        Scheme::Sequential { degree } => Json::obj(vec![
            ("kind", Json::str("sequential")),
            ("degree", Json::uint(degree as u64)),
        ]),
        Scheme::IDetection { degree } => Json::obj(vec![
            ("kind", Json::str("i-detection")),
            ("degree", Json::uint(degree as u64)),
        ]),
        Scheme::SimpleStride { degree } => Json::obj(vec![
            ("kind", Json::str("simple-stride")),
            ("degree", Json::uint(degree as u64)),
        ]),
        Scheme::DDetection { degree } => Json::obj(vec![
            ("kind", Json::str("d-detection")),
            ("degree", Json::uint(degree as u64)),
        ]),
        Scheme::DDetectionAdaptive { degree, max_depth } => Json::obj(vec![
            ("kind", Json::str("d-detection-adaptive")),
            ("degree", Json::uint(degree as u64)),
            ("max_depth", Json::uint(max_depth as u64)),
        ]),
        Scheme::AdaptiveSequential {
            initial_degree,
            max_degree,
        } => Json::obj(vec![
            ("kind", Json::str("adaptive-sequential")),
            ("initial_degree", Json::uint(initial_degree as u64)),
            ("max_degree", Json::uint(max_degree as u64)),
        ]),
    }
}

/// Decodes a structured scheme object.
pub fn scheme_from_json(v: &Json) -> Result<Scheme, String> {
    let obj = v.as_object().ok_or("scheme is not an object")?;
    let kind = field(v, "kind")?
        .as_str()
        .ok_or("scheme.kind is not a string")?;
    let degree_field = |name: &str| -> Result<u32, String> {
        let d = field(v, name)?
            .as_u64()
            .ok_or_else(|| format!("scheme.{name} is not a u64"))?;
        if d == 0 || d > 64 {
            return Err(format!("scheme.{name} {d} out of range 1..=64"));
        }
        Ok(d as u32)
    };
    let expect_keys = |keys: &[&str]| reject_unknown_keys(obj, keys, "scheme");
    match kind {
        "none" => {
            expect_keys(&["kind"])?;
            Ok(Scheme::None)
        }
        "sequential" => {
            expect_keys(&["kind", "degree"])?;
            Ok(Scheme::Sequential {
                degree: degree_field("degree")?,
            })
        }
        "i-detection" => {
            expect_keys(&["kind", "degree"])?;
            Ok(Scheme::IDetection {
                degree: degree_field("degree")?,
            })
        }
        "simple-stride" => {
            expect_keys(&["kind", "degree"])?;
            Ok(Scheme::SimpleStride {
                degree: degree_field("degree")?,
            })
        }
        "d-detection" => {
            expect_keys(&["kind", "degree"])?;
            Ok(Scheme::DDetection {
                degree: degree_field("degree")?,
            })
        }
        "d-detection-adaptive" => {
            expect_keys(&["kind", "degree", "max_depth"])?;
            Ok(Scheme::DDetectionAdaptive {
                degree: degree_field("degree")?,
                max_depth: degree_field("max_depth")?,
            })
        }
        "adaptive-sequential" => {
            expect_keys(&["kind", "initial_degree", "max_degree"])?;
            Ok(Scheme::AdaptiveSequential {
                initial_degree: degree_field("initial_degree")?,
                max_degree: degree_field("max_degree")?,
            })
        }
        other => Err(format!("unknown scheme kind '{other}'")),
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

/// Strict-validation helper: any key outside `known` is an error naming
/// both the key and the object it sits in.
fn reject_unknown_keys(obj: &[(String, Json)], known: &[&str], what: &str) -> Result<(), String> {
    for (k, _) in obj {
        if !known.contains(&k.as_str()) {
            return Err(format!("unknown {what} field '{k}'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> WireSpec {
        WireSpec::baseline_grid(
            "unit",
            Size::Default,
            &[App::Mp3d, App::Water],
            &[
                Scheme::Sequential { degree: 2 },
                Scheme::DDetectionAdaptive {
                    degree: 1,
                    max_depth: 8,
                },
            ],
        )
    }

    #[test]
    fn wire_round_trips_exactly() {
        let mut spec = grid();
        spec.variants[1].slc_kb = Some(16);
        spec.variants[1].consistency = ConsistencyModel::Sequential;
        spec.variants[2].slc_kb = Some(64);
        spec.variants[2].slc_ways = Some(4);
        spec.variants[2].block_bytes = Some(64);
        spec.variants[2].mesh = Some((8, 8));
        spec.threads = 2;
        spec.instrument = true;
        spec.timeout_secs = Some(120);
        let text = spec.to_json().render();
        assert_eq!(WireSpec::parse(&text).unwrap(), spec);
    }

    /// The modern families are submittable by name, and a mesh override
    /// resolves into a scaled machine configuration.
    #[test]
    fn modern_apps_and_meshes_round_trip() {
        let mut spec = WireSpec::baseline_grid(
            "modern",
            Size::Default,
            &[App::Chase, App::Mstride, App::Server],
            &[Scheme::DDetection { degree: 1 }],
        );
        spec.variants[1].mesh = Some((16, 16));
        let text = spec.to_json().render();
        let parsed = WireSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.cell_config(0).nodes, 16);
        assert_eq!(parsed.cell_config(1).nodes, 256);
        for app in App::EVERY {
            assert_eq!(app_by_name(app.name()), Some(app), "{app}");
        }
    }

    /// Mesh spellings outside `WxH` with both dimensions nonzero and the
    /// product within the directory's sharer limit are rejected with the
    /// offending text, not a mid-run panic.
    #[test]
    fn mesh_validation_rejects_bad_spellings() {
        for bad in ["huge", "8", "8x", "x8", "0x4", "4x0", "32x32", "8x8x8"] {
            let err = parse_mesh(bad).unwrap_err();
            assert!(err.contains(bad), "{bad}: {err}");
        }
        assert_eq!(parse_mesh("4x4"), Ok((4, 4)));
        assert_eq!(parse_mesh("16x16"), Ok((16, 16)));
        assert_eq!(parse_mesh("2x128"), Ok((2, 128)));
        // A malformed mesh inside a full document is a validation error.
        let ok = grid().to_json().render();
        let bad = ok.replacen("\"config\": {}", "\"config\": {\"mesh\": \"32x32\"}", 1);
        assert!(WireSpec::parse(&bad).unwrap_err().contains("32x32"));
    }

    #[test]
    fn every_scheme_round_trips() {
        for scheme in [
            Scheme::None,
            Scheme::Sequential { degree: 4 },
            Scheme::IDetection { degree: 1 },
            Scheme::SimpleStride { degree: 2 },
            Scheme::DDetection { degree: 3 },
            Scheme::DDetectionAdaptive {
                degree: 1,
                max_depth: 16,
            },
            Scheme::AdaptiveSequential {
                initial_degree: 1,
                max_degree: 8,
            },
        ] {
            let json = scheme_to_json(scheme);
            assert_eq!(scheme_from_json(&json), Ok(scheme), "{scheme}");
        }
    }

    #[test]
    fn lowering_matches_builder_spec() {
        let spec = grid().to_experiment_spec();
        let run_shape = spec.clone();
        assert_eq!(run_shape.apps, [App::Mp3d, App::Water]);
        assert_eq!(run_shape.variants.len(), 3);
        assert_eq!(run_shape.variants[0].label, "baseline");
        assert_eq!(run_shape.variants[1].label, "Seq(d=2)");
        assert_eq!(
            run_shape.variants[1].cfg.scheme,
            Scheme::Sequential { degree: 2 }
        );
    }

    #[test]
    fn cell_config_applies_instrumentation() {
        let mut spec = grid();
        spec.instrument = true;
        assert!(spec.cell_config(0).instrument);
        spec.instrument = false;
        assert!(!spec.cell_config(0).instrument);
    }

    /// Every rejection path names the offending field, and unknown
    /// fields anywhere in the document are errors.
    #[test]
    fn validation_rejects_malformed_documents() {
        let ok = grid().to_json().render();
        assert!(WireSpec::parse(&ok).is_ok());
        for (what, mutate) in [
            ("wire_version", "\"wire_version\": 1"),
            ("unknown size", "\"size\": \"huge\""),
            ("unknown app", "\"apps\": [\"Quake\"]"),
            ("empty apps", "\"apps\": []"),
            ("bad name", "\"name\": \"../etc\""),
            ("empty name", "\"name\": \"\""),
        ] {
            let bad = match what {
                "wire_version" => ok.replace("\"wire_version\": 2", mutate),
                "unknown size" => ok.replace("\"size\": \"default\"", mutate),
                "unknown app" | "empty apps" => {
                    ok.replace("\"apps\": [\"MP3D\", \"Water\"]", mutate)
                }
                _ => ok.replace("\"name\": \"unit\"", mutate),
            };
            assert_ne!(bad, ok, "{what}: mutation did not apply");
            assert!(WireSpec::parse(&bad).is_err(), "{what}");
        }
        // Unknown top-level / config / scheme fields are rejected.
        let bad = ok.replace(
            "\"instrument\": false",
            "\"instrument\": false, \"turbo\": 1",
        );
        assert!(WireSpec::parse(&bad).unwrap_err().contains("turbo"));
        let bad = ok.replace("\"config\": {}", "\"config\": {\"flux\": 9}");
        assert!(WireSpec::parse(&bad).unwrap_err().contains("flux"));
        let bad = ok.replace("{\"kind\": \"none\"}", "{\"kind\": \"warp\"}");
        assert!(WireSpec::parse(&bad).unwrap_err().contains("warp"));
        let bad = ok.replace(
            "{\"kind\": \"sequential\", \"degree\": 2}",
            "{\"kind\": \"sequential\", \"degree\": 0}",
        );
        assert!(WireSpec::parse(&bad).unwrap_err().contains("degree"));
        // Degenerate combinations.
        let bad = ok.replace("\"threads\": 1", "\"threads\": 4, \"warmup\": 1000");
        assert!(WireSpec::parse(&bad).unwrap_err().contains("serial"));
        let bad = ok.replace(
            "\"instrument\": false",
            "\"timeout_secs\": 0, \"instrument\": false",
        );
        assert!(WireSpec::parse(&bad).unwrap_err().contains("timeout_secs"));
    }

    #[test]
    fn variant_configs_resolve_knobs() {
        let text = r#"{
            "wire_version": 2, "name": "cfg", "size": "default",
            "apps": ["LU"],
            "variants": [{"label": "small-slc",
                          "scheme": {"kind": "sequential", "degree": 1},
                          "config": {"slc_kb": 16, "block_bytes": 64,
                                     "consistency": "sequential"}}],
            "threads": 1, "warmup": 0, "instrument": false
        }"#;
        let spec = WireSpec::parse(text).unwrap();
        let cfg = spec.cell_config(0);
        assert_eq!(cfg.scheme, Scheme::Sequential { degree: 1 });
        assert_eq!(cfg.slc, pfsim_cache::SlcConfig::direct_mapped(16 * 1024));
        assert_eq!(cfg.geometry.block_bytes(), 64);
        assert_eq!(cfg.consistency, ConsistencyModel::Sequential);
    }
}
