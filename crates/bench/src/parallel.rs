//! A scoped-thread fan-out for independent simulation runs.
//!
//! Each (config, workload) run is single-threaded and bit-for-bit
//! deterministic, so a sweep of independent runs parallelizes trivially:
//! workers pull jobs from a shared queue and results are returned in the
//! input order, making the caller's rendered output byte-identical to a
//! serial sweep regardless of completion order.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Applies `f` to every input on a pool of scoped threads and returns the
/// outputs **in input order**.
///
/// Worker count is `available_parallelism` clamped to the job count (and
/// can be pinned with the `PFSIM_THREADS` environment variable; `1` gives
/// a serial run with identical results). `f` must be pure per-job —
/// nothing here serializes access to shared state.
///
/// # Examples
///
/// ```
/// let squares = pfsim_bench::par_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, [1, 4, 9, 16]);
/// ```
pub fn par_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = inputs.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    let jobs: Mutex<VecDeque<(usize, I)>> = Mutex::new(inputs.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(n));
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = jobs.lock().unwrap().pop_front();
                let Some((i, input)) = job else { break };
                let out = f(input);
                done.lock().unwrap().push((i, out));
            });
        }
    });

    let mut done = done.into_inner().unwrap();
    done.sort_by_key(|&(i, _)| i);
    assert_eq!(done.len(), n, "a worker panicked and dropped its job");
    done.into_iter().map(|(_, out)| out).collect()
}

fn worker_count(jobs: usize) -> usize {
    let hw = std::env::var("PFSIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    hw.min(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_input_order() {
        // Reverse sleep times so completion order opposes input order.
        let inputs: Vec<u64> = (0..16).collect();
        let out = par_map(inputs.clone(), |i| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i));
            i * 10
        });
        assert_eq!(out, inputs.iter().map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        assert_eq!(par_map(vec![7], |x| x + 1), [8]);
    }

    #[test]
    fn parallel_matches_serial_for_a_real_simulation() {
        use pfsim::{System, SystemConfig};

        let run = || {
            let wl = pfsim_workloads::micro::sequential_walk(16, 48, 1);
            System::new(SystemConfig::paper_baseline(), wl).run()
        };
        let serial: Vec<u64> = (0..4).map(|_| run().exec_cycles).collect();
        let parallel = par_map(vec![(); 4], |()| run().exec_cycles);
        assert_eq!(serial, parallel);
    }
}
