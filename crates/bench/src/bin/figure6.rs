//! Regenerates **Figure 6** of the paper: for each of the six
//! applications, the three prefetching schemes (I-detection stride,
//! D-detection stride, sequential; all at degree *d* = 1) compared against
//! the baseline architecture on
//!
//! * (top) the number of read misses relative to the baseline,
//! * (middle) the prefetch efficiency, and
//! * (bottom) the read stall time relative to the baseline,
//!
//! plus the network traffic relative to the baseline (discussed in §5.2's
//! text: sequential prefetching's useless prefetches cost bandwidth).
//!
//! Usage: `cargo run -p pfsim-bench --bin figure6 --release [-- --paper]`

use pfsim_analysis::{compare, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{metrics_of, ExperimentSpec};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let run = ExperimentSpec::new("figure6")
        .size(Args::parse("figure6", SIZE_FLAGS).size)
        .apps(App::ALL)
        .baseline_and(&[
            Scheme::IDetection { degree: 1 },
            Scheme::DDetection { degree: 1 },
            Scheme::Sequential { degree: 1 },
        ])
        .run();

    let mut top = TextTable::new(headers());
    let mut middle = TextTable::new(headers());
    let mut bottom = TextTable::new(headers());
    let mut traffic = TextTable::new(headers());
    let mut exec = TextTable::new(headers());

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let (base_cell, scheme_cells) = cells.split_first().expect("baseline present");
        let base = metrics_of(&base_cell.result);
        let mut rows = [Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for row in &mut rows {
            row.push(app.name().to_string());
        }
        for cell in scheme_cells {
            let c = compare(&base, &metrics_of(&cell.result));
            rows[0].push(format!("{:.2}", c.relative_misses));
            rows[1].push(format!("{:.2}", c.efficiency));
            rows[2].push(format!("{:.2}", c.relative_stall));
            rows[3].push(format!("{:.2}", c.relative_traffic));
            rows[4].push(format!("{:.2}", c.relative_exec));
        }
        let [r0, r1, r2, r3, r4] = rows;
        top.row(r0);
        middle.row(r1);
        bottom.row(r2);
        traffic.row(r3);
        exec.row(r4);
    }

    println!("Figure 6 (top): read misses relative to baseline (1.00 = baseline)");
    println!("{}", top.render());
    println!("Figure 6 (middle): prefetch efficiency (useful / issued)");
    println!("{}", middle.render());
    println!("Figure 6 (bottom): read stall time relative to baseline");
    println!("{}", bottom.render());
    println!("Network traffic (flits) relative to baseline (§5.2 discussion)");
    println!("{}", traffic.render());
    println!("Execution time relative to baseline (context)");
    println!("{}", exec.render());

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}

fn headers() -> Vec<String> {
    vec!["".into(), "I-det".into(), "D-det".into(), "Seq".into()]
}
