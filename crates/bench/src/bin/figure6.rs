//! Regenerates **Figure 6** of the paper: for each of the six
//! applications, the three prefetching schemes (I-detection stride,
//! D-detection stride, sequential; all at degree *d* = 1) compared against
//! the baseline architecture on
//!
//! * (top) the number of read misses relative to the baseline,
//! * (middle) the prefetch efficiency, and
//! * (bottom) the read stall time relative to the baseline,
//!
//! plus the network traffic relative to the baseline (discussed in §5.2's
//! text: sequential prefetching's useless prefetches cost bandwidth).
//!
//! Usage: `cargo run -p pfsim-bench --bin figure6 --release [-- --paper]`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::{cursor, metrics_of, par_map, run_logged, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let size = Size::from_args();
    let schemes = [
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
    ];

    let mut top = TextTable::new(headers());
    let mut middle = TextTable::new(headers());
    let mut bottom = TextTable::new(headers());
    let mut traffic = TextTable::new(headers());
    let mut exec = TextTable::new(headers());

    // Every (app, scheme) run is independent: fan the whole grid out and
    // reassemble rows from the in-order results (4 runs per app).
    let jobs: Vec<(App, Option<Scheme>)> = App::ALL
        .into_iter()
        .flat_map(|app| {
            std::iter::once((app, None)).chain(schemes.iter().map(move |&s| (app, Some(s))))
        })
        .collect();
    let results = par_map(jobs, |(app, scheme)| {
        let (label, cfg) = match scheme {
            None => (format!("{app} baseline"), SystemConfig::paper_baseline()),
            Some(s) => (
                format!("{app} {s}"),
                SystemConfig::paper_baseline().with_scheme(s),
            ),
        };
        metrics_of(&run_logged(&label, cfg, cursor(app, size)))
    });

    for (app, runs) in App::ALL.into_iter().zip(results.chunks(1 + schemes.len())) {
        let (base, scheme_runs) = runs.split_first().expect("baseline present");
        let mut rows = [Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for row in &mut rows {
            row.push(app.name().to_string());
        }
        for run in scheme_runs {
            let c = compare(base, run);
            rows[0].push(format!("{:.2}", c.relative_misses));
            rows[1].push(format!("{:.2}", c.efficiency));
            rows[2].push(format!("{:.2}", c.relative_stall));
            rows[3].push(format!("{:.2}", c.relative_traffic));
            rows[4].push(format!("{:.2}", c.relative_exec));
        }
        let [r0, r1, r2, r3, r4] = rows;
        top.row(r0);
        middle.row(r1);
        bottom.row(r2);
        traffic.row(r3);
        exec.row(r4);
    }

    println!("Figure 6 (top): read misses relative to baseline (1.00 = baseline)");
    println!("{}", top.render());
    println!("Figure 6 (middle): prefetch efficiency (useful / issued)");
    println!("{}", middle.render());
    println!("Figure 6 (bottom): read stall time relative to baseline");
    println!("{}", bottom.render());
    println!("Network traffic (flits) relative to baseline (§5.2 discussion)");
    println!("{}", traffic.render());
    println!("Execution time relative to baseline (context)");
    println!("{}", exec.render());
}

fn headers() -> Vec<String> {
    vec!["".into(), "I-det".into(), "D-det".into(), "Seq".into()]
}
