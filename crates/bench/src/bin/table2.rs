//! Regenerates **Table 2** of the paper: application characteristics
//! under an infinitely large second-level cache — the fraction of read
//! misses inside stride sequences, the average sequence length, and the
//! dominant strides (in blocks), measured on one processor of a baseline
//! (no-prefetch) run.
//!
//! Usage: `cargo run -p pfsim-bench --bin table2 --release [-- --paper]`

use pfsim::{RecordMisses, SystemConfig};
use pfsim_analysis::{characterize, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{miss_event_iter, ExperimentSpec, RECORDED_CPU};
use pfsim_workloads::App;

fn main() {
    let run = ExperimentSpec::new("table2")
        .size(Args::parse("table2", SIZE_FLAGS).size)
        .apps(App::ALL)
        .variant(
            "record",
            SystemConfig::builder()
                .record_misses(RecordMisses::Cpu(RECORDED_CPU))
                .build(),
        )
        .run();

    println!("Table 2: application characteristics, infinite second-level cache");
    println!(
        "(paper values: stride-miss %: 9.2/80/79/93/66/4.1; avg len: 5.2/7.2/8.0/16.9/7.6/3.4)"
    );
    println!();

    let mut table = TextTable::new(vec![
        "".into(),
        "Read misses within stride sequences".into(),
        "Avg. length of sequence".into(),
        "Dominant stride (blocks)".into(),
        "Misses (recorded cpu)".into(),
    ]);

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let result = &cells[0].result;
        let ch = characterize(miss_event_iter(&result.miss_traces[RECORDED_CPU]));
        table.row(vec![
            app.name().into(),
            format!("{:.1}%", ch.stride_fraction() * 100.0),
            format!("{:.1}", ch.avg_sequence_length()),
            ch.dominant_strides_label(),
            format!("{}", ch.total_misses),
        ]);
    }
    println!("{}", table.render());

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
