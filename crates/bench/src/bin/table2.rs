//! Regenerates **Table 2** of the paper: application characteristics
//! under an infinitely large second-level cache — the fraction of read
//! misses inside stride sequences, the average sequence length, and the
//! dominant strides (in blocks), measured on one processor of a baseline
//! (no-prefetch) run.
//!
//! Usage: `cargo run -p pfsim-bench --bin table2 --release [-- --paper]`

use pfsim::SystemConfig;
use pfsim_analysis::{characterize, TextTable};
use pfsim_bench::{characterization_run, miss_event_iter, Size};
use pfsim_workloads::App;

fn main() {
    let size = Size::from_args();
    println!("Table 2: application characteristics, infinite second-level cache");
    println!(
        "(paper values: stride-miss %: 9.2/80/79/93/66/4.1; avg len: 5.2/7.2/8.0/16.9/7.6/3.4)"
    );
    println!();

    let mut table = TextTable::new(vec![
        "".into(),
        "Read misses within stride sequences".into(),
        "Avg. length of sequence".into(),
        "Dominant stride (blocks)".into(),
        "Misses (recorded cpu)".into(),
    ]);

    for app in App::ALL {
        let result = characterization_run(app, size, SystemConfig::paper_baseline());
        let ch = characterize(miss_event_iter(
            &result.miss_traces[pfsim_bench::RECORDED_CPU],
        ));
        table.row(vec![
            app.name().into(),
            format!("{:.1}%", ch.stride_fraction() * 100.0),
            format!("{:.1}", ch.avg_sequence_length()),
            ch.dominant_strides_label(),
            format!("{}", ch.total_misses),
        ]);
    }
    println!("{}", table.render());
}
