//! Ablation: **block size** (§4). The paper fixes 32-byte blocks and
//! remarks: "although a large block size would be advantageous for the
//! sequential prefetching scheme to be effective for large strides, we
//! pessimistically consider a block size of 32 bytes", citing earlier
//! 128-byte-block results. This sweep measures sequential vs. I-detection
//! prefetching at 32/64/128-byte blocks on the two large-stride
//! applications (Water: 672-byte molecule stride; Ocean: 2080-byte row
//! stride) plus MP3D (pure spatial locality).
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_block --release`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{metrics_of, ExperimentSpec};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let blocks = [32u64, 64, 128];
    let schemes = [
        Scheme::None,
        Scheme::IDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
    ];

    // Per app: 3 block sizes × (baseline + 2 schemes) = 9 cells.
    let mut spec = ExperimentSpec::new("ablation_block")
        .size(Args::parse("ablation_block", SIZE_FLAGS).size)
        .apps([App::Water, App::Ocean, App::Mp3d]);
    for bs in blocks {
        for scheme in schemes {
            spec = spec.variant(
                format!("{bs}B {scheme}"),
                SystemConfig::builder()
                    .block_bytes(bs)
                    .scheme(scheme)
                    .build(),
            );
        }
    }
    let run = spec.run();

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let mut table = TextTable::new(vec![
            "block".into(),
            "baseline misses".into(),
            "I-det rel misses".into(),
            "Seq rel misses".into(),
            "Seq rel traffic".into(),
        ]);
        for (bs, group) in blocks.into_iter().zip(cells.chunks(schemes.len())) {
            let (base_cell, scheme_cells) = group.split_first().expect("baseline present");
            let base = metrics_of(&base_cell.result);
            let mut row = vec![format!("{bs}B"), format!("{}", base.read_misses)];
            let mut seq_traffic = String::new();
            for cell in scheme_cells {
                let c = compare(&base, &metrics_of(&cell.result));
                row.push(format!("{:.2}", c.relative_misses));
                seq_traffic = format!("{:.2}", c.relative_traffic);
            }
            row.push(seq_traffic);
            table.row(row);
        }
        println!("Block-size sweep: {app}");
        println!("{}", table.render());
    }
    println!("Expectation (§4): larger blocks shrink the stride measured in");
    println!("blocks, so sequential prefetching closes the gap on the");
    println!("large-stride applications as the block size grows.");
    println!();
    println!("Caveat: the workload layouts are fixed (as a real program's would");
    println!("be), so at 64/128-byte blocks partition boundaries no longer fall");
    println!("on block boundaries and the baselines include false-sharing");
    println!("misses that no prefetcher can remove — part of why both schemes'");
    println!("relative numbers drift toward 1.0 at larger blocks.");

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
