//! Ablation: **block size** (§4). The paper fixes 32-byte blocks and
//! remarks: "although a large block size would be advantageous for the
//! sequential prefetching scheme to be effective for large strides, we
//! pessimistically consider a block size of 32 bytes", citing earlier
//! 128-byte-block results. This sweep measures sequential vs. I-detection
//! prefetching at 32/64/128-byte blocks on the two large-stride
//! applications (Water: 672-byte molecule stride; Ocean: 2080-byte row
//! stride) plus MP3D (pure spatial locality).
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_block --release`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::{cursor, metrics_of, run_logged, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let size = Size::from_args();
    let apps = [App::Water, App::Ocean, App::Mp3d];
    let blocks = [32u64, 64, 128];

    for app in apps {
        let mut table = TextTable::new(vec![
            "block".into(),
            "baseline misses".into(),
            "I-det rel misses".into(),
            "Seq rel misses".into(),
            "Seq rel traffic".into(),
        ]);
        for bs in blocks {
            let cfg = |scheme| {
                SystemConfig::paper_baseline()
                    .with_block_bytes(bs)
                    .with_scheme(scheme)
            };
            let base = metrics_of(&run_logged(
                &format!("{app} {bs}B baseline"),
                cfg(Scheme::None),
                cursor(app, size),
            ));
            let mut row = vec![format!("{bs}B"), format!("{}", base.read_misses)];
            let mut seq_traffic = String::new();
            for scheme in [
                Scheme::IDetection { degree: 1 },
                Scheme::Sequential { degree: 1 },
            ] {
                let run = metrics_of(&run_logged(
                    &format!("{app} {bs}B {scheme}"),
                    cfg(scheme),
                    cursor(app, size),
                ));
                let c = compare(&base, &run);
                row.push(format!("{:.2}", c.relative_misses));
                if matches!(scheme, Scheme::Sequential { .. }) {
                    seq_traffic = format!("{:.2}", c.relative_traffic);
                }
            }
            row.push(seq_traffic);
            table.row(row);
        }
        println!("Block-size sweep: {app}");
        println!("{}", table.render());
    }
    println!("Expectation (§4): larger blocks shrink the stride measured in");
    println!("blocks, so sequential prefetching closes the gap on the");
    println!("large-stride applications as the block size grows.");
    println!();
    println!("Caveat: the workload layouts are fixed (as a real program's would");
    println!("be), so at 64/128-byte blocks partition boundaries no longer fall");
    println!("on block boundaries and the baselines include false-sharing");
    println!("misses that no prefetcher can remove — part of why both schemes'");
    println!("relative numbers drift toward 1.0 at larger blocks.");
}
