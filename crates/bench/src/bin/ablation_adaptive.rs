//! Ablation: **adaptive sequential prefetching** (§6 future work). The
//! paper's stated weakness of plain sequential prefetching is its useless
//! prefetches in low-locality phases; Dahlgren, Dubois & Stenström's
//! adaptive mechanism throttles the degree down (to zero) when prefetches
//! go unused and raises it when they pay off. This binary compares fixed
//! d = 1 sequential prefetching with the adaptive variant on all six
//! applications.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_adaptive --release`

use pfsim_analysis::{compare, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{metrics_of, ExperimentSpec};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let run = ExperimentSpec::new("ablation_adaptive")
        .size(Args::parse("ablation_adaptive", SIZE_FLAGS).size)
        .apps(App::ALL)
        .baseline_and(&[
            Scheme::Sequential { degree: 1 },
            Scheme::AdaptiveSequential {
                initial_degree: 1,
                max_degree: 8,
            },
            // Hagersten's adaptive lookahead on the D-detection scheme (§6).
            Scheme::DDetectionAdaptive {
                degree: 1,
                max_depth: 8,
            },
        ])
        .run();

    let mut table = TextTable::new(vec![
        "".into(),
        "Seq misses".into(),
        "Seq eff".into(),
        "Seq traffic".into(),
        "Adapt misses".into(),
        "Adapt eff".into(),
        "Adapt traffic".into(),
        "Ddet-ad misses".into(),
        "Ddet-ad stall".into(),
    ]);

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let [base_cell, seq_cell, adapt_cell, dda_cell] = cells else {
            unreachable!()
        };
        let base = metrics_of(&base_cell.result);
        let mut row = vec![app.name().to_string()];
        for cell in [seq_cell, adapt_cell] {
            let c = compare(&base, &metrics_of(&cell.result));
            row.push(format!("{:.2}", c.relative_misses));
            row.push(format!("{:.2}", c.efficiency));
            row.push(format!("{:.2}", c.relative_traffic));
        }
        let c = compare(&base, &metrics_of(&dda_cell.result));
        row.push(format!("{:.2}", c.relative_misses));
        row.push(format!("{:.2}", c.relative_stall));
        table.row(row);
    }
    println!("Adaptive vs fixed sequential prefetching (relative to baseline)");
    println!("{}", table.render());
    println!("Expectation: the adaptive scheme recovers most of fixed-Seq's miss");
    println!("reduction while cutting the useless-prefetch traffic on the");
    println!("low-locality applications (MP3D, Ocean, PTHOR).");

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
