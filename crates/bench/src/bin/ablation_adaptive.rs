//! Ablation: **adaptive sequential prefetching** (§6 future work). The
//! paper's stated weakness of plain sequential prefetching is its useless
//! prefetches in low-locality phases; Dahlgren, Dubois & Stenström's
//! adaptive mechanism throttles the degree down (to zero) when prefetches
//! go unused and raises it when they pay off. This binary compares fixed
//! d = 1 sequential prefetching with the adaptive variant on all six
//! applications.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_adaptive --release`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::{cursor, metrics_of, run_logged, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let size = Size::from_args();
    let mut table = TextTable::new(vec![
        "".into(),
        "Seq misses".into(),
        "Seq eff".into(),
        "Seq traffic".into(),
        "Adapt misses".into(),
        "Adapt eff".into(),
        "Adapt traffic".into(),
        "Ddet-ad misses".into(),
        "Ddet-ad stall".into(),
    ]);

    for app in App::ALL {
        let base = metrics_of(&run_logged(
            &format!("{app} baseline"),
            SystemConfig::paper_baseline(),
            cursor(app, size),
        ));
        let mut row = vec![app.name().to_string()];
        for scheme in [
            Scheme::Sequential { degree: 1 },
            Scheme::AdaptiveSequential {
                initial_degree: 1,
                max_degree: 8,
            },
        ] {
            let run = metrics_of(&run_logged(
                &format!("{app} {scheme}"),
                SystemConfig::paper_baseline().with_scheme(scheme),
                cursor(app, size),
            ));
            let c = compare(&base, &run);
            row.push(format!("{:.2}", c.relative_misses));
            row.push(format!("{:.2}", c.efficiency));
            row.push(format!("{:.2}", c.relative_traffic));
        }
        // Hagersten's adaptive lookahead on the D-detection scheme (§6).
        let dda = metrics_of(&run_logged(
            &format!("{app} D-det-adapt"),
            SystemConfig::paper_baseline().with_scheme(Scheme::DDetectionAdaptive {
                degree: 1,
                max_depth: 8,
            }),
            cursor(app, size),
        ));
        let c = compare(&base, &dda);
        row.push(format!("{:.2}", c.relative_misses));
        row.push(format!("{:.2}", c.relative_stall));
        table.row(row);
    }
    println!("Adaptive vs fixed sequential prefetching (relative to baseline)");
    println!("{}", table.render());
    println!("Expectation: the adaptive scheme recovers most of fixed-Seq's miss");
    println!("reduction while cutting the useless-prefetch traffic on the");
    println!("low-locality applications (MP3D, Ocean, PTHOR).");
}
