//! Ablation: **memory consistency model** (§1 premise). The paper opens
//! by noting that "the latency of write accesses can easily be hidden by
//! appropriate write buffers and relaxed memory consistency models", which
//! is why its prefetching study targets *read* misses only. This binary
//! measures that premise: each application under release consistency (the
//! paper's model) vs. sequential consistency (every write stalls), with
//! and without sequential prefetching.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_consistency --release`

use pfsim::{ConsistencyModel, SystemConfig};
use pfsim_analysis::TextTable;
use pfsim_bench::{cursor, metrics_of, run_logged, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let size = Size::from_args();
    let mut table = TextTable::new(vec![
        "".into(),
        "RC exec".into(),
        "SC exec".into(),
        "SC/RC".into(),
        "SC write stall %".into(),
        "Seq gain (RC)".into(),
        "Seq gain (SC)".into(),
    ]);

    for app in App::ALL {
        let run = |consistency, scheme| {
            run_logged(
                &format!("{app} {consistency:?} {scheme}"),
                SystemConfig::paper_baseline()
                    .with_consistency(consistency)
                    .with_scheme(scheme),
                cursor(app, size),
            )
        };
        let rc = metrics_of(&run(ConsistencyModel::Release, Scheme::None));
        let sc_result = run(ConsistencyModel::Sequential, Scheme::None);
        let write_stall = sc_result.total(|n| n.write_stall);
        let sc = metrics_of(&sc_result);
        let rc_seq = metrics_of(&run(
            ConsistencyModel::Release,
            Scheme::Sequential { degree: 1 },
        ));
        let sc_seq = metrics_of(&run(
            ConsistencyModel::Sequential,
            Scheme::Sequential { degree: 1 },
        ));
        table.row(vec![
            app.name().into(),
            format!("{}", rc.exec_cycles),
            format!("{}", sc.exec_cycles),
            format!("{:.2}", sc.exec_cycles as f64 / rc.exec_cycles as f64),
            format!(
                "{:.0}%",
                100.0 * write_stall as f64 / (16 * sc.exec_cycles) as f64
            ),
            format!("{:.2}", rc_seq.exec_cycles as f64 / rc.exec_cycles as f64),
            format!("{:.2}", sc_seq.exec_cycles as f64 / sc.exec_cycles as f64),
        ]);
    }

    println!("Consistency-model ablation (exec time in pclocks; gain = relative exec)");
    println!("{}", table.render());
    println!("Expectation (§1): release consistency hides write latency, so SC/RC");
    println!("exceeds 1.0 everywhere and read prefetching is the remaining lever.");
}
