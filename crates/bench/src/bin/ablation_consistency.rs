//! Ablation: **memory consistency model** (§1 premise). The paper opens
//! by noting that "the latency of write accesses can easily be hidden by
//! appropriate write buffers and relaxed memory consistency models", which
//! is why its prefetching study targets *read* misses only. This binary
//! measures that premise: each application under release consistency (the
//! paper's model) vs. sequential consistency (every write stalls), with
//! and without sequential prefetching.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_consistency --release`

use pfsim::{ConsistencyModel, SystemConfig};
use pfsim_analysis::TextTable;
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{metrics_of, ExperimentSpec};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let variant = |consistency, scheme| {
        SystemConfig::builder()
            .consistency(consistency)
            .scheme(scheme)
            .build()
    };
    let run = ExperimentSpec::new("ablation_consistency")
        .size(Args::parse("ablation_consistency", SIZE_FLAGS).size)
        .apps(App::ALL)
        .variant("RC", variant(ConsistencyModel::Release, Scheme::None))
        .variant("SC", variant(ConsistencyModel::Sequential, Scheme::None))
        .variant(
            "RC+Seq",
            variant(ConsistencyModel::Release, Scheme::Sequential { degree: 1 }),
        )
        .variant(
            "SC+Seq",
            variant(
                ConsistencyModel::Sequential,
                Scheme::Sequential { degree: 1 },
            ),
        )
        .run();

    let mut table = TextTable::new(vec![
        "".into(),
        "RC exec".into(),
        "SC exec".into(),
        "SC/RC".into(),
        "SC write stall %".into(),
        "Seq gain (RC)".into(),
        "Seq gain (SC)".into(),
    ]);

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let [rc_cell, sc_cell, rc_seq_cell, sc_seq_cell] = cells else {
            unreachable!()
        };
        let rc = metrics_of(&rc_cell.result);
        let sc = metrics_of(&sc_cell.result);
        let write_stall = sc_cell.result.total(|n| n.write_stall);
        let rc_seq = metrics_of(&rc_seq_cell.result);
        let sc_seq = metrics_of(&sc_seq_cell.result);
        table.row(vec![
            app.name().into(),
            format!("{}", rc.exec_cycles),
            format!("{}", sc.exec_cycles),
            format!("{:.2}", sc.exec_cycles as f64 / rc.exec_cycles as f64),
            format!(
                "{:.0}%",
                100.0 * write_stall as f64 / (16 * sc.exec_cycles) as f64
            ),
            format!("{:.2}", rc_seq.exec_cycles as f64 / rc.exec_cycles as f64),
            format!("{:.2}", sc_seq.exec_cycles as f64 / sc.exec_cycles as f64),
        ]);
    }

    println!("Consistency-model ablation (exec time in pclocks; gain = relative exec)");
    println!("{}", table.render());
    println!("Expectation (§1): release consistency hides write latency, so SC/RC");
    println!("exceeds 1.0 everywhere and read prefetching is the remaining lever.");

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
