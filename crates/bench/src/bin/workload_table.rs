//! Prints a SPLASH-report-style table of the six workload models' static
//! properties — operation mix, shared-data footprint, sharing degree and
//! synchronization counts — at both the default and the paper input
//! sizes. Useful for sanity-checking the models against the §4 workload
//! descriptions.
//!
//! Usage: `cargo run -p pfsim-bench --bin workload_table --release [-- --paper]`

use pfsim_analysis::TextTable;
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{shared_trace, ExperimentSpec};
use pfsim_workloads::{packed_stats, App};

fn main() {
    let size = Args::parse("workload_table", SIZE_FLAGS).size;
    // A trace-only experiment: no variants means no simulations — the
    // runner just generates (and describes) every app's trace.
    let run = ExperimentSpec::new("workload_table")
        .size(size)
        .apps(App::ALL)
        .run();

    let mut table = TextTable::new(vec![
        "".into(),
        "reads".into(),
        "writes".into(),
        "locks".into(),
        "barriers".into(),
        "footprint".into(),
        "shared".into(),
        "communicated".into(),
        "load sites".into(),
    ]);
    for app in App::ALL {
        let s = packed_stats(&shared_trace(app, size));
        table.row(vec![
            app.name().into(),
            format!("{}", s.reads),
            format!("{}", s.writes),
            format!("{}", s.acquires),
            format!("{}", s.barrier_arrivals / 16),
            format!("{} KB", s.footprint_bytes() / 1024),
            format!("{:.0}%", s.sharing_fraction() * 100.0),
            format!("{}", s.communicated_blocks),
            format!("{}", s.pc_sites),
        ]);
    }
    println!("Workload model properties ({size} inputs)");
    println!("{}", table.render());

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
