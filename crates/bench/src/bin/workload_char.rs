//! Characterizes the modern workload families — CHASE, MSTRIDE and
//! SERVER — with the paper's §5.1 (Table 2) methodology: the fraction of
//! read misses inside stride sequences, the average sequence length, and
//! the dominant strides (in blocks), measured on one interior processor
//! of a baseline (no-prefetch) run.
//!
//! Each family is characterized at three machine/problem points: the
//! paper's 4×4 mesh at the selected size, the same trace partitioned
//! onto an 8×8 (64-node) mesh, and the 4×4 mesh at the paper-scale
//! problem size — so the table shows how the access-pattern signature
//! responds to both machine scaling and data-set scaling.
//!
//! The emitted run manifest is re-read and validated before exit, so a
//! CI invocation doubles as a manifest-discipline check.
//!
//! Usage: `cargo run -p pfsim-bench --bin workload_char --release [-- --paper]`

use pfsim::{RecordMisses, SystemConfig};
use pfsim_analysis::{characterize, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{
    miss_event_iter, recorded_cpu_for, validate_manifest, ExperimentSpec, Size, RECORDED_CPU,
};
use pfsim_workloads::App;

fn main() {
    let args = Args::parse("workload_char", SIZE_FLAGS);
    let big_cpu = recorded_cpu_for(8, 8);
    // Per-variant recorded processor: the interior node shifts with the
    // mesh (node 5 on 4×4, node 9 on 8×8).
    let recorded = [RECORDED_CPU, big_cpu, RECORDED_CPU];

    let run = ExperimentSpec::new("workload_char")
        .size(args.size)
        .apps(App::MODERN)
        .variant(
            "4x4",
            SystemConfig::builder()
                .record_misses(RecordMisses::Cpu(RECORDED_CPU))
                .build(),
        )
        .variant(
            "8x8",
            SystemConfig::builder()
                .mesh_dims(8, 8)
                .record_misses(RecordMisses::Cpu(big_cpu))
                .build(),
        )
        .variant_sized(
            "4x4/paper",
            SystemConfig::builder()
                .record_misses(RecordMisses::Cpu(RECORDED_CPU))
                .build(),
            Size::Paper,
        )
        .run();

    println!("Workload characterization: modern families, Table 2 methodology");
    println!("(recorded cpu: node 5 on the 4x4 mesh, node 9 on the 8x8 mesh)");
    println!();

    let mut table = TextTable::new(vec![
        "".into(),
        "Machine".into(),
        "Read misses within stride sequences".into(),
        "Avg. length of sequence".into(),
        "Dominant stride (blocks)".into(),
        "Misses (recorded cpu)".into(),
    ]);

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        for (cell, &cpu) in cells.iter().zip(&recorded) {
            let ch = characterize(miss_event_iter(&cell.result.miss_traces[cpu]));
            table.row(vec![
                app.name().into(),
                run.variants[cell.variant].label.clone(),
                format!("{:.1}%", ch.stride_fraction() * 100.0),
                format!("{:.1}", ch.avg_sequence_length()),
                ch.dominant_strides_label(),
                format!("{}", ch.total_misses),
            ]);
        }
    }
    println!("{}", table.render());
    println!("total pclocks: {}", run.total_pclocks());

    let manifest = run.write_manifest().expect("write run manifest");
    validate_manifest(&manifest).expect("the emitted manifest must validate");
    eprintln!("manifest: {} (validated)", manifest.display());
}
