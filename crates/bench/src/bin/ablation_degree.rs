//! Ablation: **degree of prefetching** (§6). The paper reports that for
//! its prefetching-phase mechanism there was "little difference between
//! different values of d", which is why the main evaluation fixes d = 1.
//! This binary sweeps d ∈ {1, 2, 4, 8} for both the I-detection and the
//! sequential scheme on three contrasting applications so the claim can be
//! checked — and so the LU hot-spot case (where a deeper lookahead hides
//! more of the pivot-column fetch latency) is visible.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_degree --release`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::{metrics_of, run_logged, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let size = Size::from_args();
    let apps = [App::Lu, App::Ocean, App::Mp3d];
    let degrees = [1u32, 2, 4, 8];

    for app in apps {
        let base = metrics_of(&run_logged(
            &format!("{app} baseline"),
            SystemConfig::paper_baseline(),
            size.build(app),
        ));
        let mut table = TextTable::new(vec![
            "d".into(),
            "I-det misses".into(),
            "I-det stall".into(),
            "I-det eff".into(),
            "Seq misses".into(),
            "Seq stall".into(),
            "Seq eff".into(),
        ]);
        for d in degrees {
            let mut row = vec![format!("{d}")];
            for scheme in [
                Scheme::IDetection { degree: d },
                Scheme::Sequential { degree: d },
            ] {
                let run = metrics_of(&run_logged(
                    &format!("{app} {scheme}"),
                    SystemConfig::paper_baseline().with_scheme(scheme),
                    size.build(app),
                ));
                let c = compare(&base, &run);
                row.push(format!("{:.2}", c.relative_misses));
                row.push(format!("{:.2}", c.relative_stall));
                row.push(format!("{:.2}", c.efficiency));
            }
            table.row(row);
        }
        println!("Degree-of-prefetching sweep: {app} (relative to baseline)");
        println!("{}", table.render());
    }
}
