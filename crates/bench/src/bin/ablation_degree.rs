//! Ablation: **degree of prefetching** (§6). The paper reports that for
//! its prefetching-phase mechanism there was "little difference between
//! different values of d", which is why the main evaluation fixes d = 1.
//! This binary sweeps d ∈ {1, 2, 4, 8} for both the I-detection and the
//! sequential scheme on three contrasting applications so the claim can be
//! checked — and so the LU hot-spot case (where a deeper lookahead hides
//! more of the pivot-column fetch latency) is visible.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_degree --release`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::{cursor, metrics_of, par_map, run_logged, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let size = Size::from_args();
    let apps = [App::Lu, App::Ocean, App::Mp3d];
    let degrees = [1u32, 2, 4, 8];

    // Per app: 1 baseline + 8 scheme runs, all independent — fan the
    // whole 27-run sweep out and reassemble tables from in-order chunks.
    let jobs: Vec<(App, Option<Scheme>)> = apps
        .into_iter()
        .flat_map(|app| {
            std::iter::once((app, None)).chain(degrees.into_iter().flat_map(move |d| {
                [
                    (app, Some(Scheme::IDetection { degree: d })),
                    (app, Some(Scheme::Sequential { degree: d })),
                ]
            }))
        })
        .collect();
    let results = par_map(jobs, |(app, scheme)| {
        let (label, cfg) = match scheme {
            None => (format!("{app} baseline"), SystemConfig::paper_baseline()),
            Some(s) => (
                format!("{app} {s}"),
                SystemConfig::paper_baseline().with_scheme(s),
            ),
        };
        metrics_of(&run_logged(&label, cfg, cursor(app, size)))
    });

    let runs_per_app = 1 + 2 * degrees.len();
    for (app, runs) in apps.into_iter().zip(results.chunks(runs_per_app)) {
        let (base, scheme_runs) = runs.split_first().expect("baseline present");
        let mut table = TextTable::new(vec![
            "d".into(),
            "I-det misses".into(),
            "I-det stall".into(),
            "I-det eff".into(),
            "Seq misses".into(),
            "Seq stall".into(),
            "Seq eff".into(),
        ]);
        for (d, pair) in degrees.into_iter().zip(scheme_runs.chunks(2)) {
            let mut row = vec![format!("{d}")];
            for run in pair {
                let c = compare(base, run);
                row.push(format!("{:.2}", c.relative_misses));
                row.push(format!("{:.2}", c.relative_stall));
                row.push(format!("{:.2}", c.efficiency));
            }
            table.row(row);
        }
        println!("Degree-of-prefetching sweep: {app} (relative to baseline)");
        println!("{}", table.render());
    }
}
