//! Ablation: **degree of prefetching** (§6). The paper reports that for
//! its prefetching-phase mechanism there was "little difference between
//! different values of d", which is why the main evaluation fixes d = 1.
//! This binary sweeps d ∈ {1, 2, 4, 8} for both the I-detection and the
//! sequential scheme on three contrasting applications so the claim can be
//! checked — and so the LU hot-spot case (where a deeper lookahead hides
//! more of the pivot-column fetch latency) is visible.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_degree --release`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{metrics_of, ExperimentSpec};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let degrees = [1u32, 2, 4, 8];

    // Per app: 1 baseline + 8 scheme runs, all independent — the runner
    // fans the whole 27-cell grid out across cores.
    let mut spec = ExperimentSpec::new("ablation_degree")
        .size(Args::parse("ablation_degree", SIZE_FLAGS).size)
        .apps([App::Lu, App::Ocean, App::Mp3d])
        .variant("baseline", SystemConfig::paper_baseline());
    for d in degrees {
        for scheme in [
            Scheme::IDetection { degree: d },
            Scheme::Sequential { degree: d },
        ] {
            spec = spec.variant(
                scheme.to_string(),
                SystemConfig::builder().scheme(scheme).build(),
            );
        }
    }
    let run = spec.run();

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let (base_cell, scheme_cells) = cells.split_first().expect("baseline present");
        let base = metrics_of(&base_cell.result);
        let mut table = TextTable::new(vec![
            "d".into(),
            "I-det misses".into(),
            "I-det stall".into(),
            "I-det eff".into(),
            "Seq misses".into(),
            "Seq stall".into(),
            "Seq eff".into(),
        ]);
        for (d, pair) in degrees.into_iter().zip(scheme_cells.chunks(2)) {
            let mut row = vec![format!("{d}")];
            for cell in pair {
                let c = compare(&base, &metrics_of(&cell.result));
                row.push(format!("{:.2}", c.relative_misses));
                row.push(format!("{:.2}", c.relative_stall));
                row.push(format!("{:.2}", c.efficiency));
            }
            table.row(row);
        }
        println!("Degree-of-prefetching sweep: {app} (relative to baseline)");
        println!("{}", table.render());
    }

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
