//! Ablation: **stride detection schemes** (§3.2 / §6). The paper's §3.2
//! first describes the "simplest stride prefetching scheme" — prefetch as
//! soon as two accesses from one load instruction form a stride, with no
//! confirmation and no shut-off — and notes its drawback: useless
//! prefetches whenever a load's addresses do not actually form a
//! sequence. The Baer–Chen FSM (with its `no-pref` state) was chosen in
//! the paper precisely because it keeps useless prefetches low (§6, citing
//! the companion report DT-191).
//!
//! This binary measures that choice: the simple scheme vs. the FSM vs.
//! D-detection, on all six applications.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_detection --release`

use pfsim_analysis::{compare, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{metrics_of, ExperimentSpec};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let run = ExperimentSpec::new("ablation_detection")
        .size(Args::parse("ablation_detection", SIZE_FLAGS).size)
        .apps(App::ALL)
        .baseline_and(&[
            Scheme::SimpleStride { degree: 1 },
            Scheme::IDetection { degree: 1 },
            Scheme::DDetection { degree: 1 },
        ])
        .run();

    let mut misses = TextTable::new(headers());
    let mut eff = TextTable::new(headers());
    let mut traffic = TextTable::new(headers());

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let (base_cell, scheme_cells) = cells.split_first().expect("baseline present");
        let base = metrics_of(&base_cell.result);
        let mut rows = [
            vec![app.name().to_string()],
            vec![app.name().to_string()],
            vec![app.name().to_string()],
        ];
        for cell in scheme_cells {
            let c = compare(&base, &metrics_of(&cell.result));
            rows[0].push(format!("{:.2}", c.relative_misses));
            rows[1].push(format!("{:.2}", c.efficiency));
            rows[2].push(format!("{:.2}", c.relative_traffic));
        }
        let [r0, r1, r2] = rows;
        misses.row(r0);
        eff.row(r1);
        traffic.row(r2);
    }

    println!("Detection-scheme ablation: read misses relative to baseline");
    println!("{}", misses.render());
    println!("Prefetch efficiency (the FSM's no-pref state is the difference)");
    println!("{}", eff.render());
    println!("Network traffic relative to baseline");
    println!("{}", traffic.render());
    println!("Expectation (§3.2/§6): the simple scheme detects the same strides");
    println!("(similar miss reductions on the stride applications) but issues");
    println!("many useless prefetches on MP3D and PTHOR, where the same loads");
    println!("produce non-stride address pairs.");

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}

fn headers() -> Vec<String> {
    vec!["".into(), "Simple".into(), "I-det".into(), "D-det".into()]
}
