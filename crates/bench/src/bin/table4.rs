//! Regenerates **Table 4** of the paper: how the three key application
//! characteristics trend when the data sets grow (infinite SLC). The
//! paper reports expectations ("higher", "longer", "about the same");
//! this binary measures the base and enlarged data sets and reports both
//! the numbers and the resulting trend word, so the row can be compared
//! directly against the paper's.
//!
//! PTHOR is excluded exactly as in the paper ("because of time
//! limitations for simulations").
//!
//! Usage: `cargo run -p pfsim-bench --bin table4 --release`

use pfsim::{RecordMisses, SystemConfig};
use pfsim_analysis::{characterize, Characterization, TextTable};
use pfsim_bench::cli::Args;
use pfsim_bench::{miss_event_iter, CellResult, ExperimentSpec, Size, RECORDED_CPU};
use pfsim_workloads::App;

fn trend(base: f64, large: f64, tolerance: f64) -> &'static str {
    if large > base * (1.0 + tolerance) {
        "higher"
    } else if large < base * (1.0 - tolerance) {
        "lower"
    } else {
        "about the same"
    }
}

fn characterization(cell: &CellResult) -> Characterization {
    characterize(miss_event_iter(&cell.result.miss_traces[RECORDED_CPU]))
}

fn main() {
    // Table 4 compares fixed sizes (base vs large) and takes no flags;
    // parsing with an empty accept set still rejects stray arguments
    // with the shared error message.
    let _ = Args::parse("table4", &[]);
    println!("Table 4: expected application characteristics for larger data sets");
    println!("(paper: stride fraction — same/higher/higher/higher/higher;");
    println!(" sequence length — limited/longer/longer/longer/longer)");
    println!();

    let recording = SystemConfig::builder()
        .record_misses(RecordMisses::Cpu(RECORDED_CPU))
        .build();
    // 5 apps × {base, large} data sets = 10 independent recording runs.
    let run = ExperimentSpec::new("table4")
        .apps([App::Mp3d, App::Cholesky, App::Water, App::Lu, App::Ocean])
        .variant_sized("base", recording.clone(), Size::Default)
        .variant_sized("large", recording, Size::Large)
        .run();

    let mut table = TextTable::new(vec![
        "".into(),
        "Read misses within stride sequence".into(),
        "Avg. length of sequence".into(),
        "Dominant stride (blocks)".into(),
    ]);

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let [base_cell, large_cell] = cells else {
            unreachable!()
        };
        let base = characterization(base_cell);
        let large = characterization(large_cell);
        table.row(vec![
            app.name().into(),
            format!(
                "{} ({:.0}% -> {:.0}%)",
                trend(base.stride_fraction(), large.stride_fraction(), 0.05),
                base.stride_fraction() * 100.0,
                large.stride_fraction() * 100.0
            ),
            format!(
                "{} ({:.1} -> {:.1})",
                trend(
                    base.avg_sequence_length(),
                    large.avg_sequence_length(),
                    0.10
                ),
                base.avg_sequence_length(),
                large.avg_sequence_length()
            ),
            format!(
                "{} -> {}",
                base.dominant_strides_label(),
                large.dominant_strides_label()
            ),
        ]);
    }
    println!("{}", table.render());

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
