//! A fixed-size performance smoke test for the simulator core.
//!
//! Runs a Figure-6 workload matrix (every application, baseline plus the
//! three degree-1 prefetching schemes) cell-serially through the
//! [`ExperimentSpec`] runner and reports, separately:
//!
//! * **trace generation time** — each application's packed trace is
//!   generated exactly once (the per-process trace cache) and shared by
//!   all four of its runs;
//! * **simulation time** — the 24 replay runs through `TraceCursor`s;
//! * **resident bytes per trace operation** of the packed encoding.
//!
//! Throughput (simulated pclocks per wall-clock second, generation
//! included) is recorded under a label in the grid's ledger:
//! `BENCH_PR1.json` for the default-size grid, `BENCH_PR6.json` for the
//! `--large` grid (where the event kernel dominates and the sharded
//! kernel's win is visible), `BENCH_PR7.json` for the warmed large grid
//! the `--checkpoint` benchmark sweeps; the like-for-like packed-grid
//! measurements live in `BENCH_PR2.json`.
//!
//! Usage:
//! `cargo run -p pfsim-bench --bin perfsmoke --release -- [--label NAME]
//! [--grid NAME] [--threads N] [--large] [--checkpoint] [--trend]
//! [--check] [--spec PATH]`
//!
//! * `--label NAME` records the run in the grid's throughput ledger
//!   (conventional labels: `seed`, `optimized`, `ci`, `shards2`).
//! * `--grid NAME` records the run (with the generation/simulation split
//!   and bytes/op) in BENCH_PR2.json.
//! * `--threads N` runs every cell on the sharded event kernel with `N`
//!   worker threads; the count round-trips into the run manifest. The
//!   pclock totals are bit-identical to serial, so `--check` still holds.
//! * `--large` runs the large-size grid (ledger: BENCH_PR6.json,
//!   manifest: `perfsmoke-large`).
//! * `--checkpoint` runs the warmup-checkpoint benchmark instead: the
//!   large grid with a 3M-pclock warmup boundary, swept straight-through
//!   and again forking every cell from shared checkpoints. The two totals
//!   must be bit-identical; both arms plus the unwarmed serial sweep are
//!   recorded in BENCH_PR7.json.
//! * `--trend` prints the pclocks/sec trajectory of every `BENCH_*.json`
//!   ledger and exits without simulating anything.
//! * `--spec PATH` runs the wire-format `ExperimentSpec` (schema v2 JSON,
//!   the same document `pfsim-client submit` sends) instead of the
//!   built-in grid, writes its manifest, and skips the ledgers.
//! * `--check` exits nonzero unless this run's total pclocks match the
//!   ledger's recorded `seed` total (replay determinism — for a grid
//!   whose ledger has no seed entry yet, the comparison is skipped with
//!   a once-per-process notice naming the ledger instead of failing),
//!   the packed encoding stays within its bytes/op budget, and the JSON
//!   run manifest this run just emitted validates, agrees on the total,
//!   and records the thread count.

use pfsim::{System, SystemConfig};
use pfsim_analysis::Json;
use pfsim_bench::cli::{Args, PERFSMOKE_FLAGS};
use pfsim_bench::ledger::{update_ledger, Ledger, MissingSeedNotice, SeedCheck};
use pfsim_bench::spec::wire::WireSpec;
use pfsim_bench::{validate_manifest, ExperimentRun, ExperimentSpec, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

/// The packed encoding's budget from the trace-subsystem design: a
/// narrow read is 9 bytes, so the app mix must stay under 10.
const BYTES_PER_OP_BUDGET: f64 = 10.0;

/// Warmup boundary for the `--checkpoint` benchmark: deep enough to
/// matter on the apps that dominate the large grid's wall-clock (LU ~20M,
/// Water ~8M, Cholesky ~6M pclocks per cell), past the end of the three
/// short apps (whose cells complete inside the scheme-free prefix — noted
/// in the BENCH_PR7.json annotation).
const CHECKPOINT_WARMUP: u64 = 3_000_000;

fn repo_file(name: &str) -> String {
    format!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../{}"), name)
}

fn main() {
    let args = Args::parse("perfsmoke", PERFSMOKE_FLAGS);

    if args.trend {
        print_trend();
        return;
    }
    if let Some(path) = &args.spec {
        run_wire_spec(path, args.check);
        return;
    }
    if args.checkpoint {
        run_checkpoint_bench(args.check);
        return;
    }

    // The throughput ledger is per grid: the default-size anchor lives
    // in BENCH_PR1.json, the large grid's trend in BENCH_PR6.json (the
    // paper-size grid has no ledger yet; its seed check reads Missing
    // and is tolerated with the once-per-process notice).
    let ledger_path = repo_file(match args.size {
        Size::Default => "BENCH_PR1.json",
        Size::Large => "BENCH_PR6.json",
        Size::Paper => "BENCH_PAPER.json",
    });
    let threads = args.threads;

    warm_allocator();

    // The 24-cell grid: cell-serial (stable single-threaded timing, any
    // parallelism is inside the sharded kernel) and quiet (the point is
    // the totals, not 24 progress lines).
    let run = ExperimentSpec::new(match args.size {
        Size::Default => "perfsmoke",
        Size::Paper => "perfsmoke-paper",
        Size::Large => "perfsmoke-large",
    })
    .size(args.size)
    .apps(App::ALL)
    .baseline_and(&[
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
    ])
    .serial()
    .threads(threads)
    .quiet()
    .run();

    let gen_seconds = run.gen_seconds;
    let sim_seconds = run.sim_seconds;
    let total_ops: u64 = run.traces.iter().map(|t| t.ops).sum();
    let total_bytes: u64 = run.traces.iter().map(|t| t.packed_bytes).sum();
    let bytes_per_op = total_bytes as f64 / total_ops as f64;

    println!(
        "trace generation: {total_ops} ops in {gen_seconds:.3}s, packed {:.1} KB = {bytes_per_op:.2} bytes/op",
        total_bytes as f64 / 1024.0
    );
    for t in &run.traces {
        println!(
            "  {:10} {:>8} ops, {:.2} bytes/op",
            t.app.name(),
            t.ops,
            t.bytes_per_op
        );
    }

    let pclocks = run.total_pclocks();
    let seconds = gen_seconds + sim_seconds;
    let rate = pclocks as f64 / seconds;

    println!("simulation: {pclocks} pclocks in {sim_seconds:.2}s (threads={threads})");
    println!(
        "perfsmoke [{}]: {pclocks} pclocks in {seconds:.2}s = {rate:.0} pclocks/sec (gen {gen_seconds:.2}s + sim {sim_seconds:.2}s)",
        args.label.as_deref().unwrap_or("unrecorded")
    );

    if let Some(label) = &args.label {
        let ledger = update_ledger(
            &ledger_path,
            label,
            ledger_entry(pclocks, seconds, Some(threads), rate, &[]),
        );
        if let (Some(seed), Some(now)) = (ledger.rate_of("seed"), ledger.rate_of(label)) {
            if label != "seed" {
                println!("speedup vs seed: {:.2}x", now / seed);
            }
        }
        println!("ledger: {ledger_path}");
    }

    if let Some(label) = &args.grid {
        let path = repo_file("BENCH_PR2.json");
        update_ledger(
            &path,
            label,
            ledger_entry(
                pclocks,
                seconds,
                None,
                rate,
                &[
                    ("gen_seconds", Json::Float(round3(gen_seconds))),
                    ("sim_seconds", Json::Float(round3(sim_seconds))),
                    ("bytes_per_op", Json::Float(round2(bytes_per_op))),
                ],
            ),
        );
        println!("grid ledger: {path}");
    }

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());

    if args.check {
        let mut notice = MissingSeedNotice::default();
        check_seed_or_exit(&ledger_path, pclocks, &mut notice);
        if bytes_per_op > BYTES_PER_OP_BUDGET {
            eprintln!(
                "check FAILED: packed encoding costs {bytes_per_op:.2} bytes/op (> {BYTES_PER_OP_BUDGET})"
            );
            std::process::exit(1);
        }
        let parsed = match validate_manifest(&manifest) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("check FAILED: manifest {}: {e}", manifest.display());
                std::process::exit(1);
            }
        };
        if parsed.total_pclocks != pclocks {
            eprintln!(
                "check FAILED: manifest records {} pclocks but this run simulated {pclocks}",
                parsed.total_pclocks
            );
            std::process::exit(1);
        }
        if parsed.threads != threads.max(1) as u64 {
            eprintln!(
                "check FAILED: manifest records threads={} but this run used --threads {threads}",
                parsed.threads
            );
            std::process::exit(1);
        }
        println!(
            "check OK: {pclocks} pclocks, manifest validates ({} cells, threads={}), {bytes_per_op:.2} bytes/op <= {BYTES_PER_OP_BUDGET}",
            parsed.cells.len(),
            parsed.threads
        );
    }
}

/// A run entry for the throughput ledgers, plus any grid-specific extras
/// (inserted before the rate so the key order matches the ledger files).
fn ledger_entry(
    pclocks: u64,
    seconds: f64,
    threads: Option<usize>,
    rate: f64,
    extras: &[(&str, Json)],
) -> Json {
    let mut members = vec![
        ("pclocks", Json::uint(pclocks)),
        ("seconds", Json::Float(round3(seconds))),
    ];
    if let Some(t) = threads {
        members.push(("threads", Json::uint(t as u64)));
    }
    for (k, v) in extras {
        members.push((k, v.clone()));
    }
    members.push(("pclocks_per_sec", Json::uint(rate.round() as u64)));
    Json::obj(members)
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// One small untimed run to warm the allocator and code caches.
fn warm_allocator() {
    let _ = System::new(
        SystemConfig::paper_baseline(),
        pfsim_workloads::micro::sequential_walk(16, 64, 1),
    )
    .run();
}

/// Compares `pclocks` against the seed entry of the ledger at `path`:
/// exits the process on a mismatch, tolerates a missing seed with a
/// once-per-process notice, and prints the match otherwise.
fn check_seed_or_exit(path: &str, pclocks: u64, notice: &mut MissingSeedNotice) {
    match Ledger::read(path).seed_check(pclocks) {
        SeedCheck::Missing => {
            if let Some(line) = notice.tolerate(path) {
                println!("{line}");
            }
        }
        SeedCheck::Mismatch { expected, got } => {
            eprintln!(
                "check FAILED: grid simulated {got} pclocks but the seed entry of {path} records {expected}"
            );
            std::process::exit(1);
        }
        SeedCheck::Match(expected) => {
            println!("check: pclock total matches the seed entry of {path} ({expected})");
        }
    }
}

/// `--spec PATH`: runs a wire-format spec — the offline twin of a
/// `pfsim-serve` submission, sharing the same parse/validate layer.
fn run_wire_spec(path: &str, check: bool) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    let wire = WireSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    let run = wire.to_experiment_spec().serial().run();
    let pclocks = run.total_pclocks();
    println!(
        "spec {}: {} cells, {pclocks} pclocks in {:.2}s",
        wire.name,
        run.cells.len(),
        run.gen_seconds + run.sim_seconds
    );
    let manifest = run.write_manifest().expect("write run manifest");
    println!("manifest: {}", manifest.display());
    if check {
        let parsed = validate_manifest(&manifest).unwrap_or_else(|e| {
            eprintln!("check FAILED: manifest {}: {e}", manifest.display());
            std::process::exit(1);
        });
        assert_eq!(parsed.total_pclocks, pclocks);
        println!(
            "check OK: manifest validates ({} cells)",
            parsed.cells.len()
        );
    }
}

/// The warmup-checkpoint benchmark (`--checkpoint`): three serial sweeps
/// of the large grid, recorded in BENCH_PR7.json.
///
/// 1. `serial` — the unwarmed grid, pinned to the BENCH_PR6.json seed
///    total (the layout-optimization arm: same sweep PR 6 measured).
/// 2. `checkpoint_straight` — a 3M-pclock scheme-free warmup prefix
///    simulated from cold in every cell.
/// 3. `checkpointed` — the same warmed grid, but the cells of each app
///    fork from one shared checkpoint of the warm prefix.
///
/// Arms 2 and 3 must produce bit-identical pclock totals (the checkpoint
/// contract); the wall-clock ratio between them is the checkpointing win
/// on identical simulated work.
fn run_checkpoint_bench(check: bool) {
    let pr7 = repo_file("BENCH_PR7.json");
    let pr6 = repo_file("BENCH_PR6.json");
    warm_allocator();

    let warmed = |name: &'static str, share: bool| {
        let mut spec = ExperimentSpec::new(name)
            .size(Size::Large)
            .apps(App::ALL)
            .baseline_and(&[
                Scheme::IDetection { degree: 1 },
                Scheme::DDetection { degree: 1 },
                Scheme::Sequential { degree: 1 },
            ])
            .warmup(CHECKPOINT_WARMUP)
            .serial()
            .quiet();
        if !share {
            spec = spec.warmup_straight();
        }
        spec.run()
    };

    let record = |run: &ExperimentRun, label: &str| {
        let pclocks = run.total_pclocks();
        let seconds = run.gen_seconds + run.sim_seconds;
        let rate = pclocks as f64 / seconds;
        println!("{label}: {pclocks} pclocks in {seconds:.2}s = {rate:.0} pclocks/sec");
        update_ledger(
            &pr7,
            label,
            ledger_entry(pclocks, seconds, Some(1), rate, &[]),
        );
        rate
    };

    let serial = ExperimentSpec::new("perfsmoke-large")
        .size(Size::Large)
        .apps(App::ALL)
        .baseline_and(&[
            Scheme::IDetection { degree: 1 },
            Scheme::DDetection { degree: 1 },
            Scheme::Sequential { degree: 1 },
        ])
        .serial()
        .quiet()
        .run();
    let serial_rate = record(&serial, "serial");

    let straight = warmed("perfsmoke-ckpt-straight", false);
    let straight_rate = record(&straight, "checkpoint_straight");

    let shared = warmed("perfsmoke-ckpt", true);
    let shared_rate = record(&shared, "checkpointed");

    assert_eq!(
        straight.total_pclocks(),
        shared.total_pclocks(),
        "checkpointed sweep diverged from the straight-through warmed sweep"
    );
    for (s, c) in straight.cells.iter().zip(&shared.cells) {
        assert_eq!(
            s.result.exec_cycles, c.result.exec_cycles,
            "{} cell diverged between straight and checkpointed warmup",
            s.app
        );
    }
    println!(
        "bit-identity: warmed grid total {} reproduced straight-through and checkpointed",
        shared.total_pclocks()
    );
    println!(
        "checkpointed vs straight-through: {:.2}x   checkpointed vs serial sweep: {:.2}x",
        shared_rate / straight_rate,
        shared_rate / serial_rate
    );
    println!("ledger: {pr7}");

    if check {
        let mut notice = MissingSeedNotice::default();
        // The unwarmed arm is the same sweep the large grid always runs:
        // it must reproduce the BENCH_PR6.json anchor exactly.
        check_seed_or_exit(&pr6, serial.total_pclocks(), &mut notice);
        // The warmed total anchors in this benchmark's own ledger (missing
        // until the grid's seed entry is recorded — tolerated with the
        // warn-once notice).
        check_seed_or_exit(&pr7, shared.total_pclocks(), &mut notice);
        println!("check OK: both sweeps match their ledger anchors");
    }
}

/// `--trend`: the pclocks/sec trajectory of every BENCH_*.json ledger,
/// in ledger order, with each entry's speedup over that grid's seed.
fn print_trend() {
    let root = repo_file("");
    let mut ledgers: Vec<String> = std::fs::read_dir(&root)
        .expect("read repo root")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    ledgers.sort();
    for name in ledgers {
        let ledger = Ledger::read(&format!("{root}{name}"));
        println!("{name}");
        let seed = ledger.rate_of("seed");
        for label in ledger.labels() {
            let (Some(rate), Some(pclocks)) = (ledger.rate_of(label), ledger.pclocks_of(label))
            else {
                continue;
            };
            let vs_seed = match seed {
                Some(s) if s > 0.0 => format!("  {:>5.2}x vs seed", rate / s),
                _ => String::new(),
            };
            println!("  {label:<22} {rate:>12.0} pclocks/sec  ({pclocks} pclocks){vs_seed}");
        }
    }
}
