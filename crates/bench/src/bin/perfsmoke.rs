//! A fixed-size performance smoke test for the simulator core.
//!
//! Runs the default-size Figure-6 workload matrix (every application,
//! baseline plus the three degree-1 prefetching schemes) single-threaded
//! and reports throughput as **simulated pclocks per wall-clock second**.
//! The measurement is recorded under a label in `BENCH_PR1.json` at the
//! workspace root so optimization work has a before/after ledger.
//!
//! Usage: `cargo run -p pfsim-bench --bin perfsmoke --release [-- --label NAME]`
//!
//! The conventional labels are `seed` (the pre-optimization event loop)
//! and `optimized`; the default label is `current`.

use std::time::Instant;

use pfsim::{System, SystemConfig};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let label = label_from_args();
    let schemes = [
        None,
        Some(Scheme::IDetection { degree: 1 }),
        Some(Scheme::DDetection { degree: 1 }),
        Some(Scheme::Sequential { degree: 1 }),
    ];

    // Warm up allocator and caches with one small run (not timed).
    let _ = System::new(
        SystemConfig::paper_baseline(),
        pfsim_workloads::micro::sequential_walk(16, 64, 1),
    )
    .run();

    let mut pclocks = 0u64;
    let start = Instant::now();
    for app in App::ALL {
        for scheme in schemes {
            let mut cfg = SystemConfig::paper_baseline();
            if let Some(s) = scheme {
                cfg = cfg.with_scheme(s);
            }
            let r = System::new(cfg, app.build_default()).run();
            pclocks += r.exec_cycles;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let rate = pclocks as f64 / seconds;

    println!("perfsmoke [{label}]: {pclocks} pclocks in {seconds:.2}s = {rate:.0} pclocks/sec");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR1.json");
    let entries = update_ledger(path, &label, pclocks, seconds, rate);
    if let (Some(seed), Some(now)) = (rate_of(&entries, "seed"), rate_of(&entries, &label)) {
        if label != "seed" {
            println!("speedup vs seed: {:.2}x", now / seed);
        }
    }
    println!("ledger: {path}");
}

fn label_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "current".to_string())
}

/// One ledger entry per line keyed by label; rewriting a label replaces
/// its line. The file is a plain JSON object (only this binary writes it).
fn update_ledger(path: &str, label: &str, pclocks: u64, seconds: f64, rate: f64) -> Vec<String> {
    let mut entries: Vec<String> = std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|l| l.trim_start().starts_with('"'))
        .filter(|l| !l.trim_start().starts_with(&format!("\"{label}\"")))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect();
    entries.push(format!(
        "  \"{label}\": {{\"pclocks\": {pclocks}, \"seconds\": {seconds:.3}, \"pclocks_per_sec\": {rate:.0}}}"
    ));
    let body = entries.join(",\n");
    std::fs::write(path, format!("{{\n{body}\n}}\n")).expect("write BENCH_PR1.json");
    entries
}

fn rate_of(entries: &[String], label: &str) -> Option<f64> {
    let line = entries
        .iter()
        .find(|l| l.trim_start().starts_with(&format!("\"{label}\"")))?;
    let key = "\"pclocks_per_sec\": ";
    let at = line.find(key)? + key.len();
    line[at..]
        .trim_end_matches(['}', ',', ' '])
        .parse::<f64>()
        .ok()
}
