//! A fixed-size performance smoke test for the simulator core.
//!
//! Runs a Figure-6 workload matrix (every application, baseline plus the
//! three degree-1 prefetching schemes) cell-serially through the
//! [`ExperimentSpec`] runner and reports, separately:
//!
//! * **trace generation time** — each application's packed trace is
//!   generated exactly once (the per-process trace cache) and shared by
//!   all four of its runs;
//! * **simulation time** — the 24 replay runs through `TraceCursor`s;
//! * **resident bytes per trace operation** of the packed encoding.
//!
//! Throughput (simulated pclocks per wall-clock second, generation
//! included) is recorded under a label in the grid's ledger:
//! `BENCH_PR1.json` for the default-size grid, `BENCH_PR6.json` for the
//! `--large` grid (where the event kernel dominates and the sharded
//! kernel's win is visible); the like-for-like packed-grid measurements
//! live in `BENCH_PR2.json`.
//!
//! Usage:
//! `cargo run -p pfsim-bench --bin perfsmoke --release -- [--label NAME]
//! [--grid NAME] [--threads N] [--large] [--check]`
//!
//! * `--label NAME` records the run in the grid's throughput ledger
//!   (conventional labels: `seed`, `optimized`, `ci`, `shards2`).
//! * `--grid NAME` records the run (with the generation/simulation split
//!   and bytes/op) in BENCH_PR2.json.
//! * `--threads N` runs every cell on the sharded event kernel with `N`
//!   worker threads; the count round-trips into the run manifest. The
//!   pclock totals are bit-identical to serial, so `--check` still holds.
//! * `--large` runs the large-size grid (ledger: BENCH_PR6.json,
//!   manifest: `perfsmoke-large`).
//! * `--check` exits nonzero unless this run's total pclocks match the
//!   ledger's recorded `seed` total (replay determinism — for a grid
//!   whose ledger has no seed entry yet, the comparison is skipped with
//!   a notice instead of failing), the packed encoding stays within its
//!   bytes/op budget, and the JSON run manifest this run just emitted
//!   validates, agrees on the total, and records the thread count.

use pfsim::{System, SystemConfig};
use pfsim_bench::{validate_manifest, ExperimentSpec, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

/// The packed encoding's budget from the trace-subsystem design: a
/// narrow read is 9 bytes, so the app mix must stay under 10.
const BYTES_PER_OP_BUDGET: f64 = 10.0;

fn main() {
    let label = arg_value("--label");
    let grid_label = arg_value("--grid");
    let check = std::env::args().any(|a| a == "--check");
    let large = std::env::args().any(|a| a == "--large");
    let threads: usize = arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(1);

    // The throughput ledger is per grid: the default-size anchor lives
    // in BENCH_PR1.json, the large grid's trend in BENCH_PR6.json.
    let ledger_path = if large {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR1.json")
    };

    // Warm up allocator and caches with one small run (not timed).
    let _ = System::new(
        SystemConfig::paper_baseline(),
        pfsim_workloads::micro::sequential_walk(16, 64, 1),
    )
    .run();

    // The 24-cell grid: cell-serial (stable single-threaded timing, any
    // parallelism is inside the sharded kernel) and quiet (the point is
    // the totals, not 24 progress lines).
    let run = ExperimentSpec::new(if large {
        "perfsmoke-large"
    } else {
        "perfsmoke"
    })
    .size(if large { Size::Large } else { Size::Default })
    .apps(App::ALL)
    .baseline_and(&[
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
    ])
    .serial()
    .threads(threads)
    .quiet()
    .run();

    let gen_seconds = run.gen_seconds;
    let sim_seconds = run.sim_seconds;
    let total_ops: u64 = run.traces.iter().map(|t| t.ops).sum();
    let total_bytes: u64 = run.traces.iter().map(|t| t.packed_bytes).sum();
    let bytes_per_op = total_bytes as f64 / total_ops as f64;

    println!(
        "trace generation: {total_ops} ops in {gen_seconds:.3}s, packed {:.1} KB = {bytes_per_op:.2} bytes/op",
        total_bytes as f64 / 1024.0
    );
    for t in &run.traces {
        println!(
            "  {:10} {:>8} ops, {:.2} bytes/op",
            t.app.name(),
            t.ops,
            t.bytes_per_op
        );
    }

    let pclocks = run.total_pclocks();
    let seconds = gen_seconds + sim_seconds;
    let rate = pclocks as f64 / seconds;

    println!("simulation: {pclocks} pclocks in {sim_seconds:.2}s (threads={threads})");
    println!(
        "perfsmoke [{}]: {pclocks} pclocks in {seconds:.2}s = {rate:.0} pclocks/sec (gen {gen_seconds:.2}s + sim {sim_seconds:.2}s)",
        label.as_deref().unwrap_or("unrecorded")
    );

    if let Some(label) = &label {
        let entries = update_ledger(
            ledger_path,
            label,
            &format!("{{\"pclocks\": {pclocks}, \"seconds\": {seconds:.3}, \"threads\": {threads}, \"pclocks_per_sec\": {rate:.0}}}"),
        );
        if let (Some(seed), Some(now)) = (rate_of(&entries, "seed"), rate_of(&entries, label)) {
            if label != "seed" {
                println!("speedup vs seed: {:.2}x", now / seed);
            }
        }
        println!("ledger: {ledger_path}");
    }

    if let Some(label) = &grid_label {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json");
        update_ledger(
            path,
            label,
            &format!(
                "{{\"pclocks\": {pclocks}, \"seconds\": {seconds:.3}, \"gen_seconds\": {gen_seconds:.3}, \"sim_seconds\": {sim_seconds:.3}, \"bytes_per_op\": {bytes_per_op:.2}, \"pclocks_per_sec\": {rate:.0}}}"
            ),
        );
        println!("grid ledger: {path}");
    }

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());

    if check {
        let entries = read_entries(ledger_path);
        // A grid whose ledger has no seed entry yet (a freshly added
        // grid) has nothing to compare against: note it and let the
        // remaining checks stand, so adding a grid does not require
        // hand-seeding its ledger before CI can run.
        match pclocks_of(&entries, "seed") {
            None => {
                println!(
                    "check: no seed entry in {ledger_path} (new grid), skipping pclock comparison"
                );
            }
            Some(expected) if pclocks != expected => {
                eprintln!(
                    "check FAILED: grid simulated {pclocks} pclocks but the ledger's seed entry records {expected}"
                );
                std::process::exit(1);
            }
            Some(expected) => {
                println!("check: pclock total matches the ledger's seed entry ({expected})");
            }
        }
        if bytes_per_op > BYTES_PER_OP_BUDGET {
            eprintln!(
                "check FAILED: packed encoding costs {bytes_per_op:.2} bytes/op (> {BYTES_PER_OP_BUDGET})"
            );
            std::process::exit(1);
        }
        let summary = match validate_manifest(&manifest) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("check FAILED: manifest {}: {e}", manifest.display());
                std::process::exit(1);
            }
        };
        if summary.total_pclocks != pclocks {
            eprintln!(
                "check FAILED: manifest records {} pclocks but this run simulated {pclocks}",
                summary.total_pclocks
            );
            std::process::exit(1);
        }
        if summary.threads != threads.max(1) as u64 {
            eprintln!(
                "check FAILED: manifest records threads={} but this run used --threads {threads}",
                summary.threads
            );
            std::process::exit(1);
        }
        println!(
            "check OK: {pclocks} pclocks, manifest validates ({} cells, threads={}), {bytes_per_op:.2} bytes/op <= {BYTES_PER_OP_BUDGET}",
            summary.cells, summary.threads
        );
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn read_entries(path: &str) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|l| l.trim_start().starts_with('"'))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

/// One ledger entry per line keyed by label; rewriting a label replaces
/// its line. The files are plain JSON objects (this binary rewrites the
/// label-keyed lines and preserves any annotation lines like `"note"`).
fn update_ledger(path: &str, label: &str, value: &str) -> Vec<String> {
    let mut entries: Vec<String> = read_entries(path)
        .into_iter()
        .filter(|l| !l.trim_start().starts_with(&format!("\"{label}\"")))
        .collect();
    entries.push(format!("  \"{label}\": {value}"));
    let body = entries.join(",\n");
    std::fs::write(path, format!("{{\n{body}\n}}\n")).expect("write perf ledger");
    entries
}

fn field_of(entries: &[String], label: &str, key: &str) -> Option<f64> {
    let line = entries
        .iter()
        .find(|l| l.trim_start().starts_with(&format!("\"{label}\"")))?;
    let key = format!("\"{key}\": ");
    let at = line.find(&key)? + key.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok()
}

fn rate_of(entries: &[String], label: &str) -> Option<f64> {
    field_of(entries, label, "pclocks_per_sec")
}

fn pclocks_of(entries: &[String], label: &str) -> Option<u64> {
    field_of(entries, label, "pclocks").map(|v| v as u64)
}
