//! Regenerates **Table 3** of the paper: application characteristics for a
//! finite 16 KB direct-mapped second-level cache — the percentage of
//! replacement misses plus the same three stride metrics as Table 2.
//! The paper's headline observation here is that MP3D's and Ocean's
//! replacement misses are overwhelmingly stride-1 sequences (sweeps over
//! data sets that no longer fit), which both stride *and* sequential
//! prefetching cover.
//!
//! Usage: `cargo run -p pfsim-bench --bin table3 --release [-- --paper]`

use pfsim::{MissCause, RecordMisses, SystemConfig};
use pfsim_analysis::{characterize, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{miss_event_iter, ExperimentSpec, RECORDED_CPU};
use pfsim_workloads::App;

fn main() {
    let run = ExperimentSpec::new("table3")
        .size(Args::parse("table3", SIZE_FLAGS).size)
        .apps(App::ALL)
        .variant(
            "record-16K",
            SystemConfig::builder()
                .slc_kb(16)
                .record_misses(RecordMisses::Cpu(RECORDED_CPU))
                .build(),
        )
        .run();

    println!("Table 3: application characteristics, finite 16 KB direct-mapped SLC");
    println!("(paper: repl-miss %: 32/45/45/76/82/39; stride %: 34/73/67/91/81/4.8)");
    println!();

    let mut table = TextTable::new(vec![
        "".into(),
        "Percentage repl. misses".into(),
        "Read misses within stride sequences".into(),
        "Avg. length of sequence".into(),
        "Dominant stride (blocks)".into(),
        "Misses (recorded cpu)".into(),
    ]);

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let trace = &cells[0].result.miss_traces[RECORDED_CPU];
        let ch = characterize(miss_event_iter(trace));
        let repl = trace
            .iter()
            .filter(|m| m.cause == MissCause::Replacement)
            .count();
        table.row(vec![
            app.name().into(),
            format!("{:.0}%", 100.0 * repl as f64 / trace.len().max(1) as f64),
            format!("{:.1}%", ch.stride_fraction() * 100.0),
            format!("{:.1}", ch.avg_sequence_length()),
            ch.dominant_strides_label(),
            format!("{}", ch.total_misses),
        ]);
    }
    println!("{}", table.render());

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
