//! Ablation: **finite SLC sweep** (§5.3 extension). The paper studies one
//! finite size (16 KB); this sweep runs the six applications at several
//! SLC capacities to show how replacement misses change the balance
//! between stride and sequential prefetching — replacement misses are
//! dominated by stride-1 sweeps, which both schemes (and especially
//! sequential prefetching) cover.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_slc --release`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::{cursor, metrics_of, run_logged, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let size = Size::from_args();
    let capacities: [(u64, &str); 4] = [
        (8 * 1024, "8K"),
        (16 * 1024, "16K"),
        (64 * 1024, "64K"),
        (0, "inf"),
    ];

    for app in App::ALL {
        let mut table = TextTable::new(vec![
            "SLC".into(),
            "baseline misses".into(),
            "repl %".into(),
            "I-det rel misses".into(),
            "Seq rel misses".into(),
        ]);
        for (bytes, label) in capacities {
            let cfg = |scheme| {
                let c = SystemConfig::paper_baseline().with_scheme(scheme);
                if bytes == 0 {
                    c
                } else {
                    c.with_finite_slc(bytes)
                }
            };
            let base_run = run_logged(
                &format!("{app} {label} baseline"),
                cfg(Scheme::None),
                cursor(app, size),
            );
            let base = metrics_of(&base_run);
            let repl = base_run.total(|n| n.replacement_misses);
            let mut row = vec![
                label.to_string(),
                format!("{}", base.read_misses),
                format!(
                    "{:.0}%",
                    100.0 * repl as f64 / base.read_misses.max(1) as f64
                ),
            ];
            for scheme in [
                Scheme::IDetection { degree: 1 },
                Scheme::Sequential { degree: 1 },
            ] {
                let run = metrics_of(&run_logged(
                    &format!("{app} {label} {scheme}"),
                    cfg(scheme),
                    cursor(app, size),
                ));
                row.push(format!("{:.2}", compare(&base, &run).relative_misses));
            }
            table.row(row);
        }
        println!("Finite-SLC sweep: {app}");
        println!("{}", table.render());
    }
}
