//! Ablation: **finite SLC sweep** (§5.3 extension). The paper studies one
//! finite size (16 KB); this sweep runs the six applications at several
//! SLC capacities to show how replacement misses change the balance
//! between stride and sequential prefetching — replacement misses are
//! dominated by stride-1 sweeps, which both schemes (and especially
//! sequential prefetching) cover.
//!
//! Usage: `cargo run -p pfsim-bench --bin ablation_slc --release`

use pfsim::SystemConfig;
use pfsim_analysis::{compare, TextTable};
use pfsim_bench::cli::{Args, SIZE_FLAGS};
use pfsim_bench::{metrics_of, ExperimentSpec};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn main() {
    let capacities: [(u64, &str); 4] = [
        (8 * 1024, "8K"),
        (16 * 1024, "16K"),
        (64 * 1024, "64K"),
        (0, "inf"),
    ];
    let schemes = [
        Scheme::None,
        Scheme::IDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
    ];

    // Per app: 4 capacities × (baseline + 2 schemes) = 12 cells.
    let mut spec = ExperimentSpec::new("ablation_slc")
        .size(Args::parse("ablation_slc", SIZE_FLAGS).size)
        .apps(App::ALL);
    for (bytes, label) in capacities {
        for scheme in schemes {
            let cfg = SystemConfig::paper_baseline().with_scheme(scheme);
            let cfg = if bytes == 0 {
                cfg
            } else {
                cfg.with_finite_slc(bytes)
            };
            spec = spec.variant(format!("{label} {scheme}"), cfg);
        }
    }
    let run = spec.run();

    for (app, cells) in run.apps.iter().zip(run.by_app()) {
        let mut table = TextTable::new(vec![
            "SLC".into(),
            "baseline misses".into(),
            "repl %".into(),
            "I-det rel misses".into(),
            "Seq rel misses".into(),
        ]);
        for ((_, label), group) in capacities.into_iter().zip(cells.chunks(schemes.len())) {
            let (base_cell, scheme_cells) = group.split_first().expect("baseline present");
            let base = metrics_of(&base_cell.result);
            let repl = base_cell.result.total(|n| n.replacement_misses);
            let mut row = vec![
                label.to_string(),
                format!("{}", base.read_misses),
                format!(
                    "{:.0}%",
                    100.0 * repl as f64 / base.read_misses.max(1) as f64
                ),
            ];
            for cell in scheme_cells {
                let c = compare(&base, &metrics_of(&cell.result));
                row.push(format!("{:.2}", c.relative_misses));
            }
            table.row(row);
        }
        println!("Finite-SLC sweep: {app}");
        println!("{}", table.render());
    }

    let manifest = run.write_manifest().expect("write run manifest");
    eprintln!("manifest: {}", manifest.display());
}
