//! JSON run manifests: the structured record every experiment binary
//! emits under `results/`.
//!
//! A manifest captures what was run (grid, configurations, trace
//! shapes, git revision), what it cost (per-phase and per-cell
//! wall-clock) and what came out (per-node statistics, network and
//! directory aggregates, the observability snapshot when instrumentation
//! was on). [`validate_manifest`] re-parses a manifest and cross-checks
//! its internal invariants — `perfsmoke --check` runs it against the
//! manifest it just emitted, and CI validates a small end-to-end run.

use std::path::Path;

use pfsim::{ConsistencyModel, MetricsSnapshot, NodeStats, RecordMisses, SimResult, SystemConfig};
use pfsim_analysis::Json;

use crate::spec::{CellResult, ExperimentRun, TraceInfo, Variant};

/// Schema version stamped into (and required from) every manifest.
pub const MANIFEST_SCHEMA_VERSION: i64 = 1;

/// Builds the manifest document for a completed run.
pub(crate) fn manifest_json(run: &ExperimentRun, analyze_seconds: f64) -> Json {
    assemble_manifest(
        &run.name,
        &run.size.to_string(),
        run.threads,
        (run.gen_seconds, run.sim_seconds, analyze_seconds),
        run.total_pclocks(),
        run.apps.iter().map(|a| a.name().to_string()).collect(),
        run.variants.iter().map(variant_json).collect(),
        run.traces.iter().map(trace_json).collect(),
        run.cells.iter().map(cell_json).collect(),
    )
}

/// Assembles a manifest document from pre-rendered parts.
///
/// This is the one place the manifest's top-level layout is defined:
/// [`ExperimentRun::write_manifest`](crate::ExperimentRun::write_manifest)
/// feeds it a freshly-simulated run, and `pfsim-serve` feeds it a mix of
/// cached and fresh cell documents — both produce the same byte layout.
#[allow(clippy::too_many_arguments)]
pub fn assemble_manifest(
    name: &str,
    size: &str,
    threads: usize,
    (gen_seconds, sim_seconds, analyze_seconds): (f64, f64, f64),
    total_pclocks: u64,
    apps: Vec<String>,
    variants: Vec<Json>,
    traces: Vec<Json>,
    cells: Vec<Json>,
) -> Json {
    Json::obj(vec![
        ("schema_version", Json::Int(MANIFEST_SCHEMA_VERSION)),
        ("name", Json::str(name)),
        ("size", Json::str(size)),
        ("threads", Json::uint(threads as u64)),
        ("git", Json::str(git_describe())),
        ("unix_time", Json::uint(unix_time())),
        (
            "phases",
            Json::obj(vec![
                ("gen_seconds", Json::Float(gen_seconds)),
                ("sim_seconds", Json::Float(sim_seconds)),
                ("analyze_seconds", Json::Float(analyze_seconds)),
            ]),
        ),
        ("total_pclocks", Json::uint(total_pclocks)),
        (
            "apps",
            Json::Array(apps.into_iter().map(Json::Str).collect()),
        ),
        ("variants", Json::Array(variants)),
        ("traces", Json::Array(traces)),
        ("cells", Json::Array(cells)),
    ])
}

/// The manifest encoding of one grid column (label, scheme, config).
pub fn variant_json(v: &Variant) -> Json {
    Json::obj(vec![
        ("label", Json::str(&v.label)),
        ("scheme", Json::str(v.cfg.scheme.to_string())),
        (
            "size",
            v.size.map_or(Json::Null, |s| Json::str(s.to_string())),
        ),
        ("config", config_json(&v.cfg)),
    ])
}

fn config_json(cfg: &SystemConfig) -> Json {
    Json::obj(vec![
        ("nodes", Json::uint(cfg.nodes as u64)),
        ("block_bytes", Json::uint(cfg.geometry.block_bytes())),
        ("flc_bytes", Json::uint(cfg.flc_bytes)),
        ("flwb_entries", Json::uint(cfg.flwb_entries as u64)),
        ("slwb_entries", Json::uint(cfg.slwb_entries as u64)),
        ("slc", Json::str(cfg.slc.describe())),
        (
            "consistency",
            Json::str(match cfg.consistency {
                ConsistencyModel::Release => "release",
                ConsistencyModel::Sequential => "sequential",
            }),
        ),
        (
            "record_misses",
            match cfg.record_misses {
                RecordMisses::None => Json::str("none"),
                RecordMisses::Cpu(cpu) => Json::str(format!("cpu:{cpu}")),
                RecordMisses::All => Json::str("all"),
            },
        ),
        ("instrument", Json::Bool(cfg.instrument)),
    ])
}

/// The manifest encoding of one generated trace's shape.
pub fn trace_json(t: &TraceInfo) -> Json {
    Json::obj(vec![
        ("app", Json::str(t.app.name())),
        ("size", Json::str(t.size.to_string())),
        ("cpus", Json::uint(t.cpus as u64)),
        ("ops", Json::uint(t.ops)),
        ("packed_bytes", Json::uint(t.packed_bytes)),
        ("bytes_per_op", Json::Float(t.bytes_per_op)),
    ])
}

/// The manifest encoding of one simulated cell (the unit `pfsim-serve`
/// caches).
pub fn cell_json(c: &CellResult) -> Json {
    let r = &c.result;
    Json::obj(vec![
        ("app", Json::str(c.app.name())),
        ("variant", Json::uint(c.variant as u64)),
        ("size", Json::str(c.size.to_string())),
        ("wall_seconds", Json::Float(c.wall_seconds)),
        ("exec_cycles", Json::uint(r.exec_cycles)),
        ("aggregates", aggregates_json(r)),
        (
            "net",
            Json::obj(vec![
                ("messages", Json::uint(r.net.messages)),
                ("flits", Json::uint(r.net.flits)),
                ("flit_hops", Json::uint(r.net.flit_hops)),
                ("queuing_cycles", Json::uint(r.net.queuing_cycles)),
            ]),
        ),
        (
            "dir",
            Json::obj(vec![
                ("memory_supplied", Json::uint(r.dir.memory_supplied)),
                ("owner_supplied", Json::uint(r.dir.owner_supplied)),
                ("invalidations", Json::uint(r.dir.invalidations)),
                ("writebacks", Json::uint(r.dir.writebacks)),
                ("stale_writebacks", Json::uint(r.dir.stale_writebacks)),
            ]),
        ),
        (
            "nodes",
            Json::Array(r.nodes.iter().map(node_json).collect()),
        ),
        (
            "metrics",
            r.metrics.as_ref().map_or(Json::Null, metrics_json),
        ),
    ])
}

fn aggregates_json(r: &SimResult) -> Json {
    Json::obj(vec![
        ("read_misses", Json::uint(r.read_misses())),
        ("read_stall", Json::uint(r.read_stall())),
        (
            "prefetches_issued",
            Json::uint(r.total(|n| n.prefetches_issued)),
        ),
        (
            "prefetches_useful",
            Json::uint(r.total(|n| n.prefetches_useful)),
        ),
        ("prefetch_efficiency", Json::Float(r.prefetch_efficiency())),
    ])
}

fn node_json(n: &NodeStats) -> Json {
    Json::obj(vec![
        ("reads", Json::uint(n.reads)),
        ("writes", Json::uint(n.writes)),
        ("flc_read_hits", Json::uint(n.flc_read_hits)),
        ("slc_read_hits", Json::uint(n.slc_read_hits)),
        ("tagged_hits", Json::uint(n.tagged_hits)),
        ("read_misses", Json::uint(n.read_misses)),
        ("delayed_hits", Json::uint(n.delayed_hits)),
        ("read_stall", Json::uint(n.read_stall)),
        ("sync_stall", Json::uint(n.sync_stall)),
        ("write_stall", Json::uint(n.write_stall)),
        ("barrier_stall", Json::uint(n.barrier_stall)),
        ("flwb_stall", Json::uint(n.flwb_stall)),
        ("prefetches_issued", Json::uint(n.prefetches_issued)),
        ("prefetches_useful", Json::uint(n.prefetches_useful)),
        ("pf_dropped_present", Json::uint(n.pf_dropped_present)),
        ("pf_dropped_inflight", Json::uint(n.pf_dropped_inflight)),
        ("pf_dropped_full", Json::uint(n.pf_dropped_full)),
        ("cold_misses", Json::uint(n.cold_misses)),
        ("coherence_misses", Json::uint(n.coherence_misses)),
        ("replacement_misses", Json::uint(n.replacement_misses)),
        ("invals_received", Json::uint(n.invals_received)),
        ("writebacks", Json::uint(n.writebacks)),
        ("spurious_slc_wakeups", Json::uint(n.spurious_slc_wakeups)),
    ])
}

/// The JSON encoding of a metrics registry snapshot (used in manifest
/// cells and by `pfsim-serve`'s `/status` endpoint).
pub fn metrics_json(m: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Object(
                m.counters
                    .iter()
                    .map(|(name, v)| (name.clone(), Json::uint(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Object(
                m.histograms
                    .iter()
                    .map(|(name, h)| {
                        (
                            name.clone(),
                            Json::obj(vec![
                                ("count", Json::uint(h.count)),
                                ("sum", Json::uint(h.sum)),
                                ("max", Json::uint(h.max)),
                                (
                                    "buckets",
                                    Json::Array(h.buckets.iter().map(|&b| Json::uint(b)).collect()),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// A validated run manifest, read back into its typed shape.
///
/// Reading is symmetric with writing: every field [`manifest_json`]
/// emits that downstream consumers care about comes back as a typed
/// accessor, so the server cache, `perfsmoke --check`, and the trend
/// report all share one walk of the document instead of each re-deriving
/// field paths by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The experiment name.
    pub name: String,
    /// Problem-size name (the [`crate::Size`] display form; kept as text
    /// because old manifests are free to name sizes this build dropped).
    pub size: String,
    /// The `git describe` stamp of the producing build.
    pub git: String,
    /// Worker threads each cell's event kernel ran on (1 = serial
    /// kernel; older manifests without the field read as 1).
    pub threads: u64,
    /// Sum of simulated execution time over all cells, in pclocks.
    pub total_pclocks: u64,
    /// Per-phase wall-clock: generation, simulation, analysis seconds.
    pub phase_seconds: (f64, f64, f64),
    /// Declared application names, in grid order.
    pub apps: Vec<String>,
    /// Declared grid columns, in grid order.
    pub variants: Vec<ManifestVariant>,
    /// Per-cell records, in emission order.
    pub cells: Vec<ManifestCell>,
}

/// One declared grid column of a parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestVariant {
    /// The column label.
    pub label: String,
    /// The scheme's display form (e.g. `"Seq(d=1)"`).
    pub scheme: String,
}

/// One simulated cell of a parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestCell {
    /// The application name (always one of the declared apps).
    pub app: String,
    /// Index into the declared variants (always in range).
    pub variant: usize,
    /// Simulated execution time of this cell, in pclocks.
    pub exec_cycles: u64,
}

impl Manifest {
    /// Parses and validates manifest text (see [`validate_manifest`] for
    /// the checked invariants). This is the entry point for callers
    /// holding bytes rather than a file — `pfsim-client` validates the
    /// manifest a server streamed back without touching disk.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = Json::parse(text)?;
        Manifest::from_json(&doc)
    }

    /// Validates an already-parsed manifest document.
    pub fn from_json(doc: &Json) -> Result<Manifest, String> {
        validate_doc(doc)
    }

    /// The cell for `(app, variant)`, if the grid simulated it.
    pub fn cell(&self, app: &str, variant: usize) -> Option<&ManifestCell> {
        self.cells
            .iter()
            .find(|c| c.app == app && c.variant == variant)
    }
}

/// Parses and validates the manifest at `path`.
///
/// Checks the schema version, the presence and types of every required
/// field, and the internal invariants: the cell grid is consistent with
/// the declared apps and variants, per-cell node statistics are present
/// and sum to the recorded aggregates, and `total_pclocks` equals the
/// sum of cell execution times. Returns the typed [`Manifest`].
pub fn validate_manifest(path: &Path) -> Result<Manifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn validate_doc(doc: &Json) -> Result<Manifest, String> {
    let version = field(doc, "schema_version")?
        .as_i64()
        .ok_or("schema_version is not an integer")?;
    if version != MANIFEST_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} (expected {MANIFEST_SCHEMA_VERSION})"
        ));
    }
    // Every key a producer can emit is listed in one of the
    // `reject_unknown_keys` calls below; the S104 lint diffs these lists
    // against the emitters, so a new emitted key fails lint (and a
    // manifest with a drifted key fails validation) until both agree.
    reject_unknown_keys(
        doc,
        "manifest",
        &[
            "schema_version",
            "name",
            "size",
            "threads",
            "git",
            "unix_time",
            "phases",
            "total_pclocks",
            "apps",
            "variants",
            "traces",
            "cells",
        ],
    )?;
    let name = field(doc, "name")?
        .as_str()
        .ok_or("name is not a string")?
        .to_string();
    let git = field(doc, "git")?
        .as_str()
        .ok_or("git is not a string")?
        .to_string();
    let size = field(doc, "size")?
        .as_str()
        .ok_or("size is not a string")?
        .to_string();
    let phases = field(doc, "phases")?;
    reject_unknown_keys(
        phases,
        "phases",
        &["gen_seconds", "sim_seconds", "analyze_seconds"],
    )?;
    let mut phase_seconds = [0.0f64; 3];
    for (slot, key) in ["gen_seconds", "sim_seconds", "analyze_seconds"]
        .into_iter()
        .enumerate()
    {
        phase_seconds[slot] = field(phases, key)?
            .as_f64()
            .ok_or_else(|| format!("phases.{key} is not a number"))?;
    }
    let total_pclocks = field(doc, "total_pclocks")?
        .as_u64()
        .ok_or("total_pclocks is not a u64")?;
    // Pre-sharding manifests (same schema version) lack the field; they
    // were all serial-kernel runs.
    let threads = match doc.get("threads") {
        Some(v) => v.as_u64().ok_or("threads is not a u64")?,
        None => 1,
    };

    let apps: Vec<String> = field(doc, "apps")?
        .as_array()
        .ok_or("apps is not an array")?
        .iter()
        .map(|a| {
            a.as_str()
                .map(str::to_string)
                .ok_or("apps entry is not a string")
        })
        .collect::<Result<_, _>>()?;
    let variant_docs = field(doc, "variants")?
        .as_array()
        .ok_or("variants is not an array")?;
    let mut variants = Vec::with_capacity(variant_docs.len());
    for (i, v) in variant_docs.iter().enumerate() {
        reject_unknown_keys(v, "variant", &["label", "scheme", "size", "config"])?;
        let mut strings = ["label", "scheme"].into_iter().map(|key| {
            Ok::<String, String>(
                field(v, key)?
                    .as_str()
                    .ok_or_else(|| format!("variants[{i}].{key} is not a string"))?
                    .to_string(),
            )
        });
        let (label, scheme) = (strings.next().unwrap()?, strings.next().unwrap()?);
        let config = field(v, "config")?;
        config
            .as_object()
            .ok_or_else(|| format!("variants[{i}].config is not an object"))?;
        reject_unknown_keys(
            config,
            "config",
            &[
                "nodes",
                "block_bytes",
                "flc_bytes",
                "flwb_entries",
                "slwb_entries",
                "slc",
                "consistency",
                "record_misses",
                "instrument",
            ],
        )?;
        variants.push(ManifestVariant { label, scheme });
    }
    for (i, t) in field(doc, "traces")?
        .as_array()
        .ok_or("traces is not an array")?
        .iter()
        .enumerate()
    {
        reject_unknown_keys(
            t,
            "trace",
            &["app", "size", "cpus", "ops", "packed_bytes", "bytes_per_op"],
        )?;
        for key in ["ops", "packed_bytes"] {
            field(t, key)?
                .as_u64()
                .ok_or_else(|| format!("traces[{i}].{key} is not a u64"))?;
        }
    }

    let cell_docs = field(doc, "cells")?
        .as_array()
        .ok_or("cells is not an array")?;
    let mut cells = Vec::with_capacity(cell_docs.len());
    let mut cycle_sum: u64 = 0;
    for (i, cell) in cell_docs.iter().enumerate() {
        reject_unknown_keys(
            cell,
            "cell",
            &[
                "app",
                "variant",
                "size",
                "wall_seconds",
                "exec_cycles",
                "aggregates",
                "net",
                "dir",
                "nodes",
                "metrics",
            ],
        )?;
        if let Some(net) = cell.get("net") {
            reject_unknown_keys(
                net,
                "net",
                &["messages", "flits", "flit_hops", "queuing_cycles"],
            )?;
        }
        if let Some(dir) = cell.get("dir") {
            reject_unknown_keys(
                dir,
                "dir",
                &[
                    "memory_supplied",
                    "owner_supplied",
                    "invalidations",
                    "writebacks",
                    "stale_writebacks",
                ],
            )?;
        }
        let app = field(cell, "app")?
            .as_str()
            .ok_or_else(|| format!("cells[{i}].app is not a string"))?;
        if !apps.iter().any(|a| a == app) {
            return Err(format!("cells[{i}].app '{app}' not in declared apps"));
        }
        let variant = field(cell, "variant")?
            .as_u64()
            .ok_or_else(|| format!("cells[{i}].variant is not a u64"))?;
        if variant as usize >= variants.len() {
            return Err(format!(
                "cells[{i}].variant {variant} out of range ({} variants)",
                variants.len()
            ));
        }
        let exec = field(cell, "exec_cycles")?
            .as_u64()
            .ok_or_else(|| format!("cells[{i}].exec_cycles is not a u64"))?;
        cycle_sum += exec;
        cells.push(ManifestCell {
            app: app.to_string(),
            variant: variant as usize,
            exec_cycles: exec,
        });
        let nodes = field(cell, "nodes")?
            .as_array()
            .ok_or_else(|| format!("cells[{i}].nodes is not an array"))?;
        if nodes.is_empty() {
            return Err(format!("cells[{i}].nodes is empty"));
        }
        for n in nodes {
            reject_unknown_keys(
                n,
                "node",
                &[
                    "reads",
                    "writes",
                    "flc_read_hits",
                    "slc_read_hits",
                    "tagged_hits",
                    "read_misses",
                    "delayed_hits",
                    "read_stall",
                    "sync_stall",
                    "write_stall",
                    "barrier_stall",
                    "flwb_stall",
                    "prefetches_issued",
                    "prefetches_useful",
                    "pf_dropped_present",
                    "pf_dropped_inflight",
                    "pf_dropped_full",
                    "cold_misses",
                    "coherence_misses",
                    "replacement_misses",
                    "invals_received",
                    "writebacks",
                    "spurious_slc_wakeups",
                ],
            )?;
        }
        let node_misses: Option<u64> = nodes
            .iter()
            .map(|n| field(n, "read_misses").ok()?.as_u64())
            .sum();
        let aggregates = field(cell, "aggregates")?;
        reject_unknown_keys(
            aggregates,
            "aggregates",
            &[
                "read_misses",
                "read_stall",
                "prefetches_issued",
                "prefetches_useful",
                "prefetch_efficiency",
            ],
        )?;
        let aggregate_misses = field(aggregates, "read_misses")?
            .as_u64()
            .ok_or_else(|| format!("cells[{i}].aggregates.read_misses is not a u64"))?;
        if node_misses != Some(aggregate_misses) {
            return Err(format!(
                "cells[{i}]: node read_misses {node_misses:?} != aggregate {aggregate_misses}"
            ));
        }
        // `metrics` must be present — an object when instrumented, null
        // otherwise.
        let metrics = field(cell, "metrics")?;
        if !matches!(metrics, Json::Null | Json::Object(_)) {
            return Err(format!("cells[{i}].metrics is neither null nor an object"));
        }
        if matches!(metrics, Json::Object(_)) {
            reject_unknown_keys(metrics, "metrics", &["counters", "histograms"])?;
            // Counter/histogram names are dynamic; the histogram record
            // shape is not.
            if let Some(hists) = metrics.get("histograms").and_then(Json::as_object) {
                for (_, h) in hists {
                    reject_unknown_keys(h, "histogram", &["count", "sum", "max", "buckets"])?;
                }
            }
        }
    }
    if cycle_sum != total_pclocks {
        return Err(format!(
            "total_pclocks {total_pclocks} != sum of cell exec_cycles {cycle_sum}"
        ));
    }

    Ok(Manifest {
        name,
        size,
        git,
        threads,
        total_pclocks,
        phase_seconds: (phase_seconds[0], phase_seconds[1], phase_seconds[2]),
        apps,
        variants,
        cells,
    })
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

/// Errors on any key of the object `v` outside `allowed`. Missing keys
/// are fine (optionality is each caller's business); unknown keys mean
/// the producer and this validator have drifted. Non-objects pass —
/// type errors are reported by the typed accessors with better context.
fn reject_unknown_keys(v: &Json, ctx: &str, allowed: &[&str]) -> Result<(), String> {
    let Some(members) = v.as_object() else {
        return Ok(());
    };
    for (k, _) in members {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("{ctx}: unknown key '{k}'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn git_describe_never_panics() {
        assert!(!git_describe().is_empty());
    }

    #[test]
    fn validate_rejects_missing_file_and_garbage() {
        assert!(validate_manifest(Path::new("/nonexistent/m.json")).is_err());
        let dir = std::env::temp_dir().join("pfsim-manifest-garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"schema_version\": 99}").unwrap();
        let err = validate_manifest(&path).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    /// The smallest manifest `validate_manifest` accepts: one app, one
    /// variant, one trace, two cells. Every failure-mode test below is a
    /// single mutation of this string.
    fn minimal_manifest() -> String {
        r#"{
            "schema_version": 1,
            "name": "unit",
            "git": "deadbeef",
            "size": "default",
            "threads": 2,
            "phases": {"gen_seconds": 0.1, "sim_seconds": 0.2, "analyze_seconds": 0.0},
            "total_pclocks": 300,
            "apps": ["mp3d"],
            "variants": [{"label": "base", "scheme": "None", "config": {}}],
            "traces": [{"ops": 10, "packed_bytes": 80}],
            "cells": [
                {"app": "mp3d", "variant": 0, "exec_cycles": 100,
                 "nodes": [{"read_misses": 3}, {"read_misses": 4}],
                 "aggregates": {"read_misses": 7}, "metrics": null},
                {"app": "mp3d", "variant": 0, "exec_cycles": 200,
                 "nodes": [{"read_misses": 0}],
                 "aggregates": {"read_misses": 0},
                 "metrics": {"counters": {}, "histograms": {}}}
            ]
        }"#
        .to_string()
    }

    /// Writes `text` to a fresh temp file and validates it.
    fn check(case: &str, text: &str) -> Result<Manifest, String> {
        let dir = std::env::temp_dir().join("pfsim-manifest-cases");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{case}.json"));
        std::fs::write(&path, text).unwrap();
        validate_manifest(&path)
    }

    #[test]
    fn minimal_manifest_validates_into_typed_form() {
        let m = check("minimal", &minimal_manifest()).unwrap();
        assert_eq!(m.name, "unit");
        assert_eq!(m.size, "default");
        assert_eq!(m.git, "deadbeef");
        assert_eq!(m.total_pclocks, 300);
        assert_eq!(m.threads, 2);
        assert_eq!(m.phase_seconds, (0.1, 0.2, 0.0));
        assert_eq!(m.apps, ["mp3d"]);
        assert_eq!(
            m.variants,
            [ManifestVariant {
                label: "base".to_string(),
                scheme: "None".to_string(),
            }]
        );
        assert_eq!(m.cells.len(), 2);
        assert_eq!(m.cells[0].exec_cycles, 100);
        assert_eq!(m.cell("mp3d", 0), Some(&m.cells[0]));
        assert_eq!(m.cell("water", 0), None);
        // Bytes-in-hand parsing (what `pfsim-client` does with a streamed
        // manifest) agrees with the file path.
        assert_eq!(Manifest::parse(&minimal_manifest()).unwrap(), m);
    }

    /// `threads` round-trips when present and defaults to 1 (the serial
    /// kernel) for pre-sharding manifests; a wrong type is rejected.
    #[test]
    fn validate_threads_field() {
        let text = minimal_manifest().replace("\"threads\": 2,\n", "");
        assert_eq!(check("no-threads", &text).unwrap().threads, 1);
        let text = minimal_manifest().replace("\"threads\": 2", "\"threads\": \"two\"");
        let err = check("bad-threads", &text).unwrap_err();
        assert!(err.contains("threads"), "{err}");
    }

    /// A phase timing gone missing is reported by name.
    #[test]
    fn validate_rejects_missing_phase() {
        let text = minimal_manifest().replace("\"sim_seconds\": 0.2, ", "");
        let err = check("missing-phase", &text).unwrap_err();
        assert!(err.contains("sim_seconds"), "{err}");
        // The whole phases object missing is also named.
        let full = minimal_manifest();
        let start = full.find("\"phases\"").unwrap();
        let end = full[start..].find("},").unwrap() + start + 2;
        let text = format!("{}{}", &full[..start], &full[end..]);
        let err = check("missing-phases", &text).unwrap_err();
        assert!(err.contains("phases"), "{err}");
    }

    /// A corrupt observability snapshot (wrong JSON type) is rejected;
    /// only `null` (metrics off) or an object (a snapshot) pass.
    #[test]
    fn validate_rejects_corrupt_snapshot() {
        let text = minimal_manifest().replace("\"metrics\": null", "\"metrics\": \"corrupt\"");
        let err = check("corrupt-snapshot", &text).unwrap_err();
        assert!(err.contains("metrics"), "{err}");
        let text = minimal_manifest().replace(
            "\"metrics\": {\"counters\": {}, \"histograms\": {}}",
            "\"metrics\": 17",
        );
        let err = check("numeric-snapshot", &text).unwrap_err();
        assert!(err.contains("metrics"), "{err}");
    }

    /// A key no producer emits is rejected at every nesting level the
    /// validator guards (the reader half of the S104 agreement).
    #[test]
    fn validate_rejects_unknown_keys() {
        for (case, from, to) in [
            (
                "top",
                "\"name\": \"unit\"",
                "\"name\": \"unit\", \"bogus\": 1",
            ),
            ("cell", "\"variant\": 0, ", "\"variant\": 0, \"bogus\": 1, "),
            (
                "node",
                "{\"read_misses\": 3}",
                "{\"read_misses\": 3, \"bogus\": 1}",
            ),
            (
                "metrics",
                "{\"counters\": {}, \"histograms\": {}}",
                "{\"counters\": {}, \"histograms\": {}, \"bogus\": {}}",
            ),
        ] {
            let text = minimal_manifest().replacen(from, to, 1);
            assert_ne!(text, minimal_manifest(), "case {case}: replace missed");
            let err = check(&format!("unknown-{case}"), &text).unwrap_err();
            assert!(err.contains("unknown key 'bogus'"), "case {case}: {err}");
        }
    }

    /// Per-node statistics must sum to the recorded aggregate.
    #[test]
    fn validate_rejects_node_sum_mismatch() {
        let text = minimal_manifest().replace("{\"read_misses\": 7}", "{\"read_misses\": 8}");
        let err = check("node-sum", &text).unwrap_err();
        assert!(err.contains("read_misses"), "{err}");
    }

    /// A cell referencing a variant index past the declared list fails.
    #[test]
    fn validate_rejects_variant_out_of_range() {
        let text = minimal_manifest().replacen("\"variant\": 0", "\"variant\": 1", 1);
        let err = check("variant-range", &text).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    /// A cell naming an undeclared app fails.
    #[test]
    fn validate_rejects_undeclared_app() {
        let text = minimal_manifest().replacen("{\"app\": \"mp3d\"", "{\"app\": \"water\"", 1);
        let err = check("undeclared-app", &text).unwrap_err();
        assert!(err.contains("water"), "{err}");
    }

    /// `total_pclocks` must equal the sum of cell execution times.
    #[test]
    fn validate_rejects_pclock_sum_mismatch() {
        let text = minimal_manifest().replace("\"total_pclocks\": 300", "\"total_pclocks\": 299");
        let err = check("pclock-sum", &text).unwrap_err();
        assert!(err.contains("total_pclocks"), "{err}");
    }

    /// A cell with an empty node array fails (the grid always simulates
    /// at least one node).
    #[test]
    fn validate_rejects_empty_nodes() {
        let text = minimal_manifest().replace("\"nodes\": [{\"read_misses\": 0}]", "\"nodes\": []");
        let err = check("empty-nodes", &text).unwrap_err();
        assert!(err.contains("nodes"), "{err}");
    }
}
