//! The one command-line parser every pfsim binary shares.
//!
//! Before this module each binary hand-rolled its own flag scan
//! (`Size::from_args` here, positional `args().position(..)` there),
//! which meant three slightly different spellings of the same error.
//! Now there is a single typed [`Args`] struct, a single flag table
//! ([`FLAGS`]) defining each flag's syntax exactly once, and each binary
//! merely declares *which* flags it accepts. Unknown flags are rejected
//! with the same message everywhere; a known flag passed to a binary
//! that does not accept it names the binary.
//!
//! # Examples
//!
//! ```
//! use pfsim_bench::cli::{Args, SIZE_FLAGS};
//! use pfsim_bench::Size;
//!
//! let args = Args::parse_from("figure6", SIZE_FLAGS, ["--paper".to_string()]).unwrap();
//! assert_eq!(args.size, Size::Paper);
//! assert!(Args::parse_from("figure6", SIZE_FLAGS, ["--label".to_string()]).is_err());
//! ```

use crate::Size;

/// How a flag takes its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueForm {
    /// A bare switch (`--check`).
    None,
    /// Value in the next argument (`--threads 4`).
    Next,
    /// Value after `=` in the same argument (`--size=paper`).
    Eq,
}

/// One entry of the shared flag table.
struct FlagDef {
    name: &'static str,
    value: ValueForm,
    help: &'static str,
}

/// Every flag any pfsim binary understands, defined exactly once.
const FLAGS: &[FlagDef] = &[
    FlagDef {
        name: "--paper",
        value: ValueForm::None,
        help: "run the paper's input sizes",
    },
    FlagDef {
        name: "--large",
        value: ValueForm::None,
        help: "run the enlarged (Table 4) input sizes",
    },
    FlagDef {
        name: "--size",
        value: ValueForm::Eq,
        help: "--size=<default|paper|large>: select the problem size",
    },
    FlagDef {
        name: "--threads",
        value: ValueForm::Next,
        help: "worker threads per simulation (sharded kernel; 1 = serial)",
    },
    FlagDef {
        name: "--label",
        value: ValueForm::Next,
        help: "record the run under this label in the grid's ledger",
    },
    FlagDef {
        name: "--grid",
        value: ValueForm::Next,
        help: "record the generation/simulation split in BENCH_PR2.json",
    },
    FlagDef {
        name: "--check",
        value: ValueForm::None,
        help: "fail unless the run matches its ledger/manifest anchors",
    },
    FlagDef {
        name: "--checkpoint",
        value: ValueForm::None,
        help: "run the warmup-checkpoint benchmark",
    },
    FlagDef {
        name: "--trend",
        value: ValueForm::None,
        help: "print the pclocks/sec trajectory of every ledger and exit",
    },
    FlagDef {
        name: "--spec",
        value: ValueForm::Next,
        help: "run the wire-format ExperimentSpec (JSON) at this path",
    },
    FlagDef {
        name: "--port",
        value: ValueForm::Next,
        help: "TCP port (0 = ephemeral)",
    },
    FlagDef {
        name: "--port-file",
        value: ValueForm::Next,
        help: "write the bound port number to this file once listening",
    },
    FlagDef {
        name: "--host",
        value: ValueForm::Next,
        help: "server host to connect to (default 127.0.0.1)",
    },
    FlagDef {
        name: "--workers",
        value: ValueForm::Next,
        help: "simulation worker threads of the server pool",
    },
    FlagDef {
        name: "--queue-depth",
        value: ValueForm::Next,
        help: "bounded job-queue capacity (submissions past it get 429)",
    },
    FlagDef {
        name: "--timeout-secs",
        value: ValueForm::Next,
        help: "default per-job wall-clock timeout, in seconds (0 = none)",
    },
    FlagDef {
        name: "--results-dir",
        value: ValueForm::Next,
        help: "manifest/cache directory (default: results)",
    },
    FlagDef {
        name: "--out",
        value: ValueForm::Next,
        help: "write the returned manifest to this path",
    },
];

/// Marker in an `accepts` list allowing bare (non-flag) arguments,
/// collected into [`Args::positional`].
pub const POSITIONAL: &str = "@positional";

/// The flag set of the twelve table/figure/ablation binaries: problem
/// size only.
pub const SIZE_FLAGS: &[&str] = &["--paper", "--large", "--size"];

/// The `perfsmoke` flag set.
pub const PERFSMOKE_FLAGS: &[&str] = &[
    "--paper",
    "--large",
    "--size",
    "--threads",
    "--label",
    "--grid",
    "--check",
    "--checkpoint",
    "--trend",
    "--spec",
];

/// The `pfsim-serve` flag set.
pub const SERVE_FLAGS: &[&str] = &[
    "--port",
    "--port-file",
    "--workers",
    "--queue-depth",
    "--timeout-secs",
    "--results-dir",
    "--threads",
];

/// The `pfsim-client` flag set (plus positional `command [operand]`).
pub const CLIENT_FLAGS: &[&str] = &["--host", "--port", "--out", POSITIONAL];

/// Parsed command line, typed. Every binary receives the same struct;
/// fields for flags the binary does not accept keep their defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Problem size (`--paper` / `--large` / `--size=`).
    pub size: Size,
    /// Worker threads per simulation (`--threads`, default 1).
    pub threads: usize,
    /// Ledger label (`--label`).
    pub label: Option<String>,
    /// BENCH_PR2 grid label (`--grid`).
    pub grid: Option<String>,
    /// `--check`.
    pub check: bool,
    /// `--checkpoint`.
    pub checkpoint: bool,
    /// `--trend`.
    pub trend: bool,
    /// Wire-spec path (`--spec`).
    pub spec: Option<String>,
    /// `--port` (None means the binary's default).
    pub port: Option<u16>,
    /// `--port-file`.
    pub port_file: Option<String>,
    /// `--host` (default `127.0.0.1`).
    pub host: String,
    /// `--workers` (default 2).
    pub workers: usize,
    /// `--queue-depth` (default 8).
    pub queue_depth: usize,
    /// `--timeout-secs` (None means no default timeout).
    pub timeout_secs: Option<u64>,
    /// `--results-dir`.
    pub results_dir: Option<String>,
    /// `--out`.
    pub out: Option<String>,
    /// Bare arguments, in order (only when the binary accepts
    /// [`POSITIONAL`]).
    pub positional: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            size: Size::Default,
            threads: 1,
            label: None,
            grid: None,
            check: false,
            checkpoint: false,
            trend: false,
            spec: None,
            port: None,
            port_file: None,
            host: "127.0.0.1".to_string(),
            workers: 2,
            queue_depth: 8,
            timeout_secs: None,
            results_dir: None,
            out: None,
            positional: Vec::new(),
        }
    }
}

impl Args {
    /// Parses the process command line for `bin`, which accepts exactly
    /// the flags in `accepts`. On any error, prints the message and the
    /// usage block and exits with status 2.
    pub fn parse(bin: &'static str, accepts: &'static [&'static str]) -> Args {
        match Args::parse_from(bin, accepts, std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprint!("{}", usage(bin, accepts));
                std::process::exit(2);
            }
        }
    }

    /// Pure form of [`Args::parse`] for testing: parses an argument list
    /// (without the program name).
    pub fn parse_from(
        bin: &str,
        accepts: &[&str],
        argv: impl IntoIterator<Item = String>,
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut size: Option<Size> = None;
        let mut it = argv.into_iter();
        while let Some(raw) = it.next() {
            if !raw.starts_with("--") {
                if accepts.contains(&POSITIONAL) {
                    args.positional.push(raw);
                    continue;
                }
                return Err(format!("unrecognized argument '{raw}'"));
            }
            let (name, inline) = match raw.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (raw.clone(), None),
            };
            let Some(def) = FLAGS.iter().find(|d| d.name == name) else {
                return Err(format!("unrecognized argument '{raw}'"));
            };
            if !accepts.contains(&def.name) {
                return Err(format!("'{name}' is not a flag of {bin}"));
            }
            let value = match (def.value, inline) {
                (ValueForm::None, None) => None,
                (ValueForm::Eq, Some(v)) => Some(v),
                (ValueForm::Next, None) => {
                    Some(it.next().ok_or_else(|| format!("{name} expects a value"))?)
                }
                // Wrong syntax for this flag (`--check=yes`, bare
                // `--size`): reject the token as written.
                _ => return Err(format!("unrecognized argument '{raw}'")),
            };
            apply(&mut args, &mut size, def.name, value)?;
        }
        args.size = size.unwrap_or_default();
        Ok(args)
    }
}

/// Applies one parsed flag to the in-progress `Args`.
fn apply(
    args: &mut Args,
    size: &mut Option<Size>,
    name: &str,
    value: Option<String>,
) -> Result<(), String> {
    let uint = |v: &Option<String>| -> Result<u64, String> {
        let v = v.as_deref().expect("value-taking flag parsed above");
        v.parse()
            .map_err(|_| format!("{name} expects a number, got '{v}'"))
    };
    match name {
        "--paper" => set_size(size, Size::Paper)?,
        "--large" => set_size(size, Size::Large)?,
        "--size" => {
            let picked = match value.as_deref() {
                Some("default") => Size::Default,
                Some("paper") => Size::Paper,
                Some("large") => Size::Large,
                Some(other) => return Err(format!("unknown size '{other}'")),
                None => unreachable!("--size is ValueForm::Eq"),
            };
            set_size(size, picked)?;
        }
        "--threads" => args.threads = uint(&value)? as usize,
        "--label" => args.label = value,
        "--grid" => args.grid = value,
        "--check" => args.check = true,
        "--checkpoint" => args.checkpoint = true,
        "--trend" => args.trend = true,
        "--spec" => args.spec = value,
        "--port" => {
            let v = uint(&value)?;
            args.port = Some(
                u16::try_from(v).map_err(|_| format!("--port expects a port number, got {v}"))?,
            );
        }
        "--port-file" => args.port_file = value,
        "--host" => args.host = value.expect("value-taking flag parsed above"),
        "--workers" => args.workers = (uint(&value)? as usize).max(1),
        "--queue-depth" => args.queue_depth = (uint(&value)? as usize).max(1),
        "--timeout-secs" => args.timeout_secs = Some(uint(&value)?),
        "--results-dir" => args.results_dir = value,
        "--out" => args.out = value,
        other => unreachable!("flag {other} in FLAGS but not applied"),
    }
    Ok(())
}

/// Records a size selection, rejecting conflicts across spellings.
fn set_size(chosen: &mut Option<Size>, picked: Size) -> Result<(), String> {
    match *chosen {
        Some(prev) if prev != picked => Err(format!("conflicting sizes: {prev} and {picked}")),
        _ => {
            *chosen = Some(picked);
            Ok(())
        }
    }
}

/// The usage block for `bin`: one line per accepted flag, table order.
pub fn usage(bin: &str, accepts: &[&str]) -> String {
    let mut out = format!("usage: {bin} [flags]");
    if accepts.contains(&POSITIONAL) {
        out.push_str(" [args...]");
    }
    out.push('\n');
    for def in FLAGS {
        if accepts.contains(&def.name) {
            out.push_str(&format!("  {:<16} {}\n", def.name, def.help));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(accepts: &[&str], args: &[&str]) -> Result<Args, String> {
        Args::parse_from("unit", accepts, args.iter().map(|s| s.to_string()))
    }

    fn size_of(args: &[&str]) -> Result<Size, String> {
        parse(SIZE_FLAGS, args).map(|a| a.size)
    }

    #[test]
    fn size_args_parse_every_spelling() {
        assert_eq!(size_of(&[]), Ok(Size::Default));
        assert_eq!(size_of(&["--paper"]), Ok(Size::Paper));
        assert_eq!(size_of(&["--large"]), Ok(Size::Large));
        assert_eq!(size_of(&["--size=default"]), Ok(Size::Default));
        assert_eq!(size_of(&["--size=paper"]), Ok(Size::Paper));
        assert_eq!(size_of(&["--size=large"]), Ok(Size::Large));
        // Repeating the same size is harmless.
        assert_eq!(size_of(&["--paper", "--size=paper"]), Ok(Size::Paper));
    }

    #[test]
    fn size_args_reject_conflicts_and_unknowns() {
        assert!(size_of(&["--paper", "--large"]).is_err());
        assert!(size_of(&["--size=huge"]).is_err());
        assert!(size_of(&["--verbose"]).is_err());
        assert!(size_of(&["paper"]).is_err());
    }

    /// The rejection paths name the offending token, so the usage
    /// message the binaries print is actionable.
    #[test]
    fn size_arg_errors_name_the_offender() {
        let err = size_of(&["--size=huge"]).unwrap_err();
        assert!(err.contains("huge"), "{err}");
        let err = size_of(&["--turbo"]).unwrap_err();
        assert!(err.contains("--turbo"), "{err}");
        let err = size_of(&["--paper", "--size=large"]).unwrap_err();
        assert!(err.contains("paper") && err.contains("large"), "{err}");
    }

    /// Near-miss spellings are rejected, not fuzzy-matched: sizes are
    /// case-sensitive, `--size=` needs a value, and flag-like prefixes
    /// of valid flags don't parse.
    #[test]
    fn size_args_reject_near_misses() {
        assert!(size_of(&["--size="]).is_err());
        assert!(size_of(&["--size"]).is_err());
        assert!(size_of(&["--size=Paper"]).is_err());
        assert!(size_of(&["--size=LARGE"]).is_err());
        assert!(size_of(&["--Paper"]).is_err());
        assert!(size_of(&["--paper=yes"]).is_err());
        assert!(size_of(&["--siz=paper"]).is_err());
        assert!(size_of(&[""]).is_err());
        // Conflicts are caught across spellings, in either order.
        assert!(size_of(&["--size=large", "--paper"]).is_err());
        assert!(size_of(&["--size=default", "--size=paper"]).is_err());
        // An error anywhere poisons the whole parse even if a valid flag
        // follows.
        assert!(size_of(&["--bogus", "--paper"]).is_err());
        assert!(size_of(&["--paper", "--bogus"]).is_err());
    }

    /// A flag outside the binary's accepted set is rejected with a
    /// message naming the binary, even though the flag itself is known.
    #[test]
    fn flags_outside_the_accepted_set_name_the_binary() {
        let err = parse(SIZE_FLAGS, &["--label", "x"]).unwrap_err();
        assert!(err.contains("--label") && err.contains("unit"), "{err}");
        // The same token parses fine for a binary that accepts it.
        let args = parse(PERFSMOKE_FLAGS, &["--label", "x"]).unwrap();
        assert_eq!(args.label.as_deref(), Some("x"));
    }

    #[test]
    fn perfsmoke_flags_parse_typed() {
        let args = parse(
            PERFSMOKE_FLAGS,
            &["--label", "ci", "--threads", "4", "--check", "--large"],
        )
        .unwrap();
        assert_eq!(args.label.as_deref(), Some("ci"));
        assert_eq!(args.threads, 4);
        assert!(args.check);
        assert_eq!(args.size, Size::Large);
        assert!(!args.trend && !args.checkpoint);
    }

    #[test]
    fn numeric_flags_reject_garbage_and_missing_values() {
        let err = parse(PERFSMOKE_FLAGS, &["--threads", "many"]).unwrap_err();
        assert!(err.contains("--threads") && err.contains("many"), "{err}");
        let err = parse(PERFSMOKE_FLAGS, &["--threads"]).unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
        let err = parse(SERVE_FLAGS, &["--port", "70000"]).unwrap_err();
        assert!(err.contains("--port"), "{err}");
    }

    #[test]
    fn serve_flags_parse_typed() {
        let args = parse(
            SERVE_FLAGS,
            &[
                "--port",
                "0",
                "--workers",
                "3",
                "--queue-depth",
                "5",
                "--timeout-secs",
                "30",
                "--results-dir",
                "/tmp/r",
            ],
        )
        .unwrap();
        assert_eq!(args.port, Some(0));
        assert_eq!(args.workers, 3);
        assert_eq!(args.queue_depth, 5);
        assert_eq!(args.timeout_secs, Some(30));
        assert_eq!(args.results_dir.as_deref(), Some("/tmp/r"));
        // Positional arguments are rejected unless the binary opts in.
        assert!(parse(SERVE_FLAGS, &["submit"]).is_err());
    }

    #[test]
    fn client_flags_collect_positionals_in_order() {
        let args = parse(
            CLIENT_FLAGS,
            &["submit", "--port", "9", "spec.json", "--out", "m.json"],
        )
        .unwrap();
        assert_eq!(args.positional, ["submit", "spec.json"]);
        assert_eq!(args.port, Some(9));
        assert_eq!(args.out.as_deref(), Some("m.json"));
        assert_eq!(args.host, "127.0.0.1");
    }

    #[test]
    fn usage_lists_only_accepted_flags() {
        let u = usage("figure6", SIZE_FLAGS);
        assert!(u.contains("--paper") && u.contains("--size"), "{u}");
        assert!(!u.contains("--label"), "{u}");
        let u = usage("pfsim-client", CLIENT_FLAGS);
        assert!(u.contains("[args...]"), "{u}");
    }
}
