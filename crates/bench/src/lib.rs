//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for measured-vs-paper results.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use pfsim::{MissRecord, SimResult};
use pfsim_analysis::{MissEvent, RunMetrics};
use pfsim_workloads::{App, PackedTrace, ProblemSize, TraceCursor, TraceWorkload};

pub mod cli;
pub mod ledger;
pub mod manifest;
mod parallel;
pub mod spec;

pub use manifest::{validate_manifest, Manifest};
pub use parallel::par_map;
pub use spec::{CellResult, ExperimentRun, ExperimentSpec, Runner, TraceInfo, Variant};

/// Problem-size selection for the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Size {
    /// Scaled-down inputs: minutes-fast, same qualitative behaviour.
    #[default]
    Default,
    /// The paper's input sizes (slower).
    Paper,
    /// The enlarged §5.4 data sets (Table 4's "larger data sets" column).
    Large,
}

impl std::fmt::Display for Size {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Size::Default => "default",
            Size::Paper => "paper",
            Size::Large => "large",
        })
    }
}

impl Size {
    /// Parses a manifest/wire size name (the [`Display`](std::fmt::Display)
    /// form) back into a [`Size`].
    pub fn parse(name: &str) -> Result<Size, String> {
        match name {
            "default" => Ok(Size::Default),
            "paper" => Ok(Size::Paper),
            "large" => Ok(Size::Large),
            other => Err(format!("unknown size '{other}'")),
        }
    }

    /// The workload-crate problem-size selector this bench size names.
    pub fn problem(self) -> ProblemSize {
        match self {
            Size::Default => ProblemSize::Default,
            Size::Paper => ProblemSize::Paper,
            Size::Large => ProblemSize::Large,
        }
    }

    /// Builds `app` at this size as a materialized trace.
    pub fn build(self, app: App) -> TraceWorkload {
        match self {
            Size::Default => app.build_default(),
            Size::Paper => app.build_paper(),
            Size::Large => app.build_large(),
        }
    }

    /// Builds `app` at this size in the packed encoding.
    pub fn build_packed(self, app: App) -> PackedTrace {
        match self {
            Size::Default => app.build_default_packed(),
            Size::Paper => app.build_paper_packed(),
            Size::Large => app.build_large_packed(),
        }
    }
}

/// Per-process memoized trace cache: each `(app, size, cpus)` is
/// generated exactly once, packed, and shared by every subsequent run.
///
/// The per-key cell is initialized *outside* the map lock, so concurrent
/// `par_map` workers asking for different traces generate them in
/// parallel, while workers asking for the same trace block on one
/// generation instead of duplicating it.
static TRACE_CACHE: OnceLock<Mutex<TraceMap>> = OnceLock::new();

/// The cache's key space: `(app, size, cpus)` → shared packed trace.
type TraceMap = HashMap<(App, Size, u16), TraceCell>;

/// One cache slot: a lazily-filled cell holding the shared packed trace.
type TraceCell = Arc<OnceLock<Arc<PackedTrace>>>;

/// The shared packed trace for `(app, size)` on the paper's 16-processor
/// machine, generating it on first use.
pub fn shared_trace(app: App, size: Size) -> Arc<PackedTrace> {
    shared_trace_for(app, size, 16)
}

/// The shared packed trace for `(app, size)` partitioned onto `cpus`
/// processors — the big-mesh grids ask for 64 (8×8) or 256 (16×16).
pub fn shared_trace_for(app: App, size: Size, cpus: u16) -> Arc<PackedTrace> {
    let cell = {
        let mut map = TRACE_CACHE.get_or_init(Default::default).lock().unwrap();
        Arc::clone(map.entry((app, size, cpus)).or_default())
    };
    Arc::clone(cell.get_or_init(|| Arc::new(app.build_packed_for(size.problem(), cpus as usize))))
}

/// A fresh replay cursor over the cached shared trace for `(app, size)`.
///
/// This is what the experiment binaries feed to `System`: every run gets
/// its own cursor, all cursors decode the same immutable packed trace.
pub fn cursor(app: App, size: Size) -> TraceCursor {
    TraceCursor::new(shared_trace(app, size))
}

/// [`cursor`] for a machine with `cpus` processors.
pub fn cursor_for(app: App, size: Size, cpus: u16) -> TraceCursor {
    TraceCursor::new(shared_trace_for(app, size, cpus))
}

/// Converts a recorded miss stream into classifier input (thin wrapper
/// over [`SimResult::miss_events`] for callers holding a raw trace).
pub fn miss_events(trace: &[MissRecord]) -> Vec<MissEvent> {
    miss_event_iter(trace).collect()
}

/// Borrowed-iterator view of a recorded miss stream: yields classifier
/// events straight off the records, no intermediate `Vec`.
pub fn miss_event_iter(trace: &[MissRecord]) -> impl Iterator<Item = MissEvent> + '_ {
    trace.iter().map(|m| MissEvent {
        pc: m.pc,
        block: m.block,
    })
}

/// Extracts the Figure-6 aggregate metrics from a run.
pub fn metrics_of(r: &SimResult) -> RunMetrics {
    r.run_metrics()
}

/// The processor whose miss stream the characterization records: an
/// *interior* node of the 4×4 mesh (the paper measures "one processor ...
/// which has been shown to be representative"; a corner node would
/// under-represent Ocean's boundary exchanges).
pub const RECORDED_CPU: usize = 5;

/// The interior node a `width`×`height` mesh records: row 1, column 1 —
/// the smallest-index node with four mesh neighbours (node 5 on the
/// paper's 4×4, node 9 on 8×8, node 17 on 16×16).
///
/// # Panics
///
/// Panics if either dimension is below 3 (no interior exists).
pub fn recorded_cpu_for(width: u16, height: u16) -> usize {
    assert!(
        width >= 3 && height >= 3,
        "a {width}x{height} mesh has no interior node"
    );
    width as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim::{RecordMisses, System, SystemConfig};
    use pfsim_workloads::App;

    /// Size names round-trip through their `Display` form (the spelling
    /// manifests and wire specs use).
    #[test]
    fn size_names_round_trip() {
        for size in [Size::Default, Size::Paper, Size::Large] {
            assert_eq!(Size::parse(&size.to_string()), Ok(size));
        }
        assert!(Size::parse("huge").is_err());
        assert!(Size::parse("Paper").is_err());
    }

    #[test]
    fn size_builds_every_app() {
        for app in App::ALL {
            assert!(Size::Default.build(app).total_ops() > 0, "{app}");
        }
    }

    #[test]
    fn shared_trace_is_generated_once_and_shared() {
        let a = shared_trace(App::Mp3d, Size::Default);
        let b = shared_trace(App::Mp3d, Size::Default);
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same trace");
        assert!(Arc::ptr_eq(cursor(App::Mp3d, Size::Default).trace(), &a));
    }

    #[test]
    fn shared_trace_survives_concurrent_first_use() {
        let traces: Vec<Arc<PackedTrace>> =
            par_map(vec![(); 4], |()| shared_trace(App::Cholesky, Size::Default));
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }

    #[test]
    fn metrics_extraction_matches_result() {
        let wl = pfsim_workloads::micro::sequential_walk(16, 32, 1);
        let r = System::new(SystemConfig::paper_baseline(), wl).run();
        let m = metrics_of(&r);
        assert_eq!(m.read_misses, r.read_misses());
        assert_eq!(m.read_stall, r.read_stall());
        assert_eq!(m.exec_cycles, r.exec_cycles);
        assert_eq!(m.flits, r.net.flits);
    }

    #[test]
    fn miss_events_preserve_pc_and_block() {
        let wl = pfsim_workloads::micro::sequential_walk(16, 8, 1);
        let cfg = SystemConfig::paper_baseline().with_recording(RecordMisses::Cpu(0));
        let r = System::new(cfg, wl).run();
        let events = miss_events(&r.miss_traces[0]);
        assert_eq!(events.len(), r.miss_traces[0].len());
        for (e, m) in events.iter().zip(&r.miss_traces[0]) {
            assert_eq!(e.pc, m.pc);
            assert_eq!(e.block, m.block);
        }
    }

    #[test]
    fn recorded_cpu_is_an_interior_mesh_node() {
        // 4x4 mesh: interior nodes are 5, 6, 9, 10.
        assert!([5usize, 6, 9, 10].contains(&RECORDED_CPU));
    }

    /// The scaled recording helper agrees with the pinned 4×4 constant
    /// and picks interior nodes on the big meshes.
    #[test]
    fn recorded_cpu_scales_with_the_mesh() {
        assert_eq!(recorded_cpu_for(4, 4), RECORDED_CPU);
        assert_eq!(recorded_cpu_for(8, 8), 9);
        assert_eq!(recorded_cpu_for(16, 16), 17);
    }

    #[test]
    #[should_panic(expected = "no interior node")]
    fn recorded_cpu_rejects_meshes_without_an_interior() {
        recorded_cpu_for(2, 4);
    }

    /// The cpus-keyed cache keeps 16- and 64-processor partitions of the
    /// same app distinct, and the 16-cpu key is the legacy entry point.
    #[test]
    fn shared_trace_is_keyed_by_cpus() {
        let paper_machine = shared_trace(App::Chase, Size::Default);
        let same = shared_trace_for(App::Chase, Size::Default, 16);
        assert!(Arc::ptr_eq(&paper_machine, &same));
        let big = shared_trace_for(App::Chase, Size::Default, 64);
        assert!(!Arc::ptr_eq(&paper_machine, &big));
        assert_eq!(paper_machine.num_cpus(), 16);
        assert_eq!(big.num_cpus(), 64);
        assert!(Arc::ptr_eq(
            cursor_for(App::Chase, Size::Default, 64).trace(),
            &big
        ));
    }
}
