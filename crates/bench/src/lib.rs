//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for measured-vs-paper results.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use pfsim::{MissRecord, SimResult};
use pfsim_analysis::{MissEvent, RunMetrics};
use pfsim_workloads::{App, PackedTrace, TraceCursor, TraceWorkload};

pub mod ledger;
pub mod manifest;
mod parallel;
pub mod spec;

pub use manifest::{validate_manifest, ManifestSummary};
pub use parallel::par_map;
pub use spec::{CellResult, ExperimentRun, ExperimentSpec, Runner, TraceInfo, Variant};

/// Problem-size selection for the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Size {
    /// Scaled-down inputs: minutes-fast, same qualitative behaviour.
    #[default]
    Default,
    /// The paper's input sizes (slower).
    Paper,
    /// The enlarged §5.4 data sets (Table 4's "larger data sets" column).
    Large,
}

impl std::fmt::Display for Size {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Size::Default => "default",
            Size::Paper => "paper",
            Size::Large => "large",
        })
    }
}

impl Size {
    /// Parses the binary's command line: `--paper` / `--large` /
    /// `--size=<default|paper|large>` select the problem size (no flag
    /// means [`Size::Default`]). Unknown flags are an error — exits with
    /// a usage message rather than silently running the wrong
    /// experiment.
    pub fn from_args() -> Size {
        match Size::parse_args(std::env::args().skip(1)) {
            Ok(size) => size,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: [--paper | --large | --size=<default|paper|large>]");
                std::process::exit(2);
            }
        }
    }

    /// Pure form of [`Size::from_args`] for testing: parses an argument
    /// list (without the program name).
    pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Size, String> {
        let mut chosen: Option<Size> = None;
        for arg in args {
            let picked = match arg.as_str() {
                "--paper" => Size::Paper,
                "--large" => Size::Large,
                _ => match arg.strip_prefix("--size=") {
                    Some("default") => Size::Default,
                    Some("paper") => Size::Paper,
                    Some("large") => Size::Large,
                    Some(other) => return Err(format!("unknown size '{other}'")),
                    None => return Err(format!("unrecognized argument '{arg}'")),
                },
            };
            match chosen {
                Some(prev) if prev != picked => {
                    return Err(format!("conflicting sizes: {prev} and {picked}"))
                }
                _ => chosen = Some(picked),
            }
        }
        Ok(chosen.unwrap_or_default())
    }

    /// Builds `app` at this size as a materialized trace.
    pub fn build(self, app: App) -> TraceWorkload {
        match self {
            Size::Default => app.build_default(),
            Size::Paper => app.build_paper(),
            Size::Large => app.build_large(),
        }
    }

    /// Builds `app` at this size in the packed encoding.
    pub fn build_packed(self, app: App) -> PackedTrace {
        match self {
            Size::Default => app.build_default_packed(),
            Size::Paper => app.build_paper_packed(),
            Size::Large => app.build_large_packed(),
        }
    }
}

/// Per-process memoized trace cache: each `(app, size)` is generated
/// exactly once, packed, and shared by every subsequent run.
///
/// The per-key cell is initialized *outside* the map lock, so concurrent
/// `par_map` workers asking for different traces generate them in
/// parallel, while workers asking for the same trace block on one
/// generation instead of duplicating it.
static TRACE_CACHE: OnceLock<Mutex<HashMap<(App, Size), TraceCell>>> = OnceLock::new();

/// One cache slot: a lazily-filled cell holding the shared packed trace.
type TraceCell = Arc<OnceLock<Arc<PackedTrace>>>;

/// The shared packed trace for `(app, size)`, generating it on first use.
pub fn shared_trace(app: App, size: Size) -> Arc<PackedTrace> {
    let cell = {
        let mut map = TRACE_CACHE.get_or_init(Default::default).lock().unwrap();
        Arc::clone(map.entry((app, size)).or_default())
    };
    Arc::clone(cell.get_or_init(|| Arc::new(size.build_packed(app))))
}

/// A fresh replay cursor over the cached shared trace for `(app, size)`.
///
/// This is what the experiment binaries feed to `System`: every run gets
/// its own cursor, all cursors decode the same immutable packed trace.
pub fn cursor(app: App, size: Size) -> TraceCursor {
    TraceCursor::new(shared_trace(app, size))
}

/// Converts a recorded miss stream into classifier input (thin wrapper
/// over [`SimResult::miss_events`] for callers holding a raw trace).
pub fn miss_events(trace: &[MissRecord]) -> Vec<MissEvent> {
    miss_event_iter(trace).collect()
}

/// Borrowed-iterator view of a recorded miss stream: yields classifier
/// events straight off the records, no intermediate `Vec`.
pub fn miss_event_iter(trace: &[MissRecord]) -> impl Iterator<Item = MissEvent> + '_ {
    trace.iter().map(|m| MissEvent {
        pc: m.pc,
        block: m.block,
    })
}

/// Extracts the Figure-6 aggregate metrics from a run.
pub fn metrics_of(r: &SimResult) -> RunMetrics {
    r.run_metrics()
}

/// The processor whose miss stream the characterization records: an
/// *interior* node of the 4×4 mesh (the paper measures "one processor ...
/// which has been shown to be representative"; a corner node would
/// under-represent Ocean's boundary exchanges).
pub const RECORDED_CPU: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim::{RecordMisses, System, SystemConfig};
    use pfsim_workloads::App;

    fn parse(args: &[&str]) -> Result<Size, String> {
        Size::parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn size_args_parse_every_spelling() {
        assert_eq!(parse(&[]), Ok(Size::Default));
        assert_eq!(parse(&["--paper"]), Ok(Size::Paper));
        assert_eq!(parse(&["--large"]), Ok(Size::Large));
        assert_eq!(parse(&["--size=default"]), Ok(Size::Default));
        assert_eq!(parse(&["--size=paper"]), Ok(Size::Paper));
        assert_eq!(parse(&["--size=large"]), Ok(Size::Large));
        // Repeating the same size is harmless.
        assert_eq!(parse(&["--paper", "--size=paper"]), Ok(Size::Paper));
    }

    #[test]
    fn size_args_reject_conflicts_and_unknowns() {
        assert!(parse(&["--paper", "--large"]).is_err());
        assert!(parse(&["--size=huge"]).is_err());
        assert!(parse(&["--verbose"]).is_err());
        assert!(parse(&["paper"]).is_err());
    }

    /// The rejection paths name the offending token, so the usage
    /// message the binaries print is actionable.
    #[test]
    fn size_arg_errors_name_the_offender() {
        let err = parse(&["--size=huge"]).unwrap_err();
        assert!(err.contains("huge"), "{err}");
        let err = parse(&["--turbo"]).unwrap_err();
        assert!(err.contains("--turbo"), "{err}");
        let err = parse(&["--paper", "--size=large"]).unwrap_err();
        assert!(err.contains("paper") && err.contains("large"), "{err}");
    }

    /// Near-miss spellings are rejected, not fuzzy-matched: sizes are
    /// case-sensitive, `--size=` needs a value, and flag-like prefixes
    /// of valid flags don't parse.
    #[test]
    fn size_args_reject_near_misses() {
        assert!(parse(&["--size="]).is_err());
        assert!(parse(&["--size=Paper"]).is_err());
        assert!(parse(&["--size=LARGE"]).is_err());
        assert!(parse(&["--Paper"]).is_err());
        assert!(parse(&["--paper=yes"]).is_err());
        assert!(parse(&["--siz=paper"]).is_err());
        assert!(parse(&[""]).is_err());
        // Conflicts are caught across spellings, in either order.
        assert!(parse(&["--size=large", "--paper"]).is_err());
        assert!(parse(&["--size=default", "--size=paper"]).is_err());
        // An error anywhere poisons the whole parse even if a valid flag
        // follows.
        assert!(parse(&["--bogus", "--paper"]).is_err());
        assert!(parse(&["--paper", "--bogus"]).is_err());
    }

    #[test]
    fn size_builds_every_app() {
        for app in App::ALL {
            assert!(Size::Default.build(app).total_ops() > 0, "{app}");
        }
    }

    #[test]
    fn shared_trace_is_generated_once_and_shared() {
        let a = shared_trace(App::Mp3d, Size::Default);
        let b = shared_trace(App::Mp3d, Size::Default);
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same trace");
        assert!(Arc::ptr_eq(cursor(App::Mp3d, Size::Default).trace(), &a));
    }

    #[test]
    fn shared_trace_survives_concurrent_first_use() {
        let traces: Vec<Arc<PackedTrace>> =
            par_map(vec![(); 4], |()| shared_trace(App::Cholesky, Size::Default));
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }

    #[test]
    fn metrics_extraction_matches_result() {
        let wl = pfsim_workloads::micro::sequential_walk(16, 32, 1);
        let r = System::new(SystemConfig::paper_baseline(), wl).run();
        let m = metrics_of(&r);
        assert_eq!(m.read_misses, r.read_misses());
        assert_eq!(m.read_stall, r.read_stall());
        assert_eq!(m.exec_cycles, r.exec_cycles);
        assert_eq!(m.flits, r.net.flits);
    }

    #[test]
    fn miss_events_preserve_pc_and_block() {
        let wl = pfsim_workloads::micro::sequential_walk(16, 8, 1);
        let cfg = SystemConfig::paper_baseline().with_recording(RecordMisses::Cpu(0));
        let r = System::new(cfg, wl).run();
        let events = miss_events(&r.miss_traces[0]);
        assert_eq!(events.len(), r.miss_traces[0].len());
        for (e, m) in events.iter().zip(&r.miss_traces[0]) {
            assert_eq!(e.pc, m.pc);
            assert_eq!(e.block, m.block);
        }
    }

    #[test]
    fn recorded_cpu_is_an_interior_mesh_node() {
        // 4x4 mesh: interior nodes are 5, 6, 9, 10.
        assert!([5usize, 6, 9, 10].contains(&RECORDED_CPU));
    }
}
