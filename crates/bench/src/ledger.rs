//! Throughput-ledger parsing, updates, and seed comparison.
//!
//! The repo-root `BENCH_*.json` files are this project's performance
//! ledgers: one JSON object per grid, one label-keyed entry per recorded
//! run, plus free-form annotation entries (`"_note"`). `perfsmoke` reads
//! and rewrites them through this module; keeping the logic here (rather
//! than in the binary) makes the seed-comparison policy unit-testable —
//! the `--check` gate's tolerance for a missing seed entry is part of the
//! repo's CI contract, not a printf detail.
//!
//! Entries are parsed with [`pfsim_analysis::Json`] — the same typed
//! layer the manifests use — not scanned as strings, so a ledger that
//! stops being valid JSON fails loudly instead of silently reading as
//! empty.

use pfsim_analysis::Json;

/// One grid's throughput ledger: label-keyed entries in file order,
/// annotations (`"_note"`) included.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// The entries, in file order. Run entries map labels to leaf
    /// objects; annotation entries map `"_note"` to a string.
    pub entries: Vec<(String, Json)>,
}

impl Ledger {
    /// Reads the ledger at `path`. A missing or empty file is an empty
    /// ledger; a present-but-malformed file panics (a corrupt ledger must
    /// never read as "new grid" and slip past the seed check).
    pub fn read(path: &str) -> Ledger {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        if text.trim().is_empty() {
            return Ledger::default();
        }
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        let Json::Object(entries) = doc else {
            panic!("{path}: ledger is not a JSON object");
        };
        Ledger { entries }
    }

    /// Records `value` under `label`, replacing any existing entry for
    /// `label` in place (preserving file order) and appending otherwise.
    pub fn set(&mut self, label: &str, value: Json) {
        match self.entries.iter_mut().find(|(k, _)| k == label) {
            Some((_, slot)) => *slot = value,
            None => self.entries.push((label.to_string(), value)),
        }
    }

    /// Writes the ledger to `path` (the `Json` renderer's layout: one
    /// line per leaf entry, the format the files already use).
    pub fn write(&self, path: &str) {
        let doc = Json::Object(self.entries.clone());
        std::fs::write(path, doc.render()).expect("write perf ledger");
    }

    /// The run labels, in file order, annotations excluded.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.entries
            .iter()
            .filter(|(k, v)| k != "_note" && v.as_object().is_some())
            .map(|(k, _)| k.as_str())
    }

    /// The numeric field `key` of the entry labelled `label`, if present.
    pub fn field_of(&self, label: &str, key: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(k, _)| k == label)?
            .1
            .get(key)?
            .as_f64()
    }

    /// The `pclocks_per_sec` field of `label`'s entry.
    pub fn rate_of(&self, label: &str) -> Option<f64> {
        self.field_of(label, "pclocks_per_sec")
    }

    /// The `pclocks` field of `label`'s entry (exact: read as `u64`, not
    /// through a float).
    pub fn pclocks_of(&self, label: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(k, _)| k == label)?
            .1
            .get("pclocks")?
            .as_u64()
    }

    /// Compares `pclocks` against this ledger's seed entry.
    pub fn seed_check(&self, pclocks: u64) -> SeedCheck {
        match self.pclocks_of("seed") {
            None => SeedCheck::Missing,
            Some(expected) if expected == pclocks => SeedCheck::Match(expected),
            Some(expected) => SeedCheck::Mismatch {
                expected,
                got: pclocks,
            },
        }
    }
}

/// Reads the ledger at `path`, records `label: value`, writes it back,
/// and returns the result (the one-call form `perfsmoke` uses).
pub fn update_ledger(path: &str, label: &str, value: Json) -> Ledger {
    let mut ledger = Ledger::read(path);
    ledger.set(label, value);
    ledger.write(path);
    ledger
}

/// Verdict of comparing a run's pclock total against the ledger's seed
/// entry (the replay-determinism anchor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedCheck {
    /// The ledger has no `seed` entry yet (a freshly added grid): there
    /// is nothing to compare against, which is tolerated — but only with
    /// an explicit, once-per-process warning (see [`MissingSeedNotice`]),
    /// so a silently vanished ledger cannot pass for a new grid.
    Missing,
    /// The run reproduced the seed total exactly.
    Match(u64),
    /// The run diverged from the seed total: a determinism regression.
    Mismatch {
        /// The ledger's recorded seed total.
        expected: u64,
        /// What this run simulated.
        got: u64,
    },
}

/// Once-per-process guard for tolerating [`SeedCheck::Missing`].
///
/// A `--check` invocation may compare against several ledgers (the
/// checkpoint benchmark checks two grids back to back); only the first
/// missing seed produces the warning line, and the line names the ledger
/// so the log pins down *which* comparison was skipped. The caller holds
/// the instance — no global state, no sync primitives.
#[derive(Debug, Default)]
pub struct MissingSeedNotice {
    warned: bool,
}

impl MissingSeedNotice {
    /// The warning line for a tolerated missing seed in `ledger`, the
    /// first time only; `None` on every later call.
    pub fn tolerate(&mut self, ledger: &str) -> Option<String> {
        if self.warned {
            return None;
        }
        self.warned = true;
        Some(format!(
            "check: no seed entry in {ledger} (new grid) — tolerated once, \
             skipping pclock comparison"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_entry(pclocks: u64, seconds: f64, rate: u64) -> Json {
        Json::obj(vec![
            ("pclocks", Json::uint(pclocks)),
            ("seconds", Json::Float(seconds)),
            ("pclocks_per_sec", Json::uint(rate)),
        ])
    }

    fn ledger() -> Ledger {
        Ledger {
            entries: vec![
                ("seed".to_string(), run_entry(151368054, 59.266, 2554036)),
                ("_note".to_string(), Json::str("annotation, not a run")),
                ("optimized".to_string(), run_entry(151368054, 40.0, 3784201)),
            ],
        }
    }

    #[test]
    fn fields_parse_by_label_and_key() {
        let l = ledger();
        assert_eq!(l.pclocks_of("seed"), Some(151368054));
        assert_eq!(l.rate_of("optimized"), Some(3784201.0));
        assert_eq!(l.field_of("seed", "seconds"), Some(59.266));
        assert_eq!(l.pclocks_of("absent"), None);
        assert_eq!(l.labels().collect::<Vec<_>>(), ["seed", "optimized"]);
    }

    #[test]
    fn matching_seed_passes() {
        assert_eq!(ledger().seed_check(151368054), SeedCheck::Match(151368054));
    }

    /// The mismatch path: a diverging total is a determinism regression
    /// and must be reported with both numbers, never tolerated.
    #[test]
    fn diverging_seed_is_a_mismatch() {
        assert_eq!(
            ledger().seed_check(151368055),
            SeedCheck::Mismatch {
                expected: 151368054,
                got: 151368055,
            }
        );
    }

    /// The tolerated path: a grid without a seed entry yet skips the
    /// comparison, but the warning fires exactly once per process and
    /// names the ledger it tolerated.
    #[test]
    fn missing_seed_is_tolerated_with_one_named_warning() {
        assert_eq!(Ledger::default().seed_check(42), SeedCheck::Missing);

        let mut notice = MissingSeedNotice::default();
        let first = notice
            .tolerate("BENCH_PR7.json")
            .expect("first warning fires");
        assert!(first.contains("BENCH_PR7.json"), "{first}");
        assert!(notice.tolerate("BENCH_PR7.json").is_none(), "warned twice");
        assert!(notice.tolerate("BENCH_PR9.json").is_none(), "warned twice");
    }

    /// Updates replace in place (file order stays stable), annotations
    /// survive, and `pclocks` totals past 2^53 round-trip exactly.
    #[test]
    fn update_replaces_label_and_keeps_others() {
        let path = format!(
            "{}/ledger_test_{}.json",
            std::env::temp_dir().display(),
            std::process::id()
        );
        std::fs::remove_file(&path).ok();
        update_ledger(&path, "seed", run_entry(9_007_199_254_740_993, 1.0, 5));
        update_ledger(&path, "_note", Json::str("kept"));
        update_ledger(&path, "run", run_entry(10, 1.5, 7));
        let l = update_ledger(&path, "run", run_entry(10, 1.25, 9));
        assert_eq!(l.pclocks_of("seed"), Some(9_007_199_254_740_993));
        assert_eq!(l.rate_of("run"), Some(9.0));
        let reread = Ledger::read(&path);
        assert_eq!(reread, l);
        assert_eq!(reread.labels().collect::<Vec<_>>(), ["seed", "run"]);
        std::fs::remove_file(&path).ok();
    }

    /// The on-disk layout matches the hand-maintained BENCH files: one
    /// line per run entry.
    #[test]
    fn written_ledger_keeps_one_line_per_entry() {
        let path = format!(
            "{}/ledger_fmt_{}.json",
            std::env::temp_dir().display(),
            std::process::id()
        );
        std::fs::remove_file(&path).ok();
        update_ledger(&path, "seed", run_entry(14059066, 4.355, 3228127));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains(
                "\"seed\": {\"pclocks\": 14059066, \"seconds\": 4.355, \"pclocks_per_sec\": 3228127}"
            ),
            "{text}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// A corrupt ledger must fail loudly, not read as a fresh grid.
    #[test]
    #[should_panic(expected = "ledger")]
    fn corrupt_ledger_panics() {
        let path = format!(
            "{}/ledger_corrupt_{}.json",
            std::env::temp_dir().display(),
            std::process::id()
        );
        std::fs::write(&path, "[1, 2]").unwrap();
        Ledger::read(&path);
    }
}
