//! Throughput-ledger parsing, updates, and seed comparison.
//!
//! The repo-root `BENCH_*.json` files are this project's performance
//! ledgers: one JSON object per grid, one label-keyed line per recorded
//! run, plus free-form annotation lines (`"_note"`). `perfsmoke` reads
//! and rewrites them through this module; keeping the logic here (rather
//! than in the binary) makes the seed-comparison policy unit-testable —
//! the `--check` gate's tolerance for a missing seed entry is part of the
//! repo's CI contract, not a printf detail.

/// The label-keyed lines of the ledger at `path` (annotation and `{`/`}`
/// framing lines stripped, trailing commas removed). A missing or empty
/// file yields no entries.
pub fn read_entries(path: &str) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|l| l.trim_start().starts_with('"'))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

/// Records `label: value` in the ledger at `path`, replacing any existing
/// line for `label` and preserving every other line (annotations like
/// `"_note"` included). Returns the resulting entries.
pub fn update_ledger(path: &str, label: &str, value: &str) -> Vec<String> {
    let mut entries: Vec<String> = read_entries(path)
        .into_iter()
        .filter(|l| !l.trim_start().starts_with(&format!("\"{label}\"")))
        .collect();
    entries.push(format!("  \"{label}\": {value}"));
    let body = entries.join(",\n");
    std::fs::write(path, format!("{{\n{body}\n}}\n")).expect("write perf ledger");
    entries
}

/// The numeric field `key` of the entry labelled `label`, if present.
pub fn field_of(entries: &[String], label: &str, key: &str) -> Option<f64> {
    let line = entries
        .iter()
        .find(|l| l.trim_start().starts_with(&format!("\"{label}\"")))?;
    let key = format!("\"{key}\": ");
    let at = line.find(&key)? + key.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok()
}

/// The `pclocks_per_sec` field of `label`'s entry.
pub fn rate_of(entries: &[String], label: &str) -> Option<f64> {
    field_of(entries, label, "pclocks_per_sec")
}

/// The `pclocks` field of `label`'s entry.
pub fn pclocks_of(entries: &[String], label: &str) -> Option<u64> {
    field_of(entries, label, "pclocks").map(|v| v as u64)
}

/// Verdict of comparing a run's pclock total against the ledger's seed
/// entry (the replay-determinism anchor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedCheck {
    /// The ledger has no `seed` entry yet (a freshly added grid): there
    /// is nothing to compare against, which is tolerated — but only with
    /// an explicit, once-per-process warning (see [`MissingSeedNotice`]),
    /// so a silently vanished ledger cannot pass for a new grid.
    Missing,
    /// The run reproduced the seed total exactly.
    Match(u64),
    /// The run diverged from the seed total: a determinism regression.
    Mismatch {
        /// The ledger's recorded seed total.
        expected: u64,
        /// What this run simulated.
        got: u64,
    },
}

/// Compares `pclocks` against the seed entry in `entries`.
pub fn seed_check(entries: &[String], pclocks: u64) -> SeedCheck {
    match pclocks_of(entries, "seed") {
        None => SeedCheck::Missing,
        Some(expected) if expected == pclocks => SeedCheck::Match(expected),
        Some(expected) => SeedCheck::Mismatch {
            expected,
            got: pclocks,
        },
    }
}

/// Once-per-process guard for tolerating [`SeedCheck::Missing`].
///
/// A `--check` invocation may compare against several ledgers (the
/// checkpoint benchmark checks two grids back to back); only the first
/// missing seed produces the warning line, and the line names the ledger
/// so the log pins down *which* comparison was skipped. The caller holds
/// the instance — no global state, no sync primitives.
#[derive(Debug, Default)]
pub struct MissingSeedNotice {
    warned: bool,
}

impl MissingSeedNotice {
    /// The warning line for a tolerated missing seed in `ledger`, the
    /// first time only; `None` on every later call.
    pub fn tolerate(&mut self, ledger: &str) -> Option<String> {
        if self.warned {
            return None;
        }
        self.warned = true;
        Some(format!(
            "check: no seed entry in {ledger} (new grid) — tolerated once, \
             skipping pclock comparison"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<String> {
        vec![
            "  \"seed\": {\"pclocks\": 151368054, \"seconds\": 59.266, \"pclocks_per_sec\": 2554036}".to_string(),
            "  \"optimized\": {\"pclocks\": 151368054, \"seconds\": 40.0, \"pclocks_per_sec\": 3784201}".to_string(),
        ]
    }

    #[test]
    fn fields_parse_by_label_and_key() {
        let e = entries();
        assert_eq!(pclocks_of(&e, "seed"), Some(151368054));
        assert_eq!(rate_of(&e, "optimized"), Some(3784201.0));
        assert_eq!(field_of(&e, "seed", "seconds"), Some(59.266));
        assert_eq!(pclocks_of(&e, "absent"), None);
    }

    #[test]
    fn matching_seed_passes() {
        assert_eq!(
            seed_check(&entries(), 151368054),
            SeedCheck::Match(151368054)
        );
    }

    /// The mismatch path: a diverging total is a determinism regression
    /// and must be reported with both numbers, never tolerated.
    #[test]
    fn diverging_seed_is_a_mismatch() {
        assert_eq!(
            seed_check(&entries(), 151368055),
            SeedCheck::Mismatch {
                expected: 151368054,
                got: 151368055,
            }
        );
    }

    /// The tolerated path: a grid without a seed entry yet skips the
    /// comparison, but the warning fires exactly once per process and
    /// names the ledger it tolerated.
    #[test]
    fn missing_seed_is_tolerated_with_one_named_warning() {
        assert_eq!(seed_check(&[], 42), SeedCheck::Missing);

        let mut notice = MissingSeedNotice::default();
        let first = notice
            .tolerate("BENCH_PR7.json")
            .expect("first warning fires");
        assert!(first.contains("BENCH_PR7.json"), "{first}");
        assert!(notice.tolerate("BENCH_PR7.json").is_none(), "warned twice");
        assert!(notice.tolerate("BENCH_PR9.json").is_none(), "warned twice");
    }

    #[test]
    fn update_replaces_label_and_keeps_others() {
        let path = format!(
            "{}/ledger_test_{}.json",
            std::env::temp_dir().display(),
            std::process::id()
        );
        update_ledger(&path, "seed", "{\"pclocks\": 10, \"pclocks_per_sec\": 5}");
        update_ledger(&path, "run", "{\"pclocks\": 10, \"pclocks_per_sec\": 7}");
        let e = update_ledger(&path, "run", "{\"pclocks\": 10, \"pclocks_per_sec\": 9}");
        assert_eq!(pclocks_of(&e, "seed"), Some(10));
        assert_eq!(rate_of(&e, "run"), Some(9.0));
        let reread = read_entries(&path);
        assert_eq!(reread.len(), 2, "{reread:?}");
        std::fs::remove_file(&path).ok();
    }
}
