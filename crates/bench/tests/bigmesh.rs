//! Big-mesh determinism gate: growing the machine from the paper's 4×4
//! mesh to 8×8 (64 nodes) must not cost any determinism contract the
//! 4×4 grids already enforce. Three gates per modern workload family:
//!
//! * **pinned anchors** — the serial pclock total of the 8×8 baseline
//!   cell is pinned, the big-mesh analogue of the 4×4 grid anchors
//!   (14059066 default, 151368054 large);
//! * **sharded bit-identity** — the conservative parallel event kernel
//!   at 2 and 4 worker threads reproduces the serial run exactly;
//! * **checkpoint round-trip** — warming an 8×8 cell, snapshotting, and
//!   resuming from the restored copy is invisible.
//!
//! `ci.sh` runs this file in release under `PFSIM_CHECK=1`, which makes
//! the spec-level test below fork a live consistency oracle through
//! every 64-node cell.

use pfsim::{Cycle, SimResult, System, SystemConfig};
use pfsim_bench::{cursor_for, ExperimentSpec, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

/// Pinned serial pclock totals for the 8×8 baseline machine at the
/// default problem size. Any event-kernel, coherence, or generator
/// change that shifts one of these is a semantic change and must update
/// the anchor deliberately (EXPERIMENTS.md records the history).
const ANCHORS: [(App, u64); 3] = [
    (App::Chase, 146_176),
    (App::Mstride, 33_708),
    (App::Server, 643_002),
];

/// The 64-node machine: the paper's node organization on an 8×8 mesh.
fn big_cfg() -> SystemConfig {
    SystemConfig::builder().mesh_dims(8, 8).build()
}

/// A fresh cursor over the cached 64-way partition of `app`.
fn big_trace(app: App) -> pfsim_workloads::TraceCursor {
    cursor_for(app, Size::Default, 64)
}

/// Full observable surface, compared field by field so a mismatch names
/// what diverged.
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles");
    assert_eq!(a.nodes, b.nodes, "{what}: per-node counters");
    assert_eq!(a.net, b.net, "{what}: network stats");
    assert_eq!(a.dir, b.dir, "{what}: directory stats");
    assert_eq!(a.miss_traces, b.miss_traces, "{what}: miss traces");
}

/// The anchor gate: serial baseline totals for every modern family on
/// the 64-node machine, pinned to the values first recorded alongside
/// this test.
#[test]
fn big_mesh_anchors_are_pinned() {
    for (app, anchor) in ANCHORS {
        let r = System::new(big_cfg(), big_trace(app)).run();
        assert_eq!(
            r.exec_cycles, anchor,
            "{app}: 8x8 serial pclock total diverged from the pinned anchor"
        );
        assert_eq!(r.nodes.len(), 64, "{app}: per-node stats must cover 8x8");
    }
}

/// Sharded bit-identity at 2 threads for one family per scheme shape —
/// bounded enough for the default (debug) test pass.
#[test]
fn big_mesh_sharded_two_threads_bit_identical() {
    let cfg = big_cfg().with_scheme(Scheme::Sequential { degree: 1 });
    let serial = System::new(cfg.clone(), big_trace(App::Mstride)).run();
    let sharded = System::new(cfg, big_trace(App::Mstride)).run_threads(2);
    assert_identical(&serial, &sharded, "MSTRIDE 8x8 at 2 threads");
}

/// The full big-mesh rotation: every modern family, serial vs 2 and 4
/// worker threads, schemes rotating across cells. Run by `ci.sh`'s
/// big-mesh stage in release (64-node sharded cells are too slow for
/// the default debug pass).
#[test]
#[ignore = "full 8x8 family x thread rotation; run in release via ci.sh's big-mesh stage"]
fn big_mesh_full_rotation_bit_identical() {
    const SCHEMES: [Option<Scheme>; 3] = [
        None,
        Some(Scheme::DDetection { degree: 1 }),
        Some(Scheme::Sequential { degree: 1 }),
    ];
    for (i, (app, _)) in ANCHORS.into_iter().enumerate() {
        let mut cfg = big_cfg();
        if let Some(s) = SCHEMES[i % SCHEMES.len()] {
            cfg = cfg.with_scheme(s);
        }
        let serial = System::new(cfg.clone(), big_trace(app)).run();
        for threads in [2usize, 4] {
            let sharded = System::new(cfg.clone(), big_trace(app)).run_threads(threads);
            assert_identical(
                &serial,
                &sharded,
                &format!("{app} 8x8 at {threads} threads"),
            );
        }
    }
}

/// Checkpoint round-trip on a 64-node cell: warm under `Scheme::None`,
/// snapshot, restore, attach a prefetcher — bit-identical to warming a
/// fresh machine straight through.
#[test]
fn big_mesh_checkpoint_round_trip() {
    const BOUNDARY: u64 = 10_000;
    let scheme = Scheme::IDetection { degree: 2 };

    let mut warm = System::new(big_cfg(), big_trace(App::Chase));
    warm.run_until(Cycle::new(BOUNDARY));
    let ckpt = warm
        .snapshot()
        .expect("no sink installed: snapshot is total");

    let mut straight = System::new(big_cfg(), big_trace(App::Chase));
    straight.run_until(Cycle::new(BOUNDARY));
    straight.reconfigure_scheme(scheme);
    let expect = straight.run();

    let mut restored = System::restore(&ckpt);
    restored.reconfigure_scheme(scheme);
    let got = restored.run();
    assert_identical(&expect, &got, "CHASE 8x8 checkpoint round trip");
}

/// Spec-level wiring: an [`ExperimentSpec`] grid whose only variant is
/// the 8×8 machine reproduces the pinned anchors cell for cell — and
/// under `PFSIM_CHECK=1` (the CI invocation) the runner installs a
/// consistency oracle in every 64-node cell, which must be
/// pclock-neutral.
#[test]
fn big_mesh_spec_grid_reproduces_the_anchors() {
    let run = ExperimentSpec::new("bigmesh-gate")
        .apps(App::MODERN)
        .variant("8x8", big_cfg())
        .serial()
        .quiet()
        .run();
    for (cell, (app, anchor)) in run.cells.iter().zip(ANCHORS) {
        assert_eq!(cell.app, app, "grid order");
        assert_eq!(
            cell.result.exec_cycles, anchor,
            "{app}: spec-level 8x8 cell diverged from the pinned anchor"
        );
    }
    let total: u64 = ANCHORS.iter().map(|&(_, a)| a).sum();
    assert_eq!(run.total_pclocks(), total, "grid total");
}
