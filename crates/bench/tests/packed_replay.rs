//! Packed-trace replay determinism.
//!
//! The packed shared-trace subsystem must be invisible to the timing
//! model: replaying an `Arc<PackedTrace>` through a `TraceCursor` has to
//! produce the same `SimResult`, byte for byte, as the materialized
//! `Vec<Op>` path — for every application — and decoding the same shared
//! trace from many threads at once must yield identical op streams.

use std::sync::Arc;

use pfsim::{SimResult, System, SystemConfig};
use pfsim_bench::{cursor, par_map, shared_trace, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::{App, Op, TraceCursor, Workload};

/// The full observable surface of a run, compared field by field so a
/// mismatch names what diverged instead of dumping two debug strings.
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles");
    assert_eq!(a.nodes, b.nodes, "{what}: per-node counters");
    assert_eq!(a.net, b.net, "{what}: network stats");
    assert_eq!(a.dir, b.dir, "{what}: directory stats");
    assert_eq!(a.miss_traces, b.miss_traces, "{what}: miss traces");
}

/// For every application, the packed-replay result is byte-identical to
/// the materialized-trace result, on the baseline and on a prefetching
/// configuration (which adds prefetch-table and traffic state).
#[test]
fn packed_replay_matches_materialized_path_for_every_app() {
    for app in App::ALL {
        for scheme in [None, Some(Scheme::Sequential { degree: 1 })] {
            let mut cfg = SystemConfig::paper_baseline();
            if let Some(s) = scheme {
                cfg = cfg.with_scheme(s);
            }
            let materialized = System::new(cfg.clone(), app.build_default()).run();
            let packed = System::new(cfg, cursor(app, Size::Default)).run();
            assert_identical(
                &materialized,
                &packed,
                &format!("{app} {scheme:?} packed vs materialized"),
            );
        }
    }
}

/// Two decodes of the same shared trace are identical across threads:
/// four workers each fully drain a private cursor over one
/// `Arc<PackedTrace>` and must see the same op stream.
#[test]
fn concurrent_decodes_of_one_shared_trace_are_identical() {
    let trace = shared_trace(App::Ocean, Size::Default);
    let reference: Vec<Vec<Op>> = drain(TraceCursor::new(Arc::clone(&trace)));

    let decodes = par_map(vec![(); 4], |()| {
        drain(TraceCursor::new(Arc::clone(&trace)))
    });
    for (w, decoded) in decodes.iter().enumerate() {
        assert_eq!(decoded, &reference, "worker {w} decoded a different stream");
    }
}

fn drain(mut cursor: TraceCursor) -> Vec<Vec<Op>> {
    (0..cursor.num_cpus())
        .map(|cpu| std::iter::from_fn(|| cursor.next(cpu)).collect())
        .collect()
}

/// The builder's two finishers agree: `finish()` is defined as the decode
/// of `finish_packed()`, so the materialized trace and the packed decode
/// enumerate the same ops (spot-checked per CPU on one app).
#[test]
fn materialized_trace_equals_packed_decode() {
    let wl = App::Lu.build_default();
    let packed = shared_trace(App::Lu, Size::Default);
    assert_eq!(wl.total_ops(), packed.total_ops());
    for cpu in 0..wl.num_cpus() {
        let decoded: Vec<Op> = packed.iter_cpu(cpu).collect();
        assert_eq!(wl.trace(cpu), &decoded[..], "cpu {cpu}");
    }
}
