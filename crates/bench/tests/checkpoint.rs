//! Warmup-checkpoint determinism gate.
//!
//! The checkpoint contract is bit-identity: pausing a run at the warmup
//! boundary, snapshotting the machine, and resuming from the restored copy
//! must be invisible — the restored run reproduces the straight-through
//! run's pclock total, per-node statistics, metrics snapshot, and oracle
//! hook stream exactly, for every prefetching scheme. These tests gate
//! every change to `System::snapshot`/`System::restore` and to the
//! arena-backed event queue they serialize.

use pfsim::{Cycle, SimResult, System, SystemConfig};
use pfsim_bench::ExperimentSpec;
use pfsim_check::ConsistencyOracle;
use pfsim_mem::{Addr, Pc};
use pfsim_prefetch::Scheme;
use pfsim_workloads::{App, Op, TraceWorkload};

/// Warmup boundary used throughout: deep enough that caches, directory,
/// mesh, and the calendar queue all carry live state across the snapshot.
const BOUNDARY: u64 = 20_000;

/// Schemes exercised by every round-trip test (baseline plus the three
/// hardware schemes' detection tables).
const SCHEMES: [Scheme; 4] = [
    Scheme::None,
    Scheme::Sequential { degree: 2 },
    Scheme::IDetection { degree: 2 },
    Scheme::DDetection { degree: 1 },
];

/// Full observable surface, compared field by field so a mismatch names
/// what diverged.
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles");
    assert_eq!(a.nodes, b.nodes, "{what}: per-node counters");
    assert_eq!(a.net, b.net, "{what}: network stats");
    assert_eq!(a.dir, b.dir, "{what}: directory stats");
    assert_eq!(a.miss_traces, b.miss_traces, "{what}: miss traces");
    match (&a.metrics, &b.metrics) {
        (Some(ma), Some(mb)) => {
            let d = ma.diff(mb);
            assert!(d.is_empty(), "{what}: metrics diverged:\n{}", d.join("\n"));
        }
        (ma, mb) => assert_eq!(ma.is_some(), mb.is_some(), "{what}: metrics presence"),
    }
}

fn instrumented(scheme: Scheme) -> SystemConfig {
    SystemConfig::paper_baseline()
        .with_scheme(scheme)
        .with_instrumentation(true)
}

/// Stopping-point invisibility: pausing between event pops changes
/// nothing, so `run_until(b)` followed by `run()` equals one `run()`.
#[test]
fn run_until_then_run_is_invisible() {
    for scheme in SCHEMES {
        let straight = System::new(instrumented(scheme), App::Water.build_default()).run();
        let mut sys = System::new(instrumented(scheme), App::Water.build_default());
        sys.run_until(Cycle::new(BOUNDARY));
        let paused = sys.run();
        assert_identical(&straight, &paused, &format!("{scheme:?} paused"));
    }
}

/// The tentpole contract: warm under `Scheme::None`, snapshot, restore,
/// attach each scheme — the restored run is bit-identical to continuing
/// the original machine, pclock total, per-node stats, and metrics
/// snapshot included.
#[test]
fn checkpoint_round_trip_matches_straight_through() {
    for app in [App::Water, App::Mp3d] {
        let mut warm = System::new(instrumented(Scheme::None), app.build_default());
        warm.run_until(Cycle::new(BOUNDARY));
        let ckpt = warm
            .snapshot()
            .expect("no sink installed: snapshot is total");
        for scheme in SCHEMES {
            // Straight-through arm: a fresh machine warmed the same way,
            // never snapshotted.
            let mut straight = System::new(instrumented(Scheme::None), app.build_default());
            straight.run_until(Cycle::new(BOUNDARY));
            straight.reconfigure_scheme(scheme);
            let expect = straight.run();

            let mut restored = System::restore(&ckpt);
            restored.reconfigure_scheme(scheme);
            let got = restored.run();
            assert_identical(&expect, &got, &format!("{app} x {scheme:?}"));
        }
    }
}

/// Restoring twice from one checkpoint yields two independent machines:
/// running the first does not perturb the second.
#[test]
fn checkpoint_is_reusable() {
    let mut warm = System::new(instrumented(Scheme::None), App::Cholesky.build_default());
    warm.run_until(Cycle::new(BOUNDARY));
    let ckpt = warm
        .snapshot()
        .expect("no sink installed: snapshot is total");
    let first = System::restore(&ckpt).run();
    let second = System::restore(&ckpt).run();
    assert_identical(&first, &second, "second restore after first ran");
}

/// The oracle hook stream survives the round trip: a sink installed
/// before warmup is forked into the checkpoint, and the restored run's
/// verdict and observation counts equal the straight-through checked
/// run's.
#[test]
fn oracle_hook_stream_survives_restore() {
    let run_arm = |restore: bool| {
        let cfg = instrumented(Scheme::Sequential { degree: 1 });
        let (geometry, nodes) = (cfg.geometry, cfg.nodes as usize);
        let mut sys = System::new(cfg.with_scheme(Scheme::None), App::Ocean.build_default());
        sys.set_check_sink(Box::new(ConsistencyOracle::new(geometry, nodes)));
        sys.run_until(Cycle::new(BOUNDARY));
        let mut sys = if restore {
            let ckpt = sys.snapshot().expect("the oracle forks");
            System::restore(&ckpt)
        } else {
            sys
        };
        sys.reconfigure_scheme(Scheme::Sequential { degree: 1 });
        let result = sys.run();
        let oracle = sys
            .take_check_sink()
            .expect("sink installed above")
            .into_any()
            .downcast::<ConsistencyOracle>()
            .expect("sink is the oracle");
        (result, oracle)
    };
    let (straight, o1) = run_arm(false);
    let (restored, o2) = run_arm(true);
    assert!(o1.ok(), "straight arm: {:#?}", o1.violations());
    assert!(o2.ok(), "restored arm: {:#?}", o2.violations());
    assert!(o2.reads_checked() > 0, "restored oracle judged no reads");
    assert_eq!(o1.reads_checked(), o2.reads_checked(), "reads_checked");
    assert_eq!(o1.writes_tracked(), o2.writes_tracked(), "writes_tracked");
    assert_identical(&straight, &restored, "oracle round trip");
}

/// Checking is pclock-neutral across a restore: a warmed, checkpointed
/// run with the oracle riding along reproduces the unchecked run's
/// totals exactly (oracle on/off bit-identity for warmed grids).
#[test]
fn oracle_is_pclock_neutral_across_restore() {
    let run_arm = |with_oracle: bool| {
        let cfg = instrumented(Scheme::DDetection { degree: 1 });
        let (geometry, nodes) = (cfg.geometry, cfg.nodes as usize);
        let mut sys = System::new(cfg.with_scheme(Scheme::None), App::Mp3d.build_default());
        if with_oracle {
            sys.set_check_sink(Box::new(ConsistencyOracle::new(geometry, nodes)));
        }
        sys.run_until(Cycle::new(BOUNDARY));
        let mut sys = System::restore(&sys.snapshot().expect("none or the oracle: both fork"));
        sys.reconfigure_scheme(Scheme::DDetection { degree: 1 });
        sys.run()
    };
    let unchecked = run_arm(false);
    let checked = run_arm(true);
    assert_identical(&unchecked, &checked, "oracle on vs off, checkpointed");
}

/// Restore under check on a litmus shape: the message-passing cell (write
/// x, write flag, reader spins through the lock) warmed past its first
/// handful of events, snapshotted, restored, and judged by the oracle —
/// the restored run must stay violation-free and agree with the
/// straight-through checked cell.
#[test]
fn litmus_cell_restores_under_check() {
    const CPUS: usize = 16;
    let x = Addr::new(16 * 4096);
    let lk = Addr::new(64 * 4096);
    let r = |addr| Op::Read {
        addr,
        pc: Pc::new(0x400),
    };
    let w = |addr| Op::Write {
        addr,
        pc: Pc::new(0x404),
    };
    let mut traces = vec![Vec::new(); CPUS];
    traces[0] = vec![Op::Acquire { lock: lk }, w(x), Op::Release { lock: lk }];
    traces[1] = vec![Op::Acquire { lock: lk }, r(x), Op::Release { lock: lk }];
    for t in &mut traces {
        t.push(Op::Barrier { id: 999 });
    }
    let wl = TraceWorkload::new("mp-restore", traces);

    let run_arm = |restore: bool| {
        let cfg = SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 });
        let (geometry, nodes) = (cfg.geometry, cfg.nodes as usize);
        let mut sys = System::new(cfg, wl.clone());
        sys.set_check_sink(Box::new(ConsistencyOracle::new(geometry, nodes)));
        sys.run_until(Cycle::new(50));
        let mut sys = if restore {
            System::restore(&sys.snapshot().expect("the oracle forks"))
        } else {
            sys
        };
        let result = sys.run();
        let oracle = sys
            .take_check_sink()
            .expect("sink installed above")
            .into_any()
            .downcast::<ConsistencyOracle>()
            .expect("sink is the oracle");
        (result, oracle)
    };
    let (straight, o1) = run_arm(false);
    let (restored, o2) = run_arm(true);
    assert!(o1.ok(), "straight litmus: {:#?}", o1.violations());
    assert!(o2.ok(), "restored litmus: {:#?}", o2.violations());
    assert_eq!(o1.reads_checked(), o2.reads_checked(), "reads_checked");
    assert_identical(&straight, &restored, "litmus restore");
}

/// Spec-level wiring: a warmed grid forking every cell from the shared
/// checkpoint reproduces the same grid warmed straight through, cell for
/// cell — and both run under `PFSIM_CHECK=1` in CI, where the runner
/// installs the oracle in the warmup prefix and forks it into every cell.
#[test]
fn warmed_spec_shares_checkpoints_bit_identically() {
    let grid = |share: bool| {
        let mut spec = ExperimentSpec::new("ckpt-gate")
            .apps([App::Water, App::Mp3d])
            .baseline_and(&[
                Scheme::Sequential { degree: 2 },
                Scheme::DDetection { degree: 1 },
            ])
            .warmup(BOUNDARY)
            .serial()
            .quiet();
        if !share {
            spec = spec.warmup_straight();
        }
        spec.run()
    };
    let shared = grid(true);
    let straight = grid(false);
    assert_eq!(
        shared.total_pclocks(),
        straight.total_pclocks(),
        "spec-level pclock totals diverged between forked and straight warmup"
    );
    for (s, t) in shared.cells.iter().zip(&straight.cells) {
        assert_identical(&t.result, &s.result, &format!("{} cell", s.app));
    }
}
