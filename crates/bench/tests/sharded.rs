//! Sharded-kernel determinism gate: the conservative parallel event
//! kernel must be *bit-identical* to the serial one — same pclock
//! totals, same per-node counters, same network/directory stats, same
//! metrics-registry snapshots — for every scheme × application cell.
//!
//! Two tiers:
//!
//! * the Ocean column (the cheapest application) runs in the default
//!   test pass, covering every scheme with the thread count rotating
//!   through 1/2/4 and the observability registry instrumented;
//! * the full 24-cell matrix is `#[ignore]`d here (sharded cells on a
//!   single-core host serialize through the scheduler and take minutes)
//!   and run in release by `ci.sh`'s sharded stage.

use pfsim::{SimResult, System, SystemConfig};
use pfsim_check::{run_checked, run_checked_threads};
use pfsim_engine::MetricsSnapshot;
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

/// The perfsmoke grid's variants: baseline plus the three degree-1
/// prefetching schemes.
const SCHEMES: [Option<Scheme>; 4] = [
    None,
    Some(Scheme::IDetection { degree: 1 }),
    Some(Scheme::DDetection { degree: 1 }),
    Some(Scheme::Sequential { degree: 1 }),
];

/// Thread counts rotate across cells so every count appears against
/// every kind of traffic without running each cell three times over.
const THREAD_ROTATION: [usize; 3] = [1, 2, 4];

fn cfg_for(scheme: Option<Scheme>, instrument: bool) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline().with_instrumentation(instrument);
    if let Some(s) = scheme {
        cfg = cfg.with_scheme(s);
    }
    cfg
}

/// Field-by-field comparison so a mismatch names what diverged; metrics
/// snapshots are compared through [`MetricsSnapshot::diff`] so a
/// registry divergence lists the exact counters and histograms.
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles");
    assert_eq!(a.nodes, b.nodes, "{what}: per-node counters");
    assert_eq!(a.net, b.net, "{what}: network stats");
    assert_eq!(a.dir, b.dir, "{what}: directory stats");
    assert_eq!(a.miss_traces, b.miss_traces, "{what}: miss traces");
    match (&a.metrics, &b.metrics) {
        (Some(x), Some(y)) => assert_snapshots_equal(x, y, what),
        (x, y) => assert_eq!(
            x.is_some(),
            y.is_some(),
            "{what}: one run snapshotted metrics, the other did not"
        ),
    }
}

fn assert_snapshots_equal(a: &MetricsSnapshot, b: &MetricsSnapshot, what: &str) {
    let diff = a.diff(b);
    assert!(
        diff.is_empty(),
        "{what}: metrics registry diverged:\n  {}",
        diff.join("\n  ")
    );
}

/// Runs one cell serial and sharded and requires bit-identity.
fn check_cell(app: App, scheme: Option<Scheme>, threads: usize, instrument: bool) {
    let cfg = cfg_for(scheme, instrument);
    let wl = app.build_default();
    let serial = System::new(cfg.clone(), wl.clone()).run();
    let sharded = System::new(cfg, wl).run_threads(threads);
    assert_identical(
        &serial,
        &sharded,
        &format!("{app:?} under {scheme:?} at {threads} threads (instrument={instrument})"),
    );
}

/// The Ocean column of the grid: every scheme, thread count rotating
/// 1/2/4, observability registry on — bounded enough for the default
/// (debug) test pass even on a single-core host.
#[test]
fn ocean_all_schemes_sharded_bit_identical() {
    for (i, scheme) in SCHEMES.into_iter().enumerate() {
        let threads = THREAD_ROTATION[i % THREAD_ROTATION.len()];
        check_cell(App::Ocean, scheme, threads, true);
    }
}

/// The full scheme × application matrix, thread counts rotating 1/2/4
/// across cells, a third of them instrumented. Run by `ci.sh` in
/// release (`--ignored`): sharded cells on a single-core host take
/// minutes of scheduler round-trips, far too slow for the default pass.
#[test]
#[ignore = "full 24-cell sharded matrix; run in release via ci.sh's sharded stage"]
fn full_matrix_sharded_bit_identical() {
    let mut cell = 0usize;
    for app in App::ALL {
        for scheme in SCHEMES {
            let threads = THREAD_ROTATION[cell % THREAD_ROTATION.len()];
            check_cell(app, scheme, threads, cell.is_multiple_of(3));
            cell += 1;
        }
    }
}

/// The PFSIM_CHECK cell of the grid, sharded: the consistency oracle
/// rides a 2-thread Ocean run and must agree with the serial checked
/// run on verdict, observation counts, and every statistic.
#[test]
fn sharded_cell_with_oracle_matches_serial() {
    let cfg = cfg_for(Some(Scheme::Sequential { degree: 1 }), false);
    let wl = App::Ocean.build_default();
    let serial = run_checked(cfg.clone(), wl.clone());
    assert!(serial.ok, "serial checked run: {:#?}", serial.violations);
    assert!(serial.reads_checked > 0, "oracle judged no reads");
    let sharded = run_checked_threads(cfg, wl, 2);
    assert!(sharded.ok, "sharded checked run: {:#?}", sharded.violations);
    assert_identical(&serial.result, &sharded.result, "oracle cell");
    assert_eq!(serial.reads_checked, sharded.reads_checked, "reads_checked");
    assert_eq!(
        serial.writes_tracked, sharded.writes_tracked,
        "writes_tracked"
    );
    assert_eq!(serial.violations, sharded.violations, "violations");
}

/// The bench layer dispatches on the threads knob: an [`ExperimentSpec`]
/// with `.threads(2)` reproduces the serial spec run's totals cell for
/// cell, and the run records the thread count for its manifest.
#[test]
fn spec_threads_knob_is_bit_identical() {
    use pfsim_bench::ExperimentSpec;

    let spec = |threads: usize| {
        ExperimentSpec::new("sharded-spec-gate")
            .apps([App::Ocean])
            .baseline_and(&[Scheme::DDetection { degree: 1 }])
            .serial()
            .threads(threads)
            .quiet()
            .run()
    };
    let serial = spec(1);
    let sharded = spec(2);
    assert_eq!(serial.threads, 1);
    assert_eq!(sharded.threads, 2);
    assert_eq!(
        serial.total_pclocks(),
        sharded.total_pclocks(),
        "spec-level pclock totals diverged between serial and 2 threads"
    );
    for (s, p) in serial.cells.iter().zip(&sharded.cells) {
        assert_eq!(
            s.result.exec_cycles, p.result.exec_cycles,
            "cell {:?} variant {}",
            s.app, s.variant
        );
    }
}
