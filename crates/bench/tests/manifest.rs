//! End-to-end tests of the experiment API and its observability layer:
//! a spec runs through the [`Runner`], emits a manifest that validates
//! and carries the right fields, the metrics registry is deterministic,
//! and instrumentation never changes simulated timing.

use pfsim::SystemConfig;
use pfsim_analysis::Json;
use pfsim_bench::{validate_manifest, ExperimentSpec, Runner, Size};
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

fn small_spec(name: &str, instrument: bool) -> ExperimentSpec {
    ExperimentSpec::new(name)
        .size(Size::Default)
        .apps([App::Mp3d])
        .baseline_and(&[Scheme::Sequential { degree: 1 }])
        .instrument(instrument)
        .serial()
        .quiet()
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pfsim-test-{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The manifest of a real (small) run has the documented schema: every
/// top-level field present, the pclock total consistent with the cells,
/// per-node statistics for all 16 nodes, and an observability snapshot
/// on every cell of an instrumented run — and it passes
/// [`validate_manifest`].
#[test]
fn manifest_snapshot_has_schema_and_pclocks() {
    let run = Runner::with_out_dir(temp_dir("manifest")).execute(small_spec("snapshot", true));
    let path = run.write_manifest().unwrap();
    let manifest = validate_manifest(&path).expect("manifest validates");
    assert_eq!(manifest.name, "snapshot");
    assert_eq!(manifest.cells.len(), 2);
    assert_eq!(manifest.total_pclocks, run.total_pclocks());
    assert_eq!(manifest.size, "default");
    assert_eq!(manifest.apps, ["MP3D"]);
    assert_eq!(manifest.variants.len(), 2);
    assert_eq!(manifest.variants[0].label, "baseline");
    assert_eq!(manifest.variants[1].scheme, "Seq(d=1)");
    let cell = manifest.cell("MP3D", 1).expect("Seq cell present");
    assert_eq!(cell.exec_cycles, run.cell(0, 1).result.exec_cycles);

    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    for key in [
        "schema_version",
        "name",
        "size",
        "git",
        "unix_time",
        "phases",
        "total_pclocks",
        "apps",
        "variants",
        "traces",
        "cells",
    ] {
        assert!(doc.get(key).is_some(), "missing top-level field {key}");
    }
    assert_eq!(doc.get("schema_version").unwrap().as_i64(), Some(1));
    for key in ["gen_seconds", "sim_seconds", "analyze_seconds"] {
        assert!(doc
            .get("phases")
            .unwrap()
            .get(key)
            .unwrap()
            .as_f64()
            .is_some());
    }

    let cells = doc.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), 2);
    for cell in cells {
        assert_eq!(cell.get("nodes").unwrap().as_array().unwrap().len(), 16);
        let metrics = cell.get("metrics").unwrap();
        let counters = metrics.get("counters").unwrap();
        assert!(
            counters.get("ev_cpu_step").unwrap().as_u64().unwrap() > 0,
            "instrumented cell records event counts"
        );
        assert!(metrics
            .get("histograms")
            .unwrap()
            .get("queue_depth")
            .is_some());
    }
    // The Seq cell carries the sequential prefetcher's telemetry.
    let seq_counters = cells[1].get("metrics").unwrap().get("counters").unwrap();
    assert!(seq_counters.get("seq_continuations").is_some());
}

/// Two identical instrumented runs produce identical registry
/// snapshots — the observability layer is as deterministic as the
/// simulation it observes.
#[test]
fn registry_snapshots_are_deterministic() {
    let once =
        || Runner::with_out_dir(temp_dir("determinism")).execute(small_spec("determinism", true));
    let a = once();
    let b = once();
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.result.exec_cycles, cb.result.exec_cycles);
        let ma = ca.result.metrics.as_ref().expect("instrumented");
        let mb = cb.result.metrics.as_ref().expect("instrumented");
        assert_eq!(ma, mb, "{} variant {}", ca.app, ca.variant);
    }
}

/// Instrumentation is purely observational: the same grid with the
/// registry off produces identical simulated timing and statistics,
/// and no snapshot.
#[test]
fn instrumentation_is_pclock_neutral() {
    let on = Runner::with_out_dir(temp_dir("neutral")).execute(small_spec("neutral-on", true));
    let off = Runner::with_out_dir(temp_dir("neutral")).execute(small_spec("neutral-off", false));
    assert_eq!(on.total_pclocks(), off.total_pclocks());
    for (a, b) in on.cells.iter().zip(&off.cells) {
        assert_eq!(a.result.exec_cycles, b.result.exec_cycles);
        assert_eq!(a.result.nodes, b.result.nodes);
        assert!(a.result.metrics.is_some());
        assert!(b.result.metrics.is_none());
    }
}

/// Variant configurations flow through unchanged: a variant-level
/// scheme override shows up in the manifest and in the cell results.
#[test]
fn variant_configs_reach_the_cells() {
    let run = Runner::with_out_dir(temp_dir("variants")).execute(
        ExperimentSpec::new("variants")
            .apps([App::Mp3d])
            .variant("base", SystemConfig::paper_baseline())
            .variant(
                "seq",
                SystemConfig::builder()
                    .scheme(Scheme::Sequential { degree: 1 })
                    .build(),
            )
            .serial()
            .quiet(),
    );
    let base = &run.cell(0, 0).result;
    let seq = &run.cell(0, 1).result;
    assert_eq!(base.total(|n| n.prefetches_issued), 0);
    assert!(seq.total(|n| n.prefetches_issued) > 0);
    assert!(seq.read_misses() < base.read_misses());
}
