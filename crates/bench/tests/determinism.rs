//! Cross-run determinism regression tests.
//!
//! The simulator must be a pure function of (config, workload): two runs of
//! the same experiment — serial or fanned out through [`pfsim_bench::par_map`]
//! — must produce bit-identical statistics. Every performance change to the
//! event kernel, the hash layers, or the experiment harness is gated on
//! these tests.

use pfsim::{SimResult, System, SystemConfig};
use pfsim_bench::par_map;
use pfsim_prefetch::Scheme;
use pfsim_workloads::App;

/// The full observable surface of a run, compared field by field so a
/// mismatch names what diverged instead of dumping two debug strings.
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles");
    assert_eq!(a.nodes, b.nodes, "{what}: per-node counters");
    assert_eq!(a.net, b.net, "{what}: network stats");
    assert_eq!(a.dir, b.dir, "{what}: directory stats");
    assert_eq!(a.miss_traces, b.miss_traces, "{what}: miss traces");
}

fn run_once(app: App, scheme: Option<Scheme>) -> SimResult {
    let mut cfg = SystemConfig::paper_baseline();
    if let Some(s) = scheme {
        cfg = cfg.with_scheme(s);
    }
    System::new(cfg, app.build_default()).run()
}

/// The same experiment run twice in one process is bit-identical,
/// for a baseline and for each prefetching scheme (the schemes exercise
/// the prefetch tables and the extra traffic they generate).
#[test]
fn repeated_runs_are_bit_identical() {
    let schemes = [
        None,
        Some(Scheme::Sequential { degree: 1 }),
        Some(Scheme::DDetection { degree: 1 }),
    ];
    for scheme in schemes {
        let first = run_once(App::Water, scheme);
        let second = run_once(App::Water, scheme);
        assert_identical(&first, &second, &format!("{scheme:?}"));
    }
}

/// Fanning runs out through the parallel harness changes nothing: the
/// results equal the serial ones run-for-run, and arrive in input order.
#[test]
fn par_map_matches_serial_runs() {
    let jobs: Vec<(App, Option<Scheme>)> = vec![
        (App::Mp3d, None),
        (App::Mp3d, Some(Scheme::IDetection { degree: 2 })),
        (App::Cholesky, None),
        (App::Cholesky, Some(Scheme::Sequential { degree: 4 })),
    ];

    let serial: Vec<SimResult> = jobs.iter().map(|&(app, s)| run_once(app, s)).collect();
    let parallel = par_map(jobs.clone(), |(app, s)| run_once(app, s));

    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_identical(s, p, &format!("job {i} {:?}", jobs[i]));
    }
}

/// Stale SLC wakeups exist (the re-arm-earlier scheduling policy makes
/// some unavoidable) but must stay a trace-level curiosity, not a
/// scheduling pathology: bounded by a small fraction of the work the SLCs
/// actually performed.
#[test]
fn spurious_slc_wakeups_stay_bounded() {
    for app in [App::Water, App::Mp3d] {
        let r = run_once(app, None);
        let spurious = r.spurious_slc_wakeups();
        // Real SLC work is at least one event per read+write issued.
        let issued = r.total(|n| n.reads) + r.total(|n| n.writes);
        assert!(
            spurious * 20 <= issued,
            "{app}: {spurious} spurious wakeups vs {issued} accesses (>5%)"
        );
    }
}
