//! End-to-end experiment benchmarks: one small-scale run per table/figure
//! pipeline, so `cargo bench` exercises every experiment path (workload
//! generation → full-system simulation → characterization/metrics) and
//! tracks its wall-clock cost. The printable paper tables come from the
//! `table2`/`table3`/`table4`/`figure6` binaries; these benches keep the
//! machinery honest.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pfsim::{RecordMisses, System, SystemConfig};
use pfsim_analysis::{characterize, compare, MissEvent, RunMetrics};
use pfsim_prefetch::Scheme;
use pfsim_workloads::{lu, ocean, App};
use std::hint::black_box;

fn metrics(r: &pfsim::SimResult) -> RunMetrics {
    RunMetrics {
        read_misses: r.read_misses(),
        read_stall: r.read_stall(),
        prefetches_issued: r.total(|n| n.prefetches_issued),
        prefetches_useful: r.total(|n| n.prefetches_useful),
        flits: r.net.flits,
        exec_cycles: r.exec_cycles,
    }
}

/// The Table 2 pipeline on one application at a reduced size.
fn bench_table2_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("table2_characterize_lu", |b| {
        b.iter_batched(
            || {
                (
                    SystemConfig::paper_baseline().with_recording(RecordMisses::Cpu(5)),
                    lu::build(lu::LuParams { n: 48, cpus: 16 }),
                )
            },
            |(cfg, wl)| {
                let r = System::new(cfg, wl).run();
                let misses: Vec<MissEvent> = r.miss_traces[5]
                    .iter()
                    .map(|m| MissEvent {
                        pc: m.pc,
                        block: m.block,
                    })
                    .collect();
                black_box(characterize(&misses).stride_fraction())
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("table3_finite_slc_ocean", |b| {
        b.iter_batched(
            || {
                (
                    SystemConfig::paper_baseline()
                        .with_finite_slc(16 * 1024)
                        .with_recording(RecordMisses::Cpu(5)),
                    ocean::build(ocean::OceanParams {
                        n: 32,
                        iterations: 4,
                        band: 8,
                        row_doubles: ocean::ROW_DOUBLES,
                        cpus: 16,
                    }),
                )
            },
            |(cfg, wl)| black_box(System::new(cfg, wl).run().read_misses()),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("figure6_compare_mp3d", |b| {
        b.iter_batched(
            || (),
            |()| {
                let small = pfsim_workloads::mp3d::Mp3dParams {
                    particles: 800,
                    cells: 512,
                    steps: 2,
                    collision_pct: 50,
                    cpus: 16,
                };
                let base = System::new(
                    SystemConfig::paper_baseline(),
                    pfsim_workloads::mp3d::build(small),
                )
                .run();
                let seq = System::new(
                    SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
                    pfsim_workloads::mp3d::build(small),
                )
                .run();
                black_box(compare(&metrics(&base), &metrics(&seq)).relative_misses)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("workload_generation_all_apps", |b| {
        b.iter(|| {
            let total: usize = App::ALL.iter().map(|a| a.build_default().total_ops()).sum();
            black_box(total)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_table2_pipeline);
criterion_main!(benches);
