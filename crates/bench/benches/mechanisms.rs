//! Microbenchmarks of the hardware mechanisms under study: the cost per
//! observed SLC read request of each prefetching scheme's detection logic,
//! plus the substrate data structures (event queue, mesh routing,
//! directory automaton). These quantify the "hardware complexity"
//! dimension of the paper's comparison in simulator terms: I-detection's
//! RPT is one table probe, D-detection scans four LRU tables per miss.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pfsim_coherence::{DirAction, DirRequest, Directory};
use pfsim_engine::{Cycle, EventQueue};
use pfsim_mem::{Addr, BlockAddr, Geometry, NodeId, Pc};
use pfsim_network::{Mesh, MeshConfig};
use pfsim_prefetch::{
    DDetection, DDetectionConfig, IDetection, IDetectionConfig, Prefetcher, ReadAccess,
    ReadOutcome, Scheme, SequentialPrefetcher,
};
use std::hint::black_box;

/// A deterministic mixed access stream: four interleaved stride sequences
/// plus scattered noise, resembling an application's SLC request mix.
fn access_stream(len: usize) -> Vec<ReadAccess> {
    let mut out = Vec::with_capacity(len);
    let mut noise = 0x12345u64;
    for k in 0..len as u64 {
        let which = k % 5;
        let access = match which {
            0..=3 => ReadAccess {
                pc: Pc::new(0x400 + which as u32 * 4),
                addr: Addr::new((1 + which) * (1 << 20) + k / 5 * (32 * (which + 1))),
                outcome: ReadOutcome::Miss,
            },
            _ => {
                noise = noise.wrapping_mul(6364136223846793005).wrapping_add(1);
                ReadAccess {
                    pc: Pc::new(0x800),
                    addr: Addr::new(noise % (1 << 28)),
                    outcome: ReadOutcome::Miss,
                }
            }
        };
        out.push(access);
    }
    out
}

fn bench_prefetchers(c: &mut Criterion) {
    let stream = access_stream(4096);
    let mut group = c.benchmark_group("prefetcher_on_read");
    group.bench_function("sequential_d1", |b| {
        let mut p = SequentialPrefetcher::new(Geometry::paper(), 1);
        let mut out = Vec::new();
        b.iter(|| {
            for a in &stream {
                out.clear();
                p.on_read(black_box(a), &mut out);
            }
            black_box(out.len())
        });
    });
    group.bench_function("idetection", |b| {
        let mut p = IDetection::new(Geometry::paper(), IDetectionConfig::default());
        let mut out = Vec::new();
        b.iter(|| {
            for a in &stream {
                out.clear();
                p.on_read(black_box(a), &mut out);
            }
            black_box(out.len())
        });
    });
    group.bench_function("ddetection", |b| {
        let mut p = DDetection::new(Geometry::paper(), DDetectionConfig::default());
        let mut out = Vec::new();
        b.iter(|| {
            for a in &stream {
                out.clear();
                p.on_read(black_box(a), &mut out);
            }
            black_box(out.len())
        });
    });
    group.bench_function("adaptive_sequential", |b| {
        let mut p = Scheme::AdaptiveSequential {
            initial_degree: 1,
            max_degree: 8,
        }
        .build(Geometry::paper());
        let mut out = Vec::new();
        b.iter(|| {
            for a in &stream {
                out.clear();
                p.on_read(black_box(a), &mut out);
            }
            black_box(out.len())
        });
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_4k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..4096u32 {
                    q.schedule(Cycle::new(u64::from(i % 97)), i);
                }
                let mut acc = 0u64;
                while let Some((t, _)) = q.pop() {
                    acc += t.as_u64();
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_send_1k", |b| {
        b.iter_batched(
            || Mesh::new(MeshConfig::paper()),
            |mut mesh| {
                let mut t = Cycle::ZERO;
                for i in 0..1024u16 {
                    let from = NodeId::new(i % 16);
                    let to = NodeId::new((i * 7 + 3) % 16);
                    t = mesh.send(t, from, to, 10).max(t);
                }
                black_box(mesh.stats().flit_hops)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_directory(c: &mut Criterion) {
    c.bench_function("directory_read_write_cycle_1k", |b| {
        b.iter_batched(
            || Directory::new(16),
            |mut dir| {
                let mut acks = 0u64;
                for i in 0..1024u64 {
                    let block = BlockAddr::new(i % 64);
                    let reader = NodeId::new((i % 15) as u16);
                    let writer = NodeId::new(15);
                    dir.request(block, DirRequest::read_shared(reader));
                    let actions = dir.request(block, DirRequest::ReadExclusive { from: writer });
                    for a in actions {
                        if let DirAction::Invalidate { targets } = a {
                            for _ in targets.iter() {
                                acks += 1;
                                dir.inval_ack(block);
                            }
                        }
                    }
                    dir.request(block, DirRequest::Writeback { from: writer });
                }
                black_box(acks)
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_prefetchers,
    bench_event_queue,
    bench_mesh,
    bench_directory
);
criterion_main!(benches);
