//! Whole-simulator throughput benchmarks: how fast the event loop
//! simulates each kind of activity (all-hit streams, coherence-heavy
//! sharing, prefetch-heavy streaming). Useful for tracking simulator
//! performance regressions; the figures of merit are simulated pclocks
//! and workload operations per wall-clock second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pfsim::{System, SystemConfig};
use pfsim_prefetch::Scheme;
use pfsim_workloads::micro;
use std::hint::black_box;

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);

    group.bench_function("sequential_walk_baseline", |b| {
        b.iter_batched(
            || {
                (
                    SystemConfig::paper_baseline(),
                    micro::sequential_walk(16, 512, 2),
                )
            },
            |(cfg, wl)| black_box(System::new(cfg, wl).run().exec_cycles),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("sequential_walk_seq_prefetch", |b| {
        b.iter_batched(
            || {
                (
                    SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
                    micro::sequential_walk(16, 512, 2),
                )
            },
            |(cfg, wl)| black_box(System::new(cfg, wl).run().exec_cycles),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("producer_consumer_coherence", |b| {
        b.iter_batched(
            || {
                (
                    SystemConfig::paper_baseline(),
                    micro::producer_consumer(16, 256),
                )
            },
            |(cfg, wl)| black_box(System::new(cfg, wl).run().exec_cycles),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("lock_contention", |b| {
        b.iter_batched(
            || {
                (
                    SystemConfig::paper_baseline(),
                    micro::lock_ping_pong(16, 200),
                )
            },
            |(cfg, wl)| black_box(System::new(cfg, wl).run().exec_cycles),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("random_access_idet", |b| {
        b.iter_batched(
            || {
                (
                    SystemConfig::paper_baseline().with_scheme(Scheme::IDetection { degree: 1 }),
                    micro::random_access(16, 2048, 1000),
                )
            },
            |(cfg, wl)| black_box(System::new(cfg, wl).run().exec_cycles),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
