//! The deterministic event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same [`Cycle`] are delivered in the order they
/// were scheduled. This makes whole-system simulations bit-for-bit
/// reproducible, which the reproduction relies on: the paper's program-driven
/// methodology keeps the interleaving of memory references identical between
/// the baseline and each prefetching configuration of the same run.
///
/// # Examples
///
/// ```
/// use pfsim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::new(10), 1u32);
/// q.schedule(Cycle::new(10), 2u32);
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
/// assert_eq!(q.pop(), Some((Cycle::new(10), 2)));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

// Min-heap ordering on (time, sequence). `BinaryHeap` is a max-heap, so the
// comparison is reversed.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` for delivery at time `at`.
    ///
    /// Scheduling in the past is allowed (the event is delivered at the next
    /// [`pop`](Self::pop)); callers that care should clamp with
    /// [`Cycle::max`] first.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, breaking time ties in
    /// scheduling order.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Returns the delivery time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), "late");
        q.schedule(Cycle::new(10), "early");
        q.schedule(Cycle::new(20), "middle");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["early", "middle", "late"]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(5), 'a');
        q.schedule(Cycle::new(5), 'b');
        assert_eq!(q.pop(), Some((Cycle::new(5), 'a')));
        q.schedule(Cycle::new(5), 'c');
        assert_eq!(q.pop(), Some((Cycle::new(5), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(5), 'c')));
    }

    #[test]
    fn peek_time_reports_next_delivery() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle::new(9), ());
        q.schedule(Cycle::new(4), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
