//! The deterministic event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// Number of one-cycle-wide calendar buckets. A power of two so the bucket
/// index is a mask. Simulator events cluster within a few hundred cycles of
/// the cursor (memory latency is ~100 pclocks), so 1024 keeps virtually all
/// scheduling inside the wheel.
const BUCKETS: usize = 1024;
const MASK: u64 = BUCKETS as u64 - 1;
/// Words of the occupancy bitmap (one bit per bucket).
const WORDS: usize = BUCKETS / 64;
/// Null link in the slot arena (terminates bucket chains and the free
/// list).
const NIL: u32 = u32::MAX;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same [`Cycle`] are delivered in the order they
/// were scheduled. This makes whole-system simulations bit-for-bit
/// reproducible, which the reproduction relies on: the paper's program-driven
/// methodology keeps the interleaving of memory references identical between
/// the baseline and each prefetching configuration of the same run.
///
/// # Implementation
///
/// A calendar queue: a wheel of [`BUCKETS`] one-cycle buckets covers the
/// near future `[cursor, cursor + BUCKETS)`, so `schedule` and `pop` are
/// O(1) for the common case instead of O(log n) heap operations. Two
/// small binary heaps (ordered by `(time, seq)`) catch the uncommon
/// cases: events scheduled in the past ("overdue") and events beyond the
/// wheel horizon ("overflow").
///
/// Wheel storage is a slot arena in struct-of-arrays layout: one `Vec`
/// of event payloads and one parallel `Vec` of `u32` links, with each
/// bucket holding an index-linked FIFO chain (`head`/`tail` per bucket)
/// and freed slots recycled through an intrusive free list. Compared to
/// a `VecDeque` per bucket this keeps all pending events in two dense
/// allocations that are reused for the whole run — no per-bucket buffers
/// to grow, shrink, or walk — and the cursor advance is branchless (the
/// unconditional `cursor += advance` costs nothing when the next bucket
/// is the current one). The occupancy bitmap (one bit per bucket) lets
/// `pop` and `peek_time` skip runs of empty buckets a word at a time.
///
/// Determinism argument: a bucket only ever holds events for a single
/// cycle, so its FIFO order *is* sequence order provided insertions happen
/// in sequence order. They do: overflow events are drained into the wheel
/// eagerly — inside `pop`, immediately after every cursor advance, before
/// any later `schedule` call can run — so an overflow event (low seq) is
/// always appended before any newly scheduled event for the same cycle
/// (necessarily higher seq). The cursor never passes a non-empty bucket,
/// so a cycle stays mapped to its bucket until every event for it has been
/// delivered.
///
/// # Examples
///
/// ```
/// use pfsim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::new(10), 1u32);
/// q.schedule(Cycle::new(10), 2u32);
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
/// assert_eq!(q.pop(), Some((Cycle::new(10), 2)));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Arena payload slots; `None` marks a slot parked on the free list.
    events: Vec<Option<E>>,
    /// Parallel link array: the next slot of the same bucket's FIFO chain
    /// while the payload is live, the next free slot while it is not.
    /// [`NIL`] terminates both kinds of chain.
    links: Vec<u32>,
    /// Head of the free-slot list ([`NIL`] when every slot is live).
    free: u32,
    /// `head[t & MASK]` indexes the oldest pending event for cycle `t`,
    /// for `t` in `[cursor, cursor + BUCKETS)`; [`NIL`] when the bucket
    /// is empty.
    head: [u32; BUCKETS],
    /// Newest slot of each bucket chain (appends are O(1)).
    tail: [u32; BUCKETS],
    /// One bit per bucket: set iff the bucket is non-empty. Lets `pop` and
    /// `peek_time` jump over runs of empty buckets a word at a time instead
    /// of probing each chain head.
    occupied: [u64; WORDS],
    /// Total events in the wheel.
    wheel_len: usize,
    /// The next cycle `pop` will scan; no wheel event is earlier.
    cursor: u64,
    /// Events scheduled for cycles before `cursor`.
    overdue: BinaryHeap<Entry<E>>,
    /// Events at or beyond `cursor + BUCKETS`.
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

// Min-heap ordering on (time, sequence). `BinaryHeap` is a max-heap, so the
// comparison is reversed.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            events: Vec::new(),
            links: Vec::new(),
            free: NIL,
            head: [NIL; BUCKETS],
            tail: [NIL; BUCKETS],
            occupied: [0; WORDS],
            wheel_len: 0,
            cursor: 0,
            overdue: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Appends `event` to bucket `i`'s FIFO chain, recycling a free slot
    /// when one exists and growing the arena otherwise.
    #[inline]
    fn bucket_push(&mut self, i: usize, event: E) {
        let idx = if self.free == NIL {
            let idx = self.events.len() as u32;
            self.events.push(Some(event));
            self.links.push(NIL);
            idx
        } else {
            let idx = self.free;
            self.free = self.links[idx as usize];
            self.events[idx as usize] = Some(event);
            self.links[idx as usize] = NIL;
            idx
        };
        let t = self.tail[i];
        if t == NIL {
            self.head[i] = idx;
        } else {
            self.links[t as usize] = idx;
        }
        self.tail[i] = idx;
        self.occupied[i >> 6] |= 1 << (i & 63);
        self.wheel_len += 1;
    }

    /// Detaches and returns the oldest event of bucket `i`, parking its
    /// slot on the free list (and clearing the occupancy bit when the
    /// chain empties).
    #[inline]
    fn bucket_pop(&mut self, i: usize) -> Option<E> {
        let idx = self.head[i];
        if idx == NIL {
            return None;
        }
        let slot = idx as usize;
        self.head[i] = self.links[slot];
        if self.head[i] == NIL {
            self.tail[i] = NIL;
            self.occupied[i >> 6] &= !(1 << (i & 63));
        }
        let event = self.events[slot].take();
        self.links[slot] = self.free;
        self.free = idx;
        self.wheel_len -= 1;
        event
    }

    /// Schedules `event` for delivery at time `at`.
    ///
    /// Scheduling in the past is allowed (the event is delivered at the next
    /// [`pop`](Self::pop)); callers that care should clamp with
    /// [`Cycle::max`] first.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = at.as_u64();
        if t < self.cursor {
            self.overdue.push(Entry { at, seq, event });
        } else if t - self.cursor < BUCKETS as u64 {
            self.bucket_push((t & MASK) as usize, event);
        } else {
            self.overflow.push(Entry { at, seq, event });
        }
    }

    /// Index of the first occupied bucket at cyclic distance ≥ 0 from
    /// `from`, or `None` if the wheel is empty. O(WORDS).
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let w0 = from >> 6;
        let first = self.occupied[w0] & (!0u64 << (from & 63));
        if first != 0 {
            return Some((w0 << 6) + first.trailing_zeros() as usize);
        }
        for k in 1..=WORDS {
            let w = (w0 + k) & (WORDS - 1);
            let word = self.occupied[w];
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Moves every overflow event that now falls inside the wheel horizon
    /// into its bucket. Heap pop order is `(time, seq)`, so same-cycle
    /// events arrive in sequence order.
    fn drain_overflow(&mut self) {
        let horizon = self.cursor + BUCKETS as u64;
        while let Some(head) = self.overflow.peek() {
            if head.at.as_u64() >= horizon {
                break;
            }
            // pfsim-lint: allow(K002) -- peek returned Some on this very iteration
            let e = self.overflow.pop().expect("peeked");
            self.bucket_push((e.at.as_u64() & MASK) as usize, e.event);
        }
    }

    /// Removes and returns the earliest event, breaking time ties in
    /// scheduling order.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        // Overdue events are all earlier than the cursor, hence earlier
        // than anything in the wheel or overflow.
        if let Some(e) = self.overdue.pop() {
            return Some((e.at, e.event));
        }
        if self.wheel_len == 0 {
            // Jump the cursor straight to the next scheduled cycle.
            let next = self.overflow.peek()?.at.as_u64();
            self.cursor = next;
            self.drain_overflow();
        }
        // Jump to the next occupied bucket. Skipped buckets now map to
        // cycles `≥ old cursor + BUCKETS`; pulling overflow in immediately
        // after the advance (before any later `schedule` could append to
        // them out of order) preserves same-cycle FIFO. No overflow event
        // can precede the found bucket: all of overflow is at or beyond the
        // pre-advance horizon, which is beyond every wheel event. The
        // advance itself is unconditional (adding zero is free); only the
        // overflow drain keeps a guard, and on heap emptiness rather than
        // on the advance, since an empty heap has nothing to drain no
        // matter how far the cursor moved.
        let from = (self.cursor & MASK) as usize;
        // pfsim-lint: allow(K002) -- wheel_len > 0 guarantees an occupied bucket exists
        let i = self.next_occupied(from).expect("wheel_len > 0");
        self.cursor += (i.wrapping_sub(from) & (BUCKETS - 1)) as u64;
        if !self.overflow.is_empty() {
            self.drain_overflow();
        }
        // pfsim-lint: allow(K002) -- occupancy bitmap says this bucket is non-empty
        let event = self.bucket_pop(i).expect("occupied bit set");
        Some((Cycle::new(self.cursor), event))
    }

    /// Returns the delivery time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if let Some(e) = self.overdue.peek() {
            return Some(e.at);
        }
        if self.wheel_len > 0 {
            let from = (self.cursor & MASK) as usize;
            // pfsim-lint: allow(K002) -- wheel_len > 0 guarantees an occupied bucket exists
            let i = self.next_occupied(from).expect("wheel_len > 0");
            let advance = (i.wrapping_sub(from) & (BUCKETS - 1)) as u64;
            return Some(Cycle::new(self.cursor + advance));
        }
        self.overflow.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overdue.len() + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy split `(wheel, overdue, overflow)`: how many pending
    /// events sit in the calendar wheel, the already-due side heap, and
    /// the beyond-horizon overflow heap. Observability hook — events in
    /// the wheel pop in O(1), the two heaps pay a log; a persistently
    /// large overflow count means the horizon is mis-sized for the
    /// workload's scheduling distance.
    pub fn depth_profile(&self) -> (usize, usize, usize) {
        (self.wheel_len, self.overdue.len(), self.overflow.len())
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), "late");
        q.schedule(Cycle::new(10), "early");
        q.schedule(Cycle::new(20), "middle");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["early", "middle", "late"]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(5), 'a');
        q.schedule(Cycle::new(5), 'b');
        assert_eq!(q.pop(), Some((Cycle::new(5), 'a')));
        q.schedule(Cycle::new(5), 'c');
        assert_eq!(q.pop(), Some((Cycle::new(5), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(5), 'c')));
    }

    #[test]
    fn peek_time_reports_next_delivery() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle::new(9), ());
        q.schedule(Cycle::new(4), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        let mut q = EventQueue::new();
        // Far beyond the wheel: lands in overflow, and two events for the
        // same distant cycle must still pop in scheduling order.
        let far = Cycle::new(10 * BUCKETS as u64 + 3);
        q.schedule(far, "first");
        q.schedule(Cycle::new(2), "near");
        q.schedule(far, "second");
        assert_eq!(q.pop(), Some((Cycle::new(2), "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "first")));
        assert_eq!(q.pop(), Some((far, "second")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_then_schedule_same_cycle_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = Cycle::new(3 * BUCKETS as u64);
        q.schedule(t, 1); // goes to overflow
        q.schedule(Cycle::new(1), 0);
        assert_eq!(q.pop(), Some((Cycle::new(1), 0))); // cursor jumps near t? no: jumps to 1
                                                       // Popping once more jumps the cursor to t and drains overflow;
                                                       // a fresh schedule for the same cycle must land *behind* it.
        assert_eq!(q.peek_time(), Some(t));
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn scheduling_in_the_past_delivers_immediately() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(50), "now");
        assert_eq!(q.pop(), Some((Cycle::new(50), "now")));
        // Cursor is at 50; schedule earlier events out of order.
        q.schedule(Cycle::new(10), "late-b");
        q.schedule(Cycle::new(5), "late-a");
        q.schedule(Cycle::new(60), "future");
        assert_eq!(q.peek_time(), Some(Cycle::new(5)));
        assert_eq!(q.pop(), Some((Cycle::new(5), "late-a")));
        assert_eq!(q.pop(), Some((Cycle::new(10), "late-b")));
        assert_eq!(q.pop(), Some((Cycle::new(60), "future")));
    }

    /// Reference implementation: the original binary-heap queue.
    struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> HeapQueue<E> {
        fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }
        fn schedule(&mut self, at: Cycle, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, event });
        }
        fn pop(&mut self) -> Option<(Cycle, E)> {
            self.heap.pop().map(|e| (e.at, e.event))
        }
    }

    /// A local SplitMix64 (this crate sits below `pfsim-mem`, which hosts
    /// the shared copy, so the test carries its own).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
        }
    }

    /// Random interleavings of schedule and pop agree with the heap
    /// reference on every popped `(time, event)` pair — including events
    /// in the past, at the cursor, and far beyond the wheel horizon.
    #[test]
    fn matches_heap_reference_model() {
        let mut rng = Rng(0xca1eda5);
        for _case in 0..200 {
            let mut cal: EventQueue<u32> = EventQueue::new();
            let mut heap: HeapQueue<u32> = HeapQueue::new();
            let mut now = 0u64;
            let mut id = 0u32;
            for _ in 0..rng.below(400) {
                if rng.below(3) < 2 {
                    // Schedule around `now`: mostly near future, sometimes
                    // far future (overflow) or the past (overdue).
                    let at = match rng.below(10) {
                        0 => now.saturating_sub(rng.below(100)),
                        1..=2 => now + BUCKETS as u64 + rng.below(5000),
                        _ => now + rng.below(300),
                    };
                    cal.schedule(Cycle::new(at), id);
                    heap.schedule(Cycle::new(at), id);
                    id += 1;
                } else {
                    let got = cal.pop();
                    let want = heap.pop();
                    assert_eq!(got, want);
                    if let Some((t, _)) = got {
                        now = t.as_u64();
                    }
                }
                assert_eq!(cal.len(), heap.heap.len());
            }
            // Drain: the full remaining order must match.
            loop {
                let got = cal.pop();
                let want = heap.pop();
                assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }

    /// Same-cycle FIFO survives overflow draining: schedule bursts for one
    /// distant cycle across several drain points and check global order.
    #[test]
    fn distant_bursts_stay_in_sequence_order() {
        let mut q = EventQueue::new();
        let t = Cycle::new(7777);
        q.schedule(t, 0);
        q.schedule(Cycle::new(1), 100);
        q.schedule(t, 1);
        q.pop(); // advances toward the burst cycle
        q.schedule(t, 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [0, 1, 2]);
    }
}
