//! Lightweight counter/histogram registry for simulator observability.
//!
//! The registry is the engine-level half of the observability layer: the
//! full-system simulator registers named counters and histograms up front
//! (receiving cheap index handles), then increments them from the event
//! loop. Every mutating call starts with a single predictable branch on
//! [`Registry::enabled`], so a disabled registry costs one never-taken
//! branch per call site and nothing else — instrumentation must be
//! pclock-neutral *and* close to wall-clock-neutral.
//!
//! Values are plain `u64` and bucketing is by bit width (`log2`), so
//! identical runs produce bit-identical [`MetricsSnapshot`]s: the registry
//! is as deterministic as the simulation it observes.
//!
//! # Examples
//!
//! ```
//! use pfsim_engine::metrics::Registry;
//!
//! let mut reg = Registry::new(true);
//! let events = reg.counter("events");
//! let depth = reg.histogram("queue_depth");
//! reg.inc(events, 1);
//! reg.observe(depth, 12);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("events"), Some(1));
//! assert_eq!(snap.histogram("queue_depth").unwrap().count, 1);
//! ```

/// Index handle for a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Index handle for a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// A fixed-size log2-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples whose bit width is `i` (bucket 0 is the value
/// zero, bucket 1 is the value 1, bucket 2 is 2..=3, bucket 3 is 4..=7,
/// …). 65 buckets cover the full `u64` range with no allocation and no
/// data-dependent branches in the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample observed.
    pub max: u64,
    /// Log2 buckets: `buckets[i]` counts samples of bit width `i`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    #[inline]
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named collection of counters and histograms.
///
/// Registration returns index handles so the hot path never hashes a
/// name; end-of-run convenience recording by name goes through
/// [`Registry::record`].
#[derive(Debug, Clone)]
pub struct Registry {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// Creates a registry. A disabled registry accepts registrations but
    /// ignores every `inc`/`observe`/`record`.
    pub fn new(enabled: bool) -> Self {
        Registry {
            enabled,
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Whether instrumentation is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or finds) the counter `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i as u32);
        }
        self.counters.push((name, 0));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Registers (or finds) the histogram `name`.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| *n == name) {
            return HistogramId(i as u32);
        }
        self.histograms.push((name, Histogram::default()));
        HistogramId((self.histograms.len() - 1) as u32)
    }

    /// Adds `by` to a counter. One branch when disabled.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        if self.enabled {
            self.counters[id.0 as usize].1 += by;
        }
    }

    /// Records one histogram sample. One branch when disabled.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        if self.enabled {
            self.histograms[id.0 as usize].1.observe(v);
        }
    }

    /// Adds `by` to the counter `name`, registering it on first use.
    ///
    /// Linear name lookup: meant for end-of-run gauge folding, not the
    /// event loop.
    pub fn record(&mut self, name: &'static str, by: u64) {
        if self.enabled {
            let id = self.counter(name);
            self.counters[id.0 as usize].1 += by;
        }
    }

    /// Sets the counter `name` to the maximum of its current value and
    /// `v` (for high-water gauges folded across nodes).
    pub fn record_max(&mut self, name: &'static str, v: u64) {
        if self.enabled {
            let id = self.counter(name);
            let slot = &mut self.counters[id.0 as usize].1;
            *slot = (*slot).max(v);
        }
    }

    /// An immutable, name-sorted copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .iter()
            .map(|(n, v)| (n.to_string(), *v))
            .collect();
        counters.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .iter()
            .map(|(n, h)| (n.to_string(), HistogramSnapshot::of(h)))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// Point-in-time copy of one histogram, trailing-zero buckets trimmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample observed.
    pub max: u64,
    /// Log2 buckets, trimmed after the last non-zero entry.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> Self {
        let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            max: h.max,
            buckets: h.buckets[..last].to_vec(),
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Deterministic, name-sorted dump of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Human-readable differences between two snapshots, one line per
    /// diverging metric (empty when bit-identical). Built for equivalence
    /// harnesses — e.g. the serial-vs-sharded kernel gate — where "which
    /// metric moved, and by how much" is the whole debugging story and
    /// two full `Debug` dumps would bury it.
    pub fn diff(&self, other: &MetricsSnapshot) -> Vec<String> {
        let mut out = Vec::new();
        diff_keyed(&self.counters, &other.counters, &mut out, |name, a, b| {
            format!("counter {name}: {a:?} != {b:?}")
        });
        diff_keyed(
            &self.histograms,
            &other.histograms,
            &mut out,
            |name, a, b| match (a, b) {
                (Some(a), Some(b)) => {
                    let mut line = format!(
                        "histogram {name}: count {} vs {}, sum {} vs {}, max {} vs {}",
                        a.count, b.count, a.sum, b.sum, a.max, b.max
                    );
                    // The summary triple can agree while the distribution
                    // does not (same count/sum/max, different samples), so
                    // name every diverging bucket too — otherwise the diff
                    // line prints six equal numbers for a real mismatch.
                    let buckets = a.buckets.len().max(b.buckets.len());
                    for i in 0..buckets {
                        let (va, vb) = (
                            a.buckets.get(i).copied().unwrap_or(0),
                            b.buckets.get(i).copied().unwrap_or(0),
                        );
                        if va != vb {
                            line.push_str(&format!(", bucket[{i}] {va} vs {vb}"));
                        }
                    }
                    line
                }
                _ => format!(
                    "histogram {name}: present {} vs {}",
                    a.is_some(),
                    b.is_some()
                ),
            },
        );
        out
    }
}

/// Walks two name-sorted `(name, value)` lists in lockstep and reports
/// every key that is missing on one side or differs in value.
fn diff_keyed<V: PartialEq>(
    a: &[(String, V)],
    b: &[(String, V)],
    out: &mut Vec<String>,
    describe: impl Fn(&str, Option<&V>, Option<&V>) -> String,
) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some((ka, va)), Some((kb, vb))) if ka == kb => {
                if va != vb {
                    out.push(describe(ka, Some(va), Some(vb)));
                }
                i += 1;
                j += 1;
            }
            (Some((ka, va)), Some((kb, _))) if ka < kb => {
                out.push(describe(ka, Some(va), None));
                i += 1;
            }
            (Some(_), Some((kb, vb))) => {
                out.push(describe(kb, None, Some(vb)));
                j += 1;
            }
            (Some((ka, va)), None) => {
                out.push(describe(ka, Some(va), None));
                i += 1;
            }
            (None, Some((kb, vb))) => {
                out.push(describe(kb, None, Some(vb)));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_ignores_everything() {
        let mut reg = Registry::new(false);
        let c = reg.counter("c");
        let h = reg.histogram("h");
        reg.inc(c, 5);
        reg.observe(h, 9);
        reg.record("gauge", 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(0));
        assert_eq!(snap.histogram("h").unwrap().count, 0);
        assert_eq!(snap.counter("gauge"), None);
    }

    #[test]
    fn diff_reports_each_divergence_once() {
        let mut a = Registry::new(true);
        let ca = a.counter("events");
        a.inc(ca, 3);
        let ha = a.histogram("depth");
        a.observe(ha, 4);

        let mut b = Registry::new(true);
        let cb = b.counter("events");
        b.inc(cb, 5);
        b.record("extra_gauge", 1);
        let hb = b.histogram("depth");
        b.observe(hb, 4);

        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert!(sa.diff(&sa.clone()).is_empty());
        let d = sa.diff(&sb);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|l| l.contains("counter events")), "{d:?}");
        assert!(d.iter().any(|l| l.contains("extra_gauge")), "{d:?}");
    }

    #[test]
    fn diff_sees_histogram_divergence() {
        let mut a = Registry::new(true);
        let h = a.histogram("depth");
        a.observe(h, 4);
        let mut b = Registry::new(true);
        let h = b.histogram("depth");
        b.observe(h, 4);
        b.observe(h, 9);
        let d = a.snapshot().diff(&b.snapshot());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("histogram depth"), "{d:?}");
        assert!(d[0].contains("count 1 vs 2"), "{d:?}");
        // 9 has bit width 4, present only on b's side.
        assert!(d[0].contains("bucket[4] 0 vs 1"), "{d:?}");
    }

    /// Two sample sets can agree on count, sum, and max while landing in
    /// different buckets ({4,5,6} vs {3,6,6}); the diff line must name the
    /// buckets or it reads as six equal numbers.
    #[test]
    fn diff_names_diverging_buckets_when_summary_agrees() {
        let observe_all = |vs: &[u64]| {
            let mut r = Registry::new(true);
            let h = r.histogram("depth");
            for &v in vs {
                r.observe(h, v);
            }
            r.snapshot()
        };
        let a = observe_all(&[4, 5, 6]);
        let b = observe_all(&[3, 6, 6]);
        let d = a.diff(&b);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].contains("count 3 vs 3, sum 15 vs 15, max 6 vs 6"),
            "{d:?}"
        );
        assert!(d[0].contains("bucket[2] 0 vs 1"), "{d:?}");
        assert!(d[0].contains("bucket[3] 3 vs 2"), "{d:?}");
    }

    #[test]
    fn counters_accumulate() {
        let mut reg = Registry::new(true);
        let c = reg.counter("c");
        reg.inc(c, 2);
        reg.inc(c, 3);
        assert_eq!(reg.snapshot().counter("c"), Some(5));
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = Registry::new(true);
        let a = reg.counter("same");
        let b = reg.counter("same");
        assert_eq!(a, b);
        reg.inc(a, 1);
        reg.inc(b, 1);
        assert_eq!(reg.snapshot().counter("same"), Some(2));
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 2); // 4, 7
        assert_eq!(h.buckets[4], 1); // 8
        assert_eq!(h.buckets[64], 1); // u64::MAX
        assert_eq!(h.count, 8);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn snapshot_is_sorted_and_trimmed() {
        let mut reg = Registry::new(true);
        let b = reg.counter("zeta");
        let a = reg.counter("alpha");
        reg.inc(b, 1);
        reg.inc(a, 2);
        let h = reg.histogram("h");
        reg.observe(h, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
        // value 3 has bit width 2 -> buckets [0, 0, 1]
        assert_eq!(snap.histogram("h").unwrap().buckets, vec![0, 0, 1]);
    }

    #[test]
    fn record_max_keeps_high_water() {
        let mut reg = Registry::new(true);
        reg.record_max("hw", 4);
        reg.record_max("hw", 9);
        reg.record_max("hw", 2);
        assert_eq!(reg.snapshot().counter("hw"), Some(9));
    }

    #[test]
    fn identical_sequences_snapshot_identically() {
        let run = || {
            let mut reg = Registry::new(true);
            let c = reg.counter("ev");
            let h = reg.histogram("depth");
            for i in 0..100u64 {
                reg.inc(c, 1);
                reg.observe(h, i * 37 % 19);
            }
            reg.record("gauge", 7);
            reg.snapshot()
        };
        assert_eq!(run(), run());
    }
}
