//! A first-come-first-served resource model.

use crate::Cycle;

/// A single-ported resource that serves one request at a time in arrival
/// order.
///
/// `FifoServer` models contended hardware resources — an SRAM port, a memory
/// bank, a bus slot, a network link — without explicit queue data
/// structures: a request arriving at time `t` begins service at
/// `max(t, free_at)` and occupies the resource for its service time.
/// Because the simulator's event queue delivers events in nondecreasing time
/// order, reserving in arrival order yields FIFO service.
///
/// # Examples
///
/// ```
/// use pfsim_engine::{Cycle, FifoServer};
///
/// let mut port = FifoServer::new();
/// // Two back-to-back 3-cycle SLC accesses arriving at the same time:
/// let first = port.serve(Cycle::new(100), 3);
/// let second = port.serve(Cycle::new(100), 3);
/// assert_eq!(first.as_u64(), 103);
/// assert_eq!(second.as_u64(), 106); // queued behind the first
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoServer {
    free_at: Cycle,
    busy_cycles: u64,
}

impl FifoServer {
    /// Creates a server that is idle from time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `service` cycles starting no earlier than
    /// `now`, and returns the completion time.
    ///
    /// Accumulates utilization, readable via [`busy_cycles`](Self::busy_cycles).
    #[inline]
    pub fn serve(&mut self, now: Cycle, service: u64) -> Cycle {
        let start = self.free_at.max(now);
        self.free_at = start + service;
        self.busy_cycles += service;
        self.free_at
    }

    /// Like [`serve`](Self::serve) but also returns the time service began,
    /// for callers that need the queuing delay separately.
    #[inline]
    pub fn serve_timed(&mut self, now: Cycle, service: u64) -> (Cycle, Cycle) {
        let start = self.free_at.max(now);
        self.free_at = start + service;
        self.busy_cycles += service;
        (start, self.free_at)
    }

    /// The time at which the resource next becomes idle.
    #[inline]
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Whether the resource is idle at time `now`.
    #[inline]
    pub fn is_idle_at(&self, now: Cycle) -> bool {
        self.free_at <= now
    }

    /// Total cycles of service performed so far (a utilization counter).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new();
        assert_eq!(s.serve(Cycle::new(10), 5), Cycle::new(15));
        assert!(s.is_idle_at(Cycle::new(15)));
        assert!(!s.is_idle_at(Cycle::new(14)));
    }

    #[test]
    fn busy_server_queues_requests() {
        let mut s = FifoServer::new();
        s.serve(Cycle::new(0), 10);
        // Arrives while busy: waits until cycle 10.
        assert_eq!(s.serve(Cycle::new(3), 2), Cycle::new(12));
        // Arrives after the backlog drains: starts immediately.
        assert_eq!(s.serve(Cycle::new(20), 2), Cycle::new(22));
    }

    #[test]
    fn serve_timed_exposes_queuing_delay() {
        let mut s = FifoServer::new();
        s.serve(Cycle::new(0), 10);
        let (start, done) = s.serve_timed(Cycle::new(4), 6);
        assert_eq!(start, Cycle::new(10));
        assert_eq!(done, Cycle::new(16));
    }

    #[test]
    fn utilization_accumulates() {
        let mut s = FifoServer::new();
        s.serve(Cycle::new(0), 4);
        s.serve(Cycle::new(100), 6);
        assert_eq!(s.busy_cycles(), 10);
    }

    #[test]
    fn zero_service_time_is_allowed() {
        let mut s = FifoServer::new();
        assert_eq!(s.serve(Cycle::new(5), 0), Cycle::new(5));
        assert_eq!(s.busy_cycles(), 0);
    }
}
