//! Simulation time measured in processor clocks.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, counted in *pclocks* (processor clock cycles).
///
/// In the paper's configuration one pclock is 10 ns (100 MHz processor and
/// network clock). All component latencies in the simulator are expressed in
/// pclocks; the network clock runs at the same rate so no conversion is
/// needed.
///
/// `Cycle` is an absolute timestamp. Durations are plain `u64` cycle counts,
/// added with [`Cycle::add`] or `+`.
///
/// # Examples
///
/// ```
/// use pfsim_engine::Cycle;
///
/// let t = Cycle::ZERO + 10;
/// assert_eq!(t.as_u64(), 10);
/// assert_eq!((t + 5) - t, 5);
/// assert_eq!(t.max(Cycle::new(3)), t);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero, the start of the simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable time; useful as an "infinitely far" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp at `cycles` pclocks from time zero.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the timestamp as a raw pclock count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the time as nanoseconds in the paper's configuration
    /// (1 pclock = 10 ns).
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0 * 10
    }

    /// Saturating duration from `earlier` to `self`, in pclocks.
    ///
    /// Returns zero if `earlier` is after `self`, which makes it safe for
    /// stall accounting where a response may be ready before the request is
    /// nominally issued.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Duration in pclocks from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle duration");
        self.0 - rhs.0
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pclk", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(cycles: u64) -> Self {
        Cycle(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = Cycle::new(100);
        assert_eq!((t + 28) - t, 28);
        assert_eq!(t.as_u64(), 100);
        assert_eq!(Cycle::from(7u64), Cycle::new(7));
    }

    #[test]
    fn nanos_uses_ten_ns_pclock() {
        assert_eq!(Cycle::new(3).as_nanos(), 30);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Cycle::new(5);
        let late = Cycle::new(9);
        assert_eq!(late.saturating_since(early), 4);
        assert_eq!(early.saturating_since(late), 0);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Cycle::ZERO < Cycle::new(1));
        assert!(Cycle::new(1) < Cycle::MAX);
        assert_eq!(Cycle::new(4).max(Cycle::new(9)), Cycle::new(9));
    }

    #[test]
    fn add_assign_advances_time() {
        let mut t = Cycle::ZERO;
        t += 42;
        assert_eq!(t, Cycle::new(42));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert_eq!(format!("{:?}", Cycle::new(8)), "Cycle(8)");
        assert_eq!(format!("{}", Cycle::new(8)), "8 pclk");
    }
}
