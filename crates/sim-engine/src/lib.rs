//! Deterministic discrete-event simulation kernel for the `pfsim`
//! multiprocessor simulator.
//!
//! The kernel is deliberately small: a [`Cycle`] time type counted in
//! processor clocks (*pclocks*, 10 ns at the paper's 100 MHz), a
//! deterministic [`EventQueue`] that breaks ties in strict
//! first-scheduled-first-delivered order, and a [`FifoServer`] helper used
//! to model contended single-ported resources (SRAM ports, memory banks,
//! bus slots, network links).
//!
//! Determinism is a design requirement, not an optimization: the paper's
//! methodology relies on the *same interleaving of memory references* being
//! maintained between runs of the same configuration, so every experiment in
//! the reproduction must be exactly repeatable.
//!
//! # Examples
//!
//! ```
//! use pfsim_engine::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Cycle::new(5), "b");
//! q.schedule(Cycle::new(2), "a");
//! q.schedule(Cycle::new(5), "c"); // same time as "b", scheduled later
//!
//! assert_eq!(q.pop(), Some((Cycle::new(2), "a")));
//! assert_eq!(q.pop(), Some((Cycle::new(5), "b")));
//! assert_eq!(q.pop(), Some((Cycle::new(5), "c")));
//! assert_eq!(q.pop(), None);
//! ```

#![warn(missing_docs)]

pub mod metrics;
mod queue;
mod server;
mod time;

pub use metrics::{CounterId, HistogramId, MetricsSnapshot, Registry};
pub use queue::EventQueue;
pub use server::FifoServer;
pub use time::Cycle;
