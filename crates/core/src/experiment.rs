//! Convenience drivers for the paper's experiments.
//!
//! The single entry point is the [`Run`] builder: configure a workload,
//! optionally override the scheme, recording or instrumentation, and
//! [`execute`](Run::execute). It is generic over [`Workload`], so it
//! accepts both a materialized
//! [`TraceWorkload`](pfsim_workloads::TraceWorkload) and a zero-copy
//! [`TraceCursor`](pfsim_workloads::TraceCursor) over a shared packed
//! trace with static dispatch either way.

use pfsim_prefetch::Scheme;
use pfsim_workloads::Workload;

use crate::{RecordMisses, SimResult, System, SystemConfig};

/// Builder for one simulation run.
///
/// Starts from [`SystemConfig::paper_baseline`]; every method overrides
/// one aspect of the configuration, and [`execute`](Run::execute)
/// constructs the [`System`] and runs it to completion.
///
/// # Examples
///
/// ```
/// use pfsim::experiment::Run;
/// use pfsim_prefetch::Scheme;
/// use pfsim_workloads::micro;
///
/// let base = Run::new(micro::sequential_walk(16, 64, 1)).execute();
/// let seq = Run::new(micro::sequential_walk(16, 64, 1))
///     .scheme(Scheme::Sequential { degree: 1 })
///     .execute();
/// assert!(seq.read_misses() < base.read_misses());
/// ```
#[derive(Debug, Clone)]
pub struct Run<W: Workload> {
    workload: W,
    cfg: SystemConfig,
}

impl<W: Workload> Run<W> {
    /// A paper-baseline run of `workload`.
    pub fn new(workload: W) -> Self {
        Run {
            workload,
            cfg: SystemConfig::paper_baseline(),
        }
    }

    /// Replaces the whole configuration (overrides applied so far are
    /// discarded; later methods modify the new configuration).
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Attaches a prefetching scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Records the miss stream of processor `cpu` (the §5.1
    /// characterization setup).
    pub fn record_misses(mut self, cpu: usize) -> Self {
        self.cfg.record_misses = RecordMisses::Cpu(cpu);
        self
    }

    /// Records every processor's miss stream.
    pub fn record_all(mut self) -> Self {
        self.cfg.record_misses = RecordMisses::All;
        self
    }

    /// Enables the observability registry (see
    /// [`SimResult::metrics`](crate::SimResult::metrics)).
    pub fn instrument(mut self, on: bool) -> Self {
        self.cfg.instrument = on;
        self
    }

    /// The configuration the run will use.
    pub fn configuration(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs the workload to completion.
    pub fn execute(self) -> SimResult {
        System::new(self.cfg, self.workload).run()
    }
}

/// The comparison of Figure 6: baseline, I-detection, D-detection and
/// sequential prefetching at degree 1, on the same workload.
pub fn figure6_schemes() -> [Scheme; 4] {
    [
        Scheme::None,
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_workloads::micro;

    #[test]
    fn run_builder_matches_direct_construction() {
        let direct = System::new(
            SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
            micro::sequential_walk(16, 32, 1),
        )
        .run();
        let built = Run::new(micro::sequential_walk(16, 32, 1))
            .scheme(Scheme::Sequential { degree: 1 })
            .execute();
        assert_eq!(built.exec_cycles, direct.exec_cycles);
        assert_eq!(built.read_misses(), direct.read_misses());
    }

    #[test]
    fn run_builder_records_and_instruments() {
        let r = Run::new(micro::sequential_walk(16, 32, 1))
            .record_misses(0)
            .instrument(true)
            .execute();
        assert!(!r.miss_traces[0].is_empty());
        let m = r.metrics.expect("instrumented run carries a snapshot");
        assert!(m.counter("ev_cpu_step").unwrap() > 0);
    }

    #[test]
    fn config_override_then_refine() {
        let run = Run::new(micro::sequential_walk(16, 8, 1))
            .config(SystemConfig::builder().slc_kb(16).build())
            .scheme(Scheme::Sequential { degree: 2 });
        assert_eq!(run.configuration().scheme, Scheme::Sequential { degree: 2 });
        assert_eq!(
            run.configuration().slc,
            pfsim_cache::SlcConfig::direct_mapped(16 * 1024)
        );
    }
}
