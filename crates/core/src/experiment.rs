//! Convenience drivers for the paper's experiments.
//!
//! All drivers are generic over [`Workload`], so they accept both a
//! materialized [`TraceWorkload`](pfsim_workloads::TraceWorkload) and a
//! zero-copy [`TraceCursor`](pfsim_workloads::TraceCursor) over a shared
//! packed trace with static dispatch either way.

use pfsim_prefetch::Scheme;
use pfsim_workloads::Workload;

use crate::{RecordMisses, SimResult, System, SystemConfig};

/// Runs `workload` on the paper baseline extended with `scheme`.
///
/// # Examples
///
/// ```
/// use pfsim::experiment;
/// use pfsim_prefetch::Scheme;
/// use pfsim_workloads::micro;
///
/// let base = experiment::run_scheme(micro::sequential_walk(16, 64, 1), Scheme::None);
/// let seq = experiment::run_scheme(micro::sequential_walk(16, 64, 1), Scheme::Sequential { degree: 1 });
/// assert!(seq.read_misses() < base.read_misses());
/// ```
pub fn run_scheme(workload: impl Workload, scheme: Scheme) -> SimResult {
    System::new(SystemConfig::paper_baseline().with_scheme(scheme), workload).run()
}

/// Runs `workload` under an arbitrary configuration.
pub fn run_config(workload: impl Workload, cfg: SystemConfig) -> SimResult {
    System::new(cfg, workload).run()
}

/// Runs the §5.1 characterization configuration: the baseline machine
/// (no prefetching) with the miss stream of processor `cpu` recorded.
pub fn run_baseline_recording(workload: impl Workload, cpu: usize) -> SimResult {
    let cfg = SystemConfig::paper_baseline().with_recording(RecordMisses::Cpu(cpu));
    System::new(cfg, workload).run()
}

/// The comparison of Figure 6: baseline, I-detection, D-detection and
/// sequential prefetching at degree 1, on the same workload.
pub fn figure6_schemes() -> [Scheme; 4] {
    [
        Scheme::None,
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
    ]
}
