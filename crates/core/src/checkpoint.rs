//! Warmup checkpointing: snapshot a paused [`System`] and fork cheap
//! copies of it.
//!
//! The paper's methodology sweeps many prefetching-scheme cells over the
//! *same* warmed-up machine. Re-simulating the identical warmup prefix
//! from cold for every cell is pure waste; a [`Checkpoint`] captures the
//! full machine state once — calendar queue (with its seq counter),
//! per-node caches, MSHRs and write buffers, directory, mesh in-flight
//! traffic, prefetcher tables, workload cursor (which carries any
//! workload RNG), pclock counters, the optional consistency oracle — and
//! every cell restores from it, so an N-cell ablation costs one warmup
//! plus N deltas.
//!
//! Bit-identity is the contract: `System::restore(&sys.snapshot())`
//! followed by [`System::run`](System::run) produces exactly the
//! `SimResult`, metrics snapshot and oracle-hook stream of running the
//! original system straight through. The snapshot therefore copies
//! *every* field of [`System`] and [`Node`] by exhaustive destructuring —
//! no `..` rest-patterns, no `Default::default()` fills — so adding
//! machine state without snapshotting it is a compile error (and lint
//! K003 keeps it that way).

use crate::check::CheckSink;
use crate::node::Node;
use crate::system::{Obs, System};
use pfsim_workloads::Workload;

/// A paused machine state, cheap to fork into fresh [`System`]s.
///
/// Obtained from [`System::snapshot`]; consumed (by reference, any number
/// of times) by [`System::restore`]. The type parameter is the workload:
/// the snapshot owns a copy of the workload cursor so restored systems
/// replay the remaining references identically.
pub struct Checkpoint<W> {
    cfg: crate::SystemConfig,
    workload: W,
    queue: pfsim_engine::EventQueue<crate::system::Ev>,
    mesh: pfsim_network::Mesh,
    nodes: Vec<Node>,
    last_time: pfsim_engine::Cycle,
    dir_actions: pfsim_coherence::ActionBuf,
    obs: Obs,
    check: Option<Box<dyn CheckSink>>,
    started: bool,
}

impl<W: Workload> System<W> {
    /// Captures the complete machine state.
    ///
    /// Returns `None` when a check sink is installed that does not
    /// support [`CheckSink::fork`] — refusing the snapshot outright beats
    /// silently dropping the observer mid-run.
    pub fn snapshot(&self) -> Option<Checkpoint<W>>
    where
        W: Clone,
    {
        let System {
            cfg,
            workload,
            queue,
            mesh,
            nodes,
            last_time,
            dir_actions,
            obs,
            check,
            started,
        } = self;
        let check = match check {
            None => None,
            Some(sink) => Some(sink.fork()?),
        };
        Some(Checkpoint {
            cfg: cfg.clone(),
            workload: workload.clone(),
            queue: queue.clone(),
            mesh: mesh.clone(),
            nodes: nodes.iter().map(fork_node).collect(),
            last_time: *last_time,
            dir_actions: dir_actions.clone(),
            obs: fork_obs(obs),
            check,
            started: *started,
        })
    }

    /// Builds a fresh system from a checkpoint. Restoring the same
    /// checkpoint N times yields N independent, bit-identical machines.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's stored check sink refuses to fork —
    /// impossible for a consistent [`CheckSink::fork`] implementation,
    /// since the sink already forked once to get into the checkpoint.
    pub fn restore(checkpoint: &Checkpoint<W>) -> System<W>
    where
        W: Clone,
    {
        let Checkpoint {
            cfg,
            workload,
            queue,
            mesh,
            nodes,
            last_time,
            dir_actions,
            obs,
            check,
            started,
        } = checkpoint;
        let check = check.as_ref().map(|sink| {
            sink.fork()
                .expect("a check sink that forked into a checkpoint must fork out of it")
        });
        System {
            cfg: cfg.clone(),
            workload: workload.clone(),
            queue: queue.clone(),
            mesh: mesh.clone(),
            nodes: nodes.iter().map(fork_node).collect(),
            last_time: *last_time,
            dir_actions: dir_actions.clone(),
            obs: fork_obs(obs),
            check,
            started: *started,
        }
    }
}

/// Deep-copies one node, field by exhaustive field.
fn fork_node(node: &Node) -> Node {
    let Node {
        status,
        cpu_time,
        issue_time,
        pending_op,
        flc,
        flwb,
        slc,
        mshr,
        slc_server,
        incoming,
        slc_scheduled_at,
        drain_block,
        prefetcher,
        pending_write_txns,
        pf_scratch,
        dir,
        dir_server,
        mem,
        locks,
        barriers,
        stats,
        removal,
        miss_trace,
        record,
    } = node;
    Node {
        status: *status,
        cpu_time: *cpu_time,
        issue_time: *issue_time,
        pending_op: *pending_op,
        flc: flc.clone(),
        flwb: flwb.clone(),
        slc: slc.clone(),
        mshr: mshr.clone(),
        slc_server: *slc_server,
        incoming: incoming.clone(),
        slc_scheduled_at: *slc_scheduled_at,
        drain_block: *drain_block,
        prefetcher: prefetcher.clone(),
        pending_write_txns: *pending_write_txns,
        pf_scratch: pf_scratch.clone(),
        dir: dir.clone(),
        dir_server: *dir_server,
        mem: *mem,
        locks: locks.clone(),
        barriers: barriers.clone(),
        stats: *stats,
        removal: removal.clone(),
        miss_trace: miss_trace.clone(),
        record: *record,
    }
}

/// Deep-copies the observability state (registry contents plus the
/// pre-registered handles, which are plain indices).
fn fork_obs(obs: &Obs) -> Obs {
    let Obs {
        reg,
        ev_cpu_step,
        ev_slc_work,
        ev_deliver,
        queue_depth,
        queue_overflow,
        mshr_occupancy,
    } = obs;
    Obs {
        reg: reg.clone(),
        ev_cpu_step: *ev_cpu_step,
        ev_slc_work: *ev_slc_work,
        ev_deliver: *ev_deliver,
        queue_depth: *queue_depth,
        queue_overflow: *queue_overflow,
        mshr_occupancy: *mshr_occupancy,
    }
}
