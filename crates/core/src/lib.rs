//! `pfsim` — a program-driven simulator of the cache-coherent NUMA
//! multiprocessor of Dahlgren & Stenström, *"Effectiveness of
//! Hardware-Based Stride and Sequential Prefetching in Shared-Memory
//! Multiprocessors"* (HPCA 1995).
//!
//! Each of the 16 processing nodes couples a blocking-load processor, a
//! 4 KB write-through first-level cache, a FIFO first-level write buffer,
//! and a lockup-free write-back second-level cache (with its 16-entry
//! second-level write buffer) to a full-map write-invalidate directory and
//! interleaved memory, all connected by a 4×4 wormhole mesh. Release
//! consistency lets writes proceed under buffered stores; queue-based
//! locks live at memory. Prefetching — sequential, I-detection stride or
//! D-detection stride — attaches to the SLC (see [`pfsim_prefetch`]).
//!
//! The node organization (the paper's Figure 1):
//!
//! ```text
//!   ┌─────────────┐
//!   │  Processor  │ blocking loads, 100 MHz
//!   └──────┬──────┘
//!    ┌─────┴─────┐         ┌──────┐
//!    │    FLC    │◄────────┤ inval│ (block-invalidation pin)
//!    │ 4KB WT DM │         │  pin │
//!    └─────┬─────┘         └──▲───┘
//!    ┌─────┴─────┐            │
//!    │   FLWB    │ 8-entry FIFO (reads, writes, sync)
//!    └─────┬─────┘            │
//!    ┌─────┴────────────┬─────┴──┐
//!    │        SLC       │  SLWB  │ lockup-free WB cache + 16 MSHRs
//!    │  (+ prefetcher)  │        │
//!    └─────┬────────────┴────────┘
//!    ┌─────┴──────────────────────┐
//!    │ directory · memory · locks │ full-map, interleaved, 256-bit bus
//!    └─────┬──────────────────────┘
//!    ┌─────┴─────┐
//!    │ 4×4 mesh  │ wormhole, 32-bit flits
//!    └───────────┘
//! ```
//!
//! The simulator is deterministic: the same configuration and workload
//! produce the same interleaving, statistics and timing, as the paper's
//! methodology requires.
//!
//! # Quickstart
//!
//! ```
//! use pfsim::{System, SystemConfig};
//! use pfsim_prefetch::Scheme;
//! use pfsim_workloads::micro;
//!
//! // A 16-CPU sequential walk with degree-1 sequential prefetching:
//! let cfg = SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 });
//! let result = System::new(cfg, micro::sequential_walk(16, 256, 1)).run();
//! println!(
//!     "misses: {}, prefetch efficiency: {:.2}",
//!     result.read_misses(),
//!     result.prefetch_efficiency(),
//! );
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod checkpoint;
mod config;
pub mod experiment;
mod msg;
mod node;
mod shard;
mod stats;
mod sync;
mod system;

pub use check::CheckSink;
pub use checkpoint::Checkpoint;
pub use config::{ConsistencyModel, RecordMisses, SystemConfig, SystemConfigBuilder};
pub use experiment::Run;
pub use pfsim_coherence::MAX_SHARERS;
pub use pfsim_engine::metrics::{HistogramSnapshot, MetricsSnapshot};
pub use pfsim_engine::Cycle;
pub use stats::{MissCause, MissRecord, NodeStats, SimResult};
pub use sync::{BarrierTable, LockTable};
pub use system::System;
