//! Per-node state: the processor, its caches and buffers, and the
//! home-side directory, memory and lock table (Figure 1 of the paper).

use std::collections::VecDeque;

use pfsim_cache::{FifoBuffer, FirstLevelCache, MshrFile, SecondLevelCache};
use pfsim_coherence::Directory;
use pfsim_engine::{Cycle, FifoServer};
use pfsim_mem::{Addr, BlockAddr, PagedMap, Pc};
use pfsim_prefetch::Prefetcher;

use crate::msg::Msg;
use crate::stats::{MissCause, MissRecord, NodeStats};
use crate::sync::{BarrierTable, LockTable};
use crate::SystemConfig;

/// What the simulated processor is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CpuStatus {
    /// Executing (or ready to execute) operations.
    Ready,
    /// Blocked on a read miss.
    WaitRead,
    /// Blocked acquiring a lock.
    WaitLock,
    /// Blocked on a write (sequential-consistency mode only).
    WaitWrite,
    /// Blocked at a barrier.
    WaitBarrier,
    /// Blocked because the FLWB is full.
    WaitFlwb,
    /// Finished its parallel section.
    Done,
}

/// An entry buffered in the first-level write buffer, in FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlwbEntry {
    /// A read-miss request (the processor is blocked on it).
    Read {
        /// Byte address.
        addr: Addr,
        /// Program counter of the load.
        pc: Pc,
        /// When the processor issued it.
        issued: Cycle,
    },
    /// A buffered write (the processor is *not* blocked: release
    /// consistency).
    Write {
        /// Byte address.
        addr: Addr,
        /// When the processor issued it.
        issued: Cycle,
    },
    /// A lock-acquire request (the processor is blocked on it).
    Acquire {
        /// Lock address.
        lock: Addr,
        /// When the processor issued it.
        issued: Cycle,
    },
    /// A lock release; drains only after all prior writes complete.
    Release {
        /// Lock address.
        lock: Addr,
        /// When the processor issued it.
        issued: Cycle,
    },
    /// A barrier arrival; drains only after all prior writes complete.
    Barrier {
        /// Barrier id.
        id: u32,
        /// When the processor issued it.
        issued: Cycle,
    },
}

impl FlwbEntry {
    pub(crate) fn issued(&self) -> Cycle {
        match *self {
            FlwbEntry::Read { issued, .. }
            | FlwbEntry::Write { issued, .. }
            | FlwbEntry::Acquire { issued, .. }
            | FlwbEntry::Release { issued, .. }
            | FlwbEntry::Barrier { issued, .. } => issued,
        }
    }
}

/// The kind of transaction an SLWB entry is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnKind {
    /// Demand read miss.
    ReadShared,
    /// Write miss (exclusive read).
    ReadExclusive,
    /// Ownership upgrade of a shared copy.
    Upgrade,
    /// Prefetch.
    Prefetch,
}

/// One outstanding transaction in the second-level write buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MshrEntry {
    pub kind: TxnKind,
    /// The processor is blocked waiting for this block.
    pub waiting_cpu: bool,
    /// A buffered write needs ownership of this block (counts toward the
    /// node's pending-write total for release consistency).
    pub write_pending: bool,
    /// A demand reference already merged into this prefetch (it has been
    /// counted useful and the block must arrive untagged).
    pub prefetch_consumed: bool,
}

impl MshrEntry {
    pub(crate) fn new(kind: TxnKind) -> Self {
        MshrEntry {
            kind,
            waiting_cpu: false,
            write_pending: false,
            prefetch_consumed: false,
        }
    }
}

/// Why the SLC drain (FLWB consumption) is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DrainBlock {
    /// Not blocked.
    None,
    /// The head entry needs an SLWB slot and the file is full.
    MshrFull,
    /// The head entry is a release/barrier and writes are still pending.
    ReleasePending,
}

/// One processing node.
pub(crate) struct Node {
    // --- processor side ---
    pub status: CpuStatus,
    /// The processor's local clock (may run ahead of the event loop by at
    /// most `cpu_slice`).
    pub cpu_time: Cycle,
    /// When the currently blocking operation was issued.
    pub issue_time: Cycle,
    /// Operation that could not be issued because the FLWB was full.
    pub pending_op: Option<pfsim_workloads::Op>,
    pub flc: FirstLevelCache,
    pub flwb: FifoBuffer<FlwbEntry>,

    // --- SLC side ---
    pub slc: SecondLevelCache,
    pub mshr: MshrFile<MshrEntry>,
    pub slc_server: FifoServer,
    /// Messages from the network awaiting SLC service (processed ahead of
    /// FLWB entries).
    pub incoming: VecDeque<Msg>,
    /// When the pending `SlcWork` event (if any) will fire. Tracking the
    /// time (not just a flag) lets an incoming message pull service
    /// forward past a future-issued FLWB head the processor ran ahead to
    /// produce.
    pub slc_scheduled_at: Option<Cycle>,
    pub drain_block: DrainBlock,
    pub prefetcher: Box<dyn Prefetcher>,
    /// Write transactions not yet globally performed (release consistency
    /// fence counter).
    pub pending_write_txns: u32,
    /// Scratch buffer for prefetch candidates.
    pub pf_scratch: Vec<BlockAddr>,

    // --- home side ---
    pub dir: Directory,
    pub dir_server: FifoServer,
    pub mem: FifoServer,
    pub locks: LockTable,
    /// Barriers homed at this node (`id % nodes == self`). Keeping the
    /// table per-node (like `locks`) makes `BarrierArrive` handling
    /// node-local, which the sharded kernel relies on.
    pub barriers: BarrierTable,

    // --- statistics ---
    pub stats: NodeStats,
    /// Why a previously-held block went away (for miss classification).
    /// A block with no record was never resident here: any block that
    /// leaves the SLC — invalidation, fetch-invalidate or replacement —
    /// records its removal, so absence of a record means a cold miss.
    pub removal: PagedMap<MissCause>,
    pub miss_trace: Vec<MissRecord>,
    pub record: bool,
}

impl Node {
    pub(crate) fn new(cfg: &SystemConfig, record: bool) -> Self {
        Node {
            status: CpuStatus::Ready,
            cpu_time: Cycle::ZERO,
            issue_time: Cycle::ZERO,
            pending_op: None,
            flc: FirstLevelCache::new(cfg.flc_bytes, cfg.geometry),
            flwb: FifoBuffer::new(cfg.flwb_entries),
            slc: SecondLevelCache::with_block_bytes(cfg.slc, cfg.geometry.block_bytes()),
            mshr: MshrFile::new(cfg.slwb_entries),
            slc_server: FifoServer::new(),
            incoming: VecDeque::new(),
            slc_scheduled_at: None,
            drain_block: DrainBlock::None,
            prefetcher: cfg.scheme.build(cfg.geometry),
            pending_write_txns: 0,
            pf_scratch: Vec::new(),
            dir: Directory::new(cfg.nodes),
            dir_server: FifoServer::new(),
            mem: FifoServer::new(),
            locks: LockTable::new(),
            barriers: BarrierTable::new(),
            stats: NodeStats::default(),
            removal: PagedMap::new(),
            miss_trace: Vec::new(),
            record,
        }
    }

    /// Classifies (and counts) a demand miss on `block`.
    pub(crate) fn classify_miss(&mut self, block: BlockAddr) -> MissCause {
        // A block misses either because it was never here (cold) or
        // because something removed it — and every removal path records
        // its cause, so the removal map alone classifies the miss.
        let cause = self
            .removal
            .get(block.as_u64())
            .copied()
            .unwrap_or(MissCause::Cold);
        match cause {
            MissCause::Cold => self.stats.cold_misses += 1,
            MissCause::Coherence => self.stats.coherence_misses += 1,
            MissCause::Replacement => self.stats.replacement_misses += 1,
        }
        cause
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;

    fn node() -> Node {
        Node::new(&SystemConfig::paper_baseline(), false)
    }

    #[test]
    fn first_touch_is_cold() {
        let mut n = node();
        assert_eq!(n.classify_miss(BlockAddr::new(7)), MissCause::Cold);
        assert_eq!(n.stats.cold_misses, 1);
    }

    #[test]
    fn absence_of_removal_record_means_cold() {
        // Every path by which a resident block leaves the SLC records a
        // removal cause, so repeated misses with no record are repeated
        // cold classifications (they can only arise for blocks that were
        // never actually filled, e.g. in unit tests like this one).
        let mut n = node();
        n.classify_miss(BlockAddr::new(7));
        assert_eq!(n.classify_miss(BlockAddr::new(7)), MissCause::Cold);
        assert_eq!(n.stats.cold_misses, 2);
    }

    #[test]
    fn recorded_removal_wins() {
        let mut n = node();
        n.removal.insert(9, MissCause::Replacement);
        // Even a first *demand* touch is a replacement miss if a prefetch
        // brought the block in and a conflict displaced it.
        assert_eq!(n.classify_miss(BlockAddr::new(9)), MissCause::Replacement);
        assert_eq!(n.stats.replacement_misses, 1);

        n.removal.insert(9, MissCause::Coherence);
        assert_eq!(n.classify_miss(BlockAddr::new(9)), MissCause::Coherence);
    }

    #[test]
    fn counters_track_each_cause() {
        let mut n = node();
        n.classify_miss(BlockAddr::new(1));
        n.classify_miss(BlockAddr::new(2));
        n.removal.insert(1, MissCause::Coherence);
        n.classify_miss(BlockAddr::new(1));
        n.removal.insert(2, MissCause::Replacement);
        n.classify_miss(BlockAddr::new(2));
        assert_eq!(n.stats.cold_misses, 2);
        assert_eq!(n.stats.coherence_misses, 1);
        assert_eq!(n.stats.replacement_misses, 1);
    }

    #[test]
    fn flwb_entry_timestamps() {
        use pfsim_engine::Cycle;
        let e = FlwbEntry::Read {
            addr: Addr::new(0x40),
            pc: Pc::new(0x400),
            issued: Cycle::new(9),
        };
        assert_eq!(e.issued(), Cycle::new(9));
        let e = FlwbEntry::Barrier {
            id: 3,
            issued: Cycle::new(12),
        };
        assert_eq!(e.issued(), Cycle::new(12));
    }
}
